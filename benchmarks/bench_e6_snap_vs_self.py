"""E6 — snap- vs self-stabilization (the paper's Section 2 comparison).

From identical arbitrary initial configurations: the snap-stabilizing
Protocol ME never lets requesting processes collide; the self-stabilizing
token-mutex baseline may violate safety while it converges.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.compare import aggregate_comparison, compare_mutex_protocols
from repro.analysis.tables import render_table


def run_experiment():
    return compare_mutex_protocols(
        n=4, seeds=list(range(8)), requests_per_process=2, horizon=600_000
    )


def test_e6_snap_vs_self(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    agg = aggregate_comparison(results)
    rows = [r.row() for r in results]
    report(
        "E6 — snap (Protocol ME) vs self-stabilizing token mutex",
        render_table(
            ["seed", "snap violations", "snap served",
             "self violations", "self served", "self last violation (t)"],
            rows,
        )
        + f"\naggregate: {agg}"
        + "\npaper: snap-stabilization => zero violations for requesting "
        "processes; self-stabilization only converges eventually",
    )
    assert agg["snap_total_violations"] == 0
    assert agg["self_configs_with_violation"] >= 1
    assert agg["snap_total_served"] == 8 * 4 * 2
