"""E7 — message/time complexity of one PIF wave as a function of n.

The algorithm predicts: per wave, the initiator completes a constant number
(max_state = 4) of handshake round trips with each of its neighbours, so the
message cost per wave grows linearly in n on the complete graph and the wave
latency stays nearly flat (the handshakes proceed in parallel).

This bench doubles as the engine's wall-clock yardstick: the n = 64
complete-graph rows exercise the rebuilt scheduler/activation hot path
(the PR introducing the topology subsystem measured >= 2x over the previous
lazy-deletion engine here).
"""

from __future__ import annotations

from conftest import report

from repro.analysis.runner import pif_scaling_row
from repro.analysis.tables import render_table

NS = [2, 3, 5, 8, 12, 24, 64]


def run_experiment():
    return [pif_scaling_row(n, seeds=[0, 1, 2]) for n in NS]


def test_e7_scaling(benchmark):
    rows_raw = benchmark.pedantic(run_experiment, rounds=3, iterations=1)
    rows = [
        [r["n"], r["messages_mean"], r["messages_per_peer"], r["duration_mean"]]
        for r in rows_raw
    ]
    report(
        "E7 — PIF wave cost vs system size",
        render_table(
            ["n", "messages/wave", "messages/peer", "wave duration"], rows
        )
        + "\nexpected shape: messages linear in n (constant per peer), "
        "duration ~flat (parallel handshakes)",
    )
    # Linear message growth: per-peer cost stays within a constant band.
    per_peer = [r["messages_per_peer"] for r in rows_raw]
    assert max(per_peer) <= 3 * min(per_peer)
    # Latency nearly flat: the largest system is < 3x the smallest.
    durations = [r["duration_mean"] for r in rows_raw]
    assert max(durations) <= 3 * max(durations[0], 1)
