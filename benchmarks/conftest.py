"""Benchmark-suite plumbing.

Each bench regenerates one experiment table (E1-E9 in DESIGN.md).  Tables
are collected via :func:`report` and printed in the terminal summary so the
``pytest benchmarks/ --benchmark-only`` transcript contains every table.
"""

from __future__ import annotations

_REPORTS: list[str] = []


def report(title: str, body: str) -> None:
    """Queue an experiment table for the end-of-run summary."""
    _REPORTS.append(f"\n=== {title} ===\n{body}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for entry in _REPORTS:
        terminalreporter.write_line(entry)
