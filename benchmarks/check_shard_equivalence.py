"""CI gate: prove the sharded engine equals the serial engine, per push.

Runs E3 (PIF) and E5 (ME) at n = 32 on the Complete, Clustered, and
WAN-weighted Clustered topologies with ``engine=serial`` and
``engine=sharded`` and fails on any divergence in the trace-derived
metrics (verdict, violation count, waves, CS count, message totals,
request latencies, final time, ...).  On top of the metric comparison it
re-executes two PIF cases — uniform Clustered and the WAN preset, whose
cross-shard lookahead runs 16-tick windows — and compares the raw traces
event for event and by canonical hash — the bit-identity proof obligation.

Usage::

    PYTHONPATH=src python benchmarks/check_shard_equivalence.py
"""

from __future__ import annotations

import sys
import time

from dataclasses import replace

from repro.analysis.runner import run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.engine import TrialSpec, execute
from repro.sim.trace import canonical_trace_hash

N = 32

CASES = [
    ("E3 pif  complete   n=32", run_pif_trial,
     dict(topology=None, seed=0, loss=0.1, requests_per_process=1), dict(shards=4)),
    ("E3 pif  clustered  n=32", run_pif_trial,
     dict(topology="clustered:4", seed=0, loss=0.1, requests_per_process=1), dict()),
    ("E5 me   complete   n=32", run_mutex_trial,
     dict(topology=None, seed=0, loss=0.0, requests_per_process=1), dict(shards=4)),
    ("E5 me   clustered  n=32", run_mutex_trial,
     dict(topology="clustered:4", seed=0, loss=0.0, requests_per_process=1), dict()),
    ("E3 pif  wan        n=32", run_pif_trial,
     dict(topology="wan:4", seed=0, loss=0.1, requests_per_process=1), dict()),
    ("E5 me   wan        n=32", run_mutex_trial,
     dict(topology="wan:4", seed=0, loss=0.0, requests_per_process=1), dict()),
]


def check_metrics() -> bool:
    ok = True
    for name, runner, kwargs, shard_kwargs in CASES:
        t0 = time.perf_counter()
        serial = runner(N, engine="serial", **kwargs)
        t1 = time.perf_counter()
        sharded = runner(N, engine="sharded", **shard_kwargs, **kwargs)
        t2 = time.perf_counter()
        same = (
            serial.ok == sharded.ok
            and serial.violations == sharded.violations
            and serial.measurements == sharded.measurements
        )
        ok &= same
        verdict = "OK " if same else "DIVERGED"
        print(f"{verdict} {name}  serial={t1 - t0:.1f}s sharded={t2 - t1:.1f}s "
              f"metrics={serial.measurements}")
        if not same:
            print(f"     serial : ok={serial.ok} violations={serial.violations} "
                  f"{serial.measurements}")
            print(f"     sharded: ok={sharded.ok} violations={sharded.violations} "
                  f"{sharded.measurements}")
    return ok


def check_bit_identity(topology: str) -> bool:
    spec = TrialSpec(
        n=N,
        build=lambda h: h.register(PifLayer("pif")),
        topology=topology,
        seed=0,
        loss=0.1,
        driver=dict(tag="pif", requests_per_process=1,
                    payload=lambda pid, k: f"m-{pid}-{k}"),
        horizon=2_000_000,
    )
    runs = {
        engine: execute(replace(spec, engine=engine))
        for engine in ("serial", "sharded")
    }
    serial_events = [(e.time, e.kind, e.process, e.data)
                     for e in runs["serial"].trace]
    sharded_events = [(e.time, e.kind, e.process, e.data)
                      for e in runs["sharded"].trace]
    hashes = (
        canonical_trace_hash(runs["serial"].trace),
        canonical_trace_hash(runs["sharded"].trace),
    )
    same = (
        serial_events == sharded_events
        and hashes[0] == hashes[1]
        and runs["serial"].stats.as_dict() == runs["sharded"].stats.as_dict()
        and runs["serial"].final_time == runs["sharded"].final_time
    )
    window = runs["sharded"].window
    print(("OK " if same else "DIVERGED")
          + f" bit-identity {topology} n=32 window={window} "
          f"({len(serial_events)} trace events, "
          f"hash {hashes[0][:16]}.. vs {hashes[1][:16]}..)")
    return same


def main() -> int:
    ok = check_metrics()
    ok &= check_bit_identity("clustered:4")
    ok &= check_bit_identity("wan:4")
    print("shard-equivalence:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
