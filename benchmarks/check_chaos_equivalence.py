"""CI gate: fault-injected cluster runs still equal the serial engine.

The chaos contract (docs/robustness.md) has two halves, and this gate
checks both:

* **Recovery determinism** — a cluster trial whose fault plan kills a
  worker interpreter mid-trial (plus link cuts, dropped/corrupted SHIP
  frames and stalls) must respawn, replay and finish with trace-derived
  metrics *identical* to the serial engine.  Runs E3 (PIF) and E5 (ME)
  on the Complete, Ring and WAN-weighted Clustered topologies at
  n <= 16 with a crash-carrying fault plan per case.
* **Fault-free neutrality** — arming the chaos machinery with an empty
  fault plan (tolerant pumps, dedup sets, ship logs) must leave the
  canonical trace hash of a probe run unchanged on the cluster engine,
  and a *crash-recovered* probe must hash identically to serial too —
  the bit-identity proof obligation extended through a respawn.

A non-gating chaos timeline (``--timeline-out``, default
``BENCH_chaos_timeline.json``) exports the recovery spans — the "chaos"
lane records the respawn/replay interval — for artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/check_chaos_equivalence.py \
        [--timeline-out PATH]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis.runner import run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.engine import ChaosOpts, ClusterOpts, TrialSpec, execute
from repro.engine.spec import resolve_fault_plan
from repro.obs.spans import validate_chrome_trace
from repro.sim.trace import canonical_trace_hash

#: (label, runner, n, hosts, fault plan, trial kwargs) — every case
#: crashes one worker mid-trial; some add the cheaper fault families on
#: top (cuts, ship drops, stalls) to exercise NAK/resend and cut-heal
#: alongside the replay recovery.
CASES = [
    ("E3 pif  complete n=8  hosts=2 crash@b3+drop", run_pif_trial, 8, 2,
     "crash worker 1 at barrier 3\ndrop ship from 1 round 2..9 count 2",
     dict(topology=None, seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  ring     n=12 hosts=3 crash@r2+cut", run_pif_trial, 12, 3,
     "crash worker 2 at round 2\ncut link 0->1 for rounds 2..3",
     dict(topology="ring", seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  wan      n=16 hosts=4 crash@b2", run_pif_trial, 16, 4,
     "crash worker 3 at barrier 2",
     dict(topology="wan:4", seed=0, loss=0.1, requests_per_process=1)),
    ("E5 me   complete n=6  hosts=2 crash@b4+stall", run_mutex_trial, 6, 2,
     "crash worker 0 at barrier 4\nstall worker 1 at round 2 for 0.2s",
     dict(topology=None, seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   ring     n=8  hosts=2 crash@r3+corrupt", run_mutex_trial, 8, 2,
     "crash worker 1 at round 3\ncorrupt ship from 1 count 1",
     dict(topology="ring", seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   wan      n=8  hosts=4 crash@b3", run_mutex_trial, 8, 4,
     "crash worker 2 at barrier 3",
     dict(topology="wan:4", seed=3, loss=0.0, requests_per_process=1)),
]


def check_metrics() -> bool:
    ok = True
    for name, runner, n, hosts, plan, kwargs in CASES:
        t0 = time.perf_counter()
        serial = runner(n, engine="serial", **kwargs)
        t1 = time.perf_counter()
        chaotic = runner(n, engine="cluster", hosts=hosts, fault_plan=plan,
                         **kwargs)
        t2 = time.perf_counter()
        counts = chaotic.provenance.get("fault_counts") or {}
        same = (
            serial.ok == chaotic.ok
            and serial.violations == chaotic.violations
            and serial.measurements == chaotic.measurements
            and chaotic.provenance.get("monitors_ok", False) == chaotic.ok
            and chaotic.provenance.get("recoveries") == 1
            and counts.get("worker.crashed") == 1
            and counts.get("fault.injected.crash") == 1
        )
        ok &= same
        verdict = "OK " if same else "DIVERGED"
        print(f"{verdict} {name}  serial={t1 - t0:.1f}s "
              f"chaos={t2 - t1:.1f}s "
              f"replayed={chaotic.provenance.get('replayed_rounds')} "
              f"faults={counts}")
        if not same:
            print(f"     serial : ok={serial.ok} "
                  f"violations={serial.violations} {serial.measurements}")
            print(f"     chaotic: ok={chaotic.ok} "
                  f"violations={chaotic.violations} {chaotic.measurements} "
                  f"provenance={chaotic.provenance}")
    return ok


def _probe(engine: str, n: int, *, hosts: int | None = None,
           fault_plan: str | None = None, timeline: str | None = None):
    spec = TrialSpec(
        n=n,
        build=lambda h: h.register(PifLayer("pif")),
        topology=None,
        seed=0,
        loss=0.1,
        driver=dict(tag="pif", requests_per_process=1,
                    payload_fmt="m-{pid}-{k}"),
        horizon=2_000_000,
        engine=engine,
        protocol={"kind": "pif"},
        cluster=ClusterOpts(hosts=hosts),
        chaos=ChaosOpts(plan=resolve_fault_plan(fault_plan)),
    )
    if timeline is not None:
        spec = spec.with_obs(None, timeline)
    return execute(spec)


def check_hash_identity(n: int, hosts: int, timeline_out: str) -> bool:
    """Canonical-hash probe: serial vs armed-but-empty plan vs
    crash-recovered, all on one case; the recovered run also exports the
    chaos timeline."""
    serial = _probe("serial", n)
    armed = _probe("cluster", n, hosts=hosts,
                   fault_plan="")  # machinery armed, nothing injected
    recovered = _probe("cluster", n, hosts=hosts,
                       fault_plan="crash worker 1 at barrier 3",
                       timeline=timeline_out)
    hashes = [canonical_trace_hash(run.trace)
              for run in (serial, armed, recovered)]
    same = len(set(hashes)) == 1
    events_same = (
        [(e.time, e.kind, e.process, e.data) for e in serial.trace]
        == [(e.time, e.kind, e.process, e.data) for e in recovered.trace]
    )
    ok = (
        same
        and events_same
        and serial.stats.as_dict() == recovered.stats.as_dict()
        and serial.completions == recovered.completions
        and armed.fault_counts == {}
        and recovered.recoveries == 1
    )
    print(("OK " if ok else "DIVERGED")
          + f" hash-identity complete n={n} hosts={hosts} "
          f"(serial/armed/recovered hashes equal={same}, "
          f"recovered replayed {recovered.replayed_rounds} rounds, "
          f"hash {hashes[0][:16]}..)")

    doc = json.loads(Path(timeline_out).read_text())
    problems = validate_chrome_trace(doc)
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    recovery = [e for e in spans if e["name"] == "recovery"]
    timeline_ok = not problems and len(recovery) == 1
    if problems:
        print(f"     timeline invalid: {problems[:5]}")
    print(("OK " if timeline_ok else "FAILED")
          + f" chaos timeline: {len(spans)} spans, "
          f"{len(recovery)} recovery span(s) -> {timeline_out}")
    return ok and timeline_ok


def check_detection_latency() -> bool:
    """A rendezvous-phase death must surface WorkerCrashed in seconds —
    the anti-timeout guarantee."""
    from repro.errors import WorkerCrashed

    t0 = time.perf_counter()
    try:
        run_pif_trial(6, seed=0, engine="cluster", hosts=2,
                      fault_plan="crash worker 0 at rendezvous")
    except WorkerCrashed as crash:
        wall = time.perf_counter() - t0
        ok = wall < 5.0 and crash.shard == 0 and bool(crash.stderr_tail)
        print(("OK " if ok else "FAILED")
              + f" detection latency: WorkerCrashed(shard 0) in {wall:.1f}s")
        return ok
    print("FAILED detection latency: rendezvous crash did not raise")
    return False


def main() -> int:
    args = sys.argv[1:]
    timeline_out = "BENCH_chaos_timeline.json"
    if "--timeline-out" in args:
        timeline_out = args[args.index("--timeline-out") + 1]
    ok = check_metrics()
    ok &= check_hash_identity(8, 2, timeline_out)
    ok &= check_detection_latency()
    print("chaos-equivalence:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
