"""E10 — robustness across fault models, within and beyond the paper's model.

The paper assumes only channel *fairness* (infinitely many sends imply
infinitely many receipts), plus that transient faults cease.  Hence:

* every fairness-respecting **loss** model (Bernoulli, bursty
  Gilbert–Elliott, deterministic periodic, targeted per-instance) is within
  the model — Specification 1 must hold with **zero** violations;
* **ongoing header corruption** is outside the model (a fault that never
  ceases): liveness still holds (waves keep deciding), but safety may be
  violated — locating the exact boundary of the snap-stabilization
  guarantee.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.experiments import run_fault_model_sweep
from repro.analysis.tables import render_table


def test_e10_fault_models(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fault_model_sweep(n=3, seeds=[0, 1, 2]),
        rounds=1, iterations=1,
    )
    report(
        "E10 — PIF across fault models (within vs beyond the paper's model)",
        render_table(
            ["fault model", "within model", "trials", "spec ok", "violations",
             "messages (mean)"],
            [[r["model"], r["within_model"], r["trials"], r["ok"],
              r["violations"], r["messages_mean"]] for r in rows],
        )
        + "\nexpected: 0 violations for every fairness-respecting loss model;"
        "\nongoing corruption exceeds the fault model (faults never cease) — "
        "liveness persists, safety is best-effort",
    )
    within = [r for r in rows if r["within_model"]]
    beyond = [r for r in rows if not r["within_model"]]
    assert all(r["ok"] == r["trials"] and r["violations"] == 0 for r in within)
    # Liveness held even beyond the model (the sweep raises on any hang).
    assert all(r["trials"] > 0 for r in beyond)
