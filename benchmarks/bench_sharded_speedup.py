"""Sharded-engine speedup: wall-clock vs the serial engine at scale.

Two scenarios, both scrambled PIF waves at n = 128 with 4 workers:

* **uniform** — ``Clustered(4x32)`` with latency (8, 16): dense
  intra-cluster traffic, a thin (<5%) cross-shard cut, and an 8-tick
  conservative window so barriers amortize.
* **wan** — ``wan:4`` (same graph, per-edge weights: intra-cluster (1, 3),
  cross-cluster (16, 32)) with the engine's default latency (1, 3).  The
  global latency floor is 1 tick, but every *cut* edge has lo = 16, so the
  cross-shard lookahead widens the default window to 16 — the barrier count
  must drop by >= 8x vs running at the global-floor window of 1.

Each sharded run must (a) be bit-identical to the serial run and (b) on
hardware with >= 4 usable cores, beat it wall-clock (>= 1.5x uniform,
>= 2x wan — wide windows barely synchronize).  On fewer cores (CI smoke
containers, laptops under cgroup quota) the bit-identity and barrier-count
assertions still run and the table reports the measured ratio, but the
speedup bars are not enforced — multiprocessing cannot beat serial without
parallel hardware.
"""

from __future__ import annotations

import os
import time

from conftest import report

from repro.analysis.tables import render_table
from repro.core.pif import PifLayer
from repro.core.requests import RequestDriver
from repro.sim.runtime import Simulator
from repro.sim.sharded import ShardedSimulator

N = 128
WORKERS = 4
SEED = 0
HORIZON = 400_000

UNIFORM = dict(topology="clustered:4", latency=(8, 16), requests=2)
WAN = dict(topology="wan:4", latency=(1, 3), requests=1)


def _driver_spec(requests: int) -> dict:
    return dict(tag="pif", requests_per_process=requests,
                payload=lambda pid, k: f"m-{pid}-{k}")


def _build(host) -> None:
    host.register(PifLayer("pif"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_serial(topology: str, latency: tuple[int, int], requests: int):
    t0 = time.perf_counter()
    sim = Simulator(N, _build, topology=topology, seed=SEED, latency=latency)
    sim.scramble(seed=SEED ^ 0x5EED)
    driver = RequestDriver(sim, **_driver_spec(requests))
    assert sim.run(HORIZON, until=lambda s: driver.done)
    sim.run(sim.now + 200)
    elapsed = time.perf_counter() - t0
    return elapsed, sim


def _run_sharded(topology: str, latency: tuple[int, int], requests: int,
                 window: int | None):
    t0 = time.perf_counter()
    sharded = ShardedSimulator(
        N, _build, topology=topology, seed=SEED, latency=latency,
        shards=WORKERS, window=window,
    )
    result = sharded.run_trial(
        horizon=HORIZON, scramble_seed=SEED ^ 0x5EED,
        driver=_driver_spec(requests), drain=200,
    )
    elapsed = time.perf_counter() - t0
    return elapsed, result, sharded


def _assert_bit_identical(sim, result) -> None:
    # The speedup is only interesting if the answer is exactly the serial
    # answer.
    serial_events = [(e.time, e.kind, e.process, e.data) for e in sim.trace]
    sharded_events = [(e.time, e.kind, e.process, e.data) for e in result.trace]
    assert serial_events == sharded_events
    assert sim.stats.as_dict() == result.stats.as_dict()
    assert sim.now == result.final_time


def _speedup_rows(scenario: dict, serial_time: float, sim, windows):
    rows = []
    results = {}
    best_ratio = 0.0
    for window in windows:
        sharded_time, result, sharded = _run_sharded(
            scenario["topology"], scenario["latency"], scenario["requests"],
            window,
        )
        ratio = serial_time / sharded_time
        best_ratio = max(best_ratio, ratio)
        rows.append([
            f"sharded w={result.window}", sharded.n_shards, result.window,
            result.barriers, round(result.sync_wall_s, 2),
            round(sharded_time, 2), f"{ratio:.2f}x",
            result.partition.describe()["cut_fraction"],
        ])
        results[result.window] = result
        _assert_bit_identical(sim, result)
    rows.insert(0, ["serial", 1, "-", "-", "-",
                    round(serial_time, 2), "1.00x", "-"])
    return rows, results, best_ratio


_COLUMNS = ["engine", "shards", "window", "barriers", "sync wall s",
            "wall s", "vs serial", "cut"]


def test_sharded_speedup(benchmark):
    serial_time, sim = benchmark.pedantic(
        lambda: _run_serial(**{k: UNIFORM[k] for k in
                               ("topology", "latency")},
                            requests=UNIFORM["requests"]),
        rounds=1, iterations=1,
    )
    rows, _, best_ratio = _speedup_rows(
        UNIFORM, serial_time, sim, (1, UNIFORM["latency"][0]))

    cpus = _usable_cpus()
    report(
        f"sharded speedup — PIF on clustered 4x32 (n={N}), "
        f"{WORKERS} workers, {cpus} usable cores",
        render_table(_COLUMNS, rows)
        + f"\nfinal simulated tick: {sim.now}; messages: {sim.stats.sent}"
        + ("" if cpus >= WORKERS else
           f"\nNOTE: only {cpus} usable core(s) — speedup bar (>=1.5x) "
           "needs >= 4; asserting bit-identity only"),
    )
    if cpus >= WORKERS:
        assert best_ratio >= 1.5, (
            f"sharded engine only reached {best_ratio:.2f}x over serial "
            f"with {WORKERS} workers on {cpus} cores"
        )


def test_sharded_wan_lookahead(benchmark):
    serial_time, sim = benchmark.pedantic(
        lambda: _run_serial(WAN["topology"], WAN["latency"], WAN["requests"]),
        rounds=1, iterations=1,
    )
    # Window 1 is the classic rule (global latency floor); None picks the
    # engine default, which the cross-shard lookahead widens to the cut
    # edges' floor of 16.
    rows, results, best_ratio = _speedup_rows(WAN, serial_time, sim, (1, None))
    wide = max(results)
    assert wide == 16, f"expected cross-shard floor window 16, got {wide}"
    barrier_ratio = results[1].barriers / results[wide].barriers

    cpus = _usable_cpus()
    report(
        f"cross-shard lookahead — PIF on wan:4 (n={N}), "
        f"{WORKERS} workers, {cpus} usable cores",
        render_table(_COLUMNS, rows)
        + f"\nfinal simulated tick: {sim.now}; messages: {sim.stats.sent}"
        + f"\nbarriers w=1 / w={wide}: {barrier_ratio:.1f}x fewer"
        + ("" if cpus >= WORKERS else
           f"\nNOTE: only {cpus} usable core(s) — speedup bar (>=2x) "
           "needs >= 4; asserting bit-identity + barrier count only"),
    )
    assert barrier_ratio >= 8.0, (
        f"widened window only cut barriers {barrier_ratio:.1f}x "
        f"({results[1].barriers} -> {results[wide].barriers}); expected >= 8x"
    )
    if cpus >= WORKERS:
        assert best_ratio >= 2.0, (
            f"sharded engine only reached {best_ratio:.2f}x over serial "
            f"on wan:4 with {WORKERS} workers on {cpus} cores"
        )
