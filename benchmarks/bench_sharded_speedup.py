"""Sharded-engine speedup: wall-clock vs the serial engine at scale.

Scenario: scrambled PIF waves on ``Clustered(4x32)`` (n = 128) with latency
(8, 16) — the shape sharding targets: dense intra-cluster traffic, a thin
(<5%) cross-shard cut, and an 8-tick conservative window so barriers
amortize.  The sharded run uses 4 workers and must (a) be bit-identical to
the serial run and (b) on hardware with >= 4 usable cores, beat it by >= 1.5x
wall-clock.  On fewer cores (CI smoke containers, laptops under cgroup
quota) the bit-identity assertion still runs and the table reports the
measured ratio, but the speedup bar is not enforced — multiprocessing cannot
beat serial without parallel hardware.
"""

from __future__ import annotations

import os
import time

from conftest import report

from repro.analysis.tables import render_table
from repro.core.pif import PifLayer
from repro.core.requests import RequestDriver
from repro.sim.runtime import Simulator
from repro.sim.sharded import ShardedSimulator

N = 128
TOPOLOGY = "clustered:4"
WORKERS = 4
SEED = 0
LATENCY = (8, 16)
HORIZON = 400_000
DRIVER = dict(tag="pif", requests_per_process=2,
              payload=lambda pid, k: f"m-{pid}-{k}")


def _build(host) -> None:
    host.register(PifLayer("pif"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_serial():
    t0 = time.perf_counter()
    sim = Simulator(N, _build, topology=TOPOLOGY, seed=SEED, latency=LATENCY)
    sim.scramble(seed=SEED ^ 0x5EED)
    driver = RequestDriver(sim, **DRIVER)
    assert sim.run(HORIZON, until=lambda s: driver.done)
    sim.run(sim.now + 200)
    elapsed = time.perf_counter() - t0
    return elapsed, sim


def _run_sharded(window: int):
    t0 = time.perf_counter()
    sharded = ShardedSimulator(
        N, _build, topology=TOPOLOGY, seed=SEED, latency=LATENCY,
        shards=WORKERS, window=window,
    )
    result = sharded.run_trial(
        horizon=HORIZON, scramble_seed=SEED ^ 0x5EED, driver=DRIVER, drain=200,
    )
    elapsed = time.perf_counter() - t0
    return elapsed, result, sharded


def test_sharded_speedup(benchmark):
    serial_time, sim = benchmark.pedantic(_run_serial, rounds=1, iterations=1)

    rows = []
    best_ratio = 0.0
    for window in (1, LATENCY[0]):
        sharded_time, result, sharded = _run_sharded(window)
        ratio = serial_time / sharded_time
        best_ratio = max(best_ratio, ratio)
        rows.append([
            f"sharded w={window}", sharded.n_shards, window,
            round(sharded_time, 2), f"{ratio:.2f}x",
            result.partition.describe()["cut_fraction"],
        ])

        # Bit-identity: the speedup is only interesting if the answer is
        # exactly the serial answer.
        serial_events = [(e.time, e.kind, e.process, e.data) for e in sim.trace]
        sharded_events = [(e.time, e.kind, e.process, e.data) for e in result.trace]
        assert serial_events == sharded_events
        assert sim.stats.as_dict() == result.stats.as_dict()
        assert sim.now == result.final_time

    cpus = _usable_cpus()
    rows.insert(0, ["serial", 1, "-", round(serial_time, 2), "1.00x", "-"])
    report(
        f"sharded speedup — PIF on clustered 4x32 (n={N}), "
        f"{WORKERS} workers, {cpus} usable cores",
        render_table(
            ["engine", "shards", "window", "wall s", "vs serial", "cut"],
            rows,
        )
        + f"\nfinal simulated tick: {sim.now}; messages: {sim.stats.sent}"
        + ("" if cpus >= WORKERS else
           f"\nNOTE: only {cpus} usable core(s) — speedup bar (>=1.5x) "
           "needs >= 4; asserting bit-identity only"),
    )
    if cpus >= WORKERS:
        assert best_ratio >= 1.5, (
            f"sharded engine only reached {best_ratio:.2f}x over serial "
            f"with {WORKERS} workers on {cpus} cores"
        )
