"""E3 — Theorem 2: Protocol PIF is snap-stabilizing (Specification 1).

Sweep system size × loss rate × arbitrary initial configurations; every
trial must satisfy all four properties of Specification 1 (Start,
Correctness, Termination, Decision) with zero violations.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.runner import sweep_pif
from repro.analysis.tables import render_table


def run_experiment():
    return sweep_pif(
        ns=[2, 3, 5],
        losses=[0.0, 0.1, 0.3],
        seeds=[0, 1, 2],
        requests_per_process=2,
    )


def test_e3_pif_snap_stabilization(benchmark):
    trials = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Full per-trial records (measurements + engine/transport/wall-clock
    # provenance) land in the bench JSON artifact, so runs of different
    # engines stay comparable row for row.
    benchmark.extra_info["trials"] = [t.as_dict() for t in trials]
    rows = [
        t.row("n", "loss", "ok", "violations", "waves", "msg_per_wave",
              "wave_p50", "wave_p95")
        for t in trials
    ]
    report(
        "E3 / Theorem 2 — PIF from arbitrary initial configurations",
        render_table(
            ["n", "loss", "ok", "violations", "waves", "msg/wave",
             "wave_p50", "wave_p95"],
            rows,
        )
        + f"\npaper: 0 violations expected; got "
        f"{sum(t.violations for t in trials)} across {len(trials)} trials",
    )
    assert all(t.ok for t in trials)
    assert sum(t.violations for t in trials) == 0
