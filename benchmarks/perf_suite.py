"""Unified end-to-end performance suite — the repo's perf trajectory.

Times the three experiment shapes that dominate real usage, each as a
**complete trial including specification evaluation** (exactly what the
``run_*_trial`` runners execute), across the engine x topology grid:

* **e3** — PIF snap-stabilization trial, n=16, loss=0.1, two requests per
  process, on Complete/Ring/Clustered; ``serial`` and ``async`` (loopback).
  The serial-vs-loopback pair on the complete graph is the async hot-path
  yardstick: ``summary.loopback_over_serial_e3`` is the overhead ratio the
  PR-4 batching work drove from ~2x down to <=1.3x.
* **e5** — mutual-exclusion trial, n=16, one request per process, on
  Complete/Clustered; ``serial`` and ``async`` (loopback).  ME trials move
  an order of magnitude more messages per request than PIF, so this case
  weights the transmit/channel hot path.
* **e7** — the scaling workload at n=64 (every process broadcasts once,
  ~125k messages) on the complete graph, ``serial``.
  ``summary.e7_n64_serial_median_s`` is the headline single-engine number
  (the PR-4 acceptance bar: >=1.5x over the pre-overhaul engine).
* **wan** — the sharded engine on the WAN preset (``wan:4``, n=128, 4
  workers): per-edge weights put lo=16 on every cut edge, so the cross-shard
  lookahead widens the default sync window from 1 to 16 ticks.
  ``summary.sharded_barriers_wan_n128`` / ``sharded_sync_wall_wan_s`` record
  what the widened window costs at the barrier, and ``sharded_speedup_wan``
  the wall-clock ratio vs serial (>= 1 only with real parallel hardware —
  informational on shared runners, like every timing here).
* **obs** — ``summary.obs_overhead_e3`` is the paired metrics+timeline-on
  over metrics-off ratio on the E3 serial case: what enabling the
  :mod:`repro.obs` instruments costs (the passive-counter design targets
  ~1.0x; see docs/observability.md).  ``--check-obs-overhead ARTIFACT``
  re-reads a written artifact and verdicts that ratio (the non-gating CI
  step).

Each case runs ``--repeat`` times (median reported; min/max recorded so
noisy runners are visible in the artifact) and the whole table lands in
``BENCH_perf.json`` next to the per-case rows.  The CI timing job uploads
the artifact non-gating — wall clock on shared runners is informational;
the equivalence gates carry correctness.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py [--repeat N] [--quick]
        [--skip-async] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from typing import Any, Callable

from repro.analysis.runner import run_mutex_trial, run_pif_trial

#: Advisory bound for --check-obs-overhead: the obs instruments are
#: passive counters harvested once per trial, so anything beyond a few
#: percent means a hot path regressed.
OBS_OVERHEAD_LIMIT = 1.10


def _case(
    name: str,
    fn: Callable[[], Any],
    repeat: int,
) -> dict[str, Any]:
    times: list[float] = []
    ok = True
    for _ in range(repeat):
        t0 = time.perf_counter()
        trial = fn()
        times.append(time.perf_counter() - t0)
        ok &= bool(trial.ok)
    return {
        "case": name,
        "median_s": round(statistics.median(times), 4),
        "min_s": round(min(times), 4),
        "max_s": round(max(times), 4),
        "repeat": repeat,
        "spec_ok": ok,
    }


def build_cases(skip_async: bool) -> list[tuple[str, Callable[[], Any]]]:
    cases: list[tuple[str, Callable[[], Any]]] = []

    def pif(topology, engine):
        kwargs = dict(seed=0, loss=0.1, requests_per_process=2, topology=topology)
        if engine == "async":
            return lambda: run_pif_trial(
                16, engine="async", transport="loopback", **kwargs
            )
        return lambda: run_pif_trial(16, engine=engine, **kwargs)

    def mutex(topology, engine):
        kwargs = dict(seed=0, loss=0.0, requests_per_process=1, topology=topology)
        if engine == "async":
            return lambda: run_mutex_trial(
                16, engine="async", transport="loopback", **kwargs
            )
        return lambda: run_mutex_trial(16, engine=engine, **kwargs)

    engines = ["serial"] if skip_async else ["serial", "async"]
    for topology in (None, "ring", "clustered:4"):
        for engine in engines:
            top_name = topology or "complete"
            cases.append((f"e3/{top_name}/{engine}", pif(topology, engine)))
    for topology in (None, "clustered:4"):
        for engine in engines:
            top_name = topology or "complete"
            cases.append((f"e5/{top_name}/{engine}", mutex(topology, engine)))
    cases.append((
        "e7/complete/serial",
        lambda: run_pif_trial(64, seed=0, loss=0.0, requests_per_process=1),
    ))
    return cases


def _median_of(rows: list[dict[str, Any]], case: str) -> float | None:
    for row in rows:
        if row["case"] == case:
            return row["median_s"]
    return None


def _loopback_overhead(repeat: int) -> float:
    """Median of per-pair loopback/serial ratios on the E3 complete case.

    Runs the two engines back to back inside each repetition and ratios
    *within* the pair, so drifting background load on a shared runner
    cancels out instead of landing on whichever engine ran last — block
    medians proved too noisy for a threshold quantity.
    """
    ratios: list[float] = []
    kwargs = dict(seed=0, loss=0.1, requests_per_process=2)
    for _ in range(max(repeat, 3)):
        t0 = time.perf_counter()
        run_pif_trial(16, engine="serial", **kwargs)
        t1 = time.perf_counter()
        run_pif_trial(16, engine="async", transport="loopback", **kwargs)
        t2 = time.perf_counter()
        ratios.append((t2 - t1) / (t1 - t0))
    return round(statistics.median(ratios), 3)


def _obs_overhead(repeat: int) -> float:
    """Median of per-pair obs-on/obs-off ratios on the E3 serial case.

    Paired like :func:`_loopback_overhead`; the obs-on leg writes real
    metrics + timeline files (to a temp dir), so the ratio includes the
    collection *and* serialization cost a user actually pays.
    """
    ratios: list[float] = []
    kwargs = dict(seed=0, loss=0.1, requests_per_process=2)
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(max(repeat, 3)):
            t0 = time.perf_counter()
            run_pif_trial(16, engine="serial", **kwargs)
            t1 = time.perf_counter()
            run_pif_trial(
                16, engine="serial",
                metrics=os.path.join(tmp, "metrics.json"),
                timeline=os.path.join(tmp, "timeline.json"),
                **kwargs,
            )
            t2 = time.perf_counter()
            ratios.append((t2 - t1) / (t1 - t0))
    return round(statistics.median(ratios), 3)


def check_obs_overhead(artifact_path: str) -> int:
    """Verdict the recorded obs-overhead ratio (non-gating CI step)."""
    with open(artifact_path) as fh:
        artifact = json.load(fh)
    ratio = artifact.get("summary", {}).get("obs_overhead_e3")
    if ratio is None:
        print(f"{artifact_path}: no summary.obs_overhead_e3 recorded")
        return 1
    verdict = "OK" if ratio <= OBS_OVERHEAD_LIMIT else "SLOW"
    print(f"obs overhead (E3 serial, metrics+timeline on/off): "
          f"{ratio:.3f}x (limit {OBS_OVERHEAD_LIMIT}x) {verdict}")
    return 0 if ratio <= OBS_OVERHEAD_LIMIT else 1


def _wan_sharded(repeat: int) -> dict[str, Any]:
    """Serial-vs-sharded pairs on the WAN preset (wan:4, n=128, 4 workers).

    Paired like :func:`_loopback_overhead` so background load cancels out of
    the speedup ratio.  Barrier count and window are deterministic (read from
    the sharded trial's provenance); sync overhead is the median across
    repetitions.
    """
    kwargs = dict(seed=0, loss=0.0, requests_per_process=1, topology="wan:4")
    ratios: list[float] = []
    syncs: list[float] = []
    prov: dict[str, Any] = {}
    for _ in range(max(repeat, 3)):
        t0 = time.perf_counter()
        run_pif_trial(128, engine="serial", **kwargs)
        t1 = time.perf_counter()
        trial = run_pif_trial(128, engine="sharded", shards=4, **kwargs)
        t2 = time.perf_counter()
        ratios.append((t1 - t0) / (t2 - t1))
        prov = trial.provenance
        syncs.append(prov["sync_wall_s"])
    return {
        "sharded_speedup_wan": round(statistics.median(ratios), 3),
        "sharded_window_wan_n128": prov["window"],
        "sharded_barriers_wan_n128": prov["barriers"],
        "sharded_sync_wall_wan_s": round(statistics.median(syncs), 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed runs per case (median reported)")
    parser.add_argument("--quick", action="store_true",
                        help="2 repeats per case (CI timing job)")
    parser.add_argument("--skip-async", action="store_true",
                        help="serial-only grid (e.g. profiling runs)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="artifact path (default: BENCH_perf.json)")
    parser.add_argument("--check-obs-overhead", default=None, metavar="ARTIFACT",
                        help="instead of running the suite, verdict the "
                             "summary.obs_overhead_e3 ratio recorded in a "
                             "written artifact")
    args = parser.parse_args(argv)
    if args.check_obs_overhead is not None:
        return check_obs_overhead(args.check_obs_overhead)
    repeat = 2 if args.quick else args.repeat

    rows = []
    for name, fn in build_cases(args.skip_async):
        row = _case(name, fn, repeat)
        rows.append(row)
        print(f"{name:<28} median {row['median_s']:.3f}s "
              f"[{row['min_s']:.3f}, {row['max_s']:.3f}] "
              f"spec_ok={row['spec_ok']}")

    summary: dict[str, Any] = {
        "e7_n64_serial_median_s": _median_of(rows, "e7/complete/serial"),
        "e3_n16_serial_median_s": _median_of(rows, "e3/complete/serial"),
        "e5_n16_serial_median_s": _median_of(rows, "e5/complete/serial"),
    }
    if not args.skip_async:
        summary["loopback_over_serial_e3"] = _loopback_overhead(repeat)
    summary.update(_wan_sharded(repeat))
    summary["obs_overhead_e3"] = _obs_overhead(repeat)

    artifact = {
        "suite": "perf_suite",
        "summary": summary,
        "cases": rows,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # Host context: parallel-speedup keys are only comparable
            # between hosts with similar core counts (see
            # check_perf_regression.py's core-gated annotation).
            "cpu_count": os.cpu_count(),
            "repeat": repeat,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(artifact, fh, indent=1)
        fh.write("\n")
    print(f"\nsummary: {json.dumps(summary)}")
    print(f"wrote {args.out}")
    return 0 if all(r["spec_ok"] for r in rows) else 1


if __name__ == "__main__":
    sys.exit(main())
