"""CI gate: the engine and transport registries stay whole.

Asserts, without running a single trial:

* all four built-in engine backends (serial, sharded, async, cluster)
  and the three transports (loopback, tcp, udp) are registered;
* names are unique and every backend's declared capabilities are drawn
  from the known axis vocabulary (plus ``transport:*`` markers);
* every backend declares ``obs`` — observability is engine-independent;
* transport flags are coherent (a deterministic medium cannot be paced;
  socket-fabric media must declare a frame boundary to inject at);
* no per-engine ``if engine ==`` / ``elif engine ==`` dispatch chain has
  crept back into ``src/repro/analysis/`` — the registry is the only
  dispatcher (the grep guard for the PR-10 refactor).

Usage::

    PYTHONPATH=src python benchmarks/check_registry_integrity.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.engine import backends, engine_names
from repro.engine.base import AXES
from repro.net.transport import resolve_transport, transport_names

EXPECTED_ENGINES = ("async", "cluster", "serial", "sharded")
EXPECTED_TRANSPORTS = ("loopback", "tcp", "udp")

#: Valid capability tokens: the axis vocabulary plus transport markers.
_CAPABILITY = re.compile(
    r"^(obs|"
    + "|".join(re.escape(capability) for capability, _, _ in AXES)
    + r"|transport:\w+)$"
)

_DISPATCH = re.compile(r"^\s*(el)?if\s+.*\bengine\s*==")


def check_registries() -> list[str]:
    problems: list[str] = []
    names = engine_names()
    if names != EXPECTED_ENGINES:
        problems.append(f"engine registry: {names} != {EXPECTED_ENGINES}")
    if len(set(names)) != len(names):
        problems.append(f"engine names overlap: {names}")
    for name, backend in backends().items():
        if name != backend.name:
            problems.append(
                f"registry key {name!r} != backend name {backend.name!r}")
        caps = backend.capabilities()
        if not isinstance(caps, frozenset):
            problems.append(f"{backend.name}: capabilities() not a frozenset")
            caps = frozenset(caps)
        if "obs" not in caps:
            problems.append(f"{backend.name}: missing the 'obs' capability")
        for cap in sorted(caps):
            if not _CAPABILITY.match(cap):
                problems.append(f"{backend.name}: unknown capability {cap!r}")

    tnames = transport_names()
    if tnames != EXPECTED_TRANSPORTS:
        problems.append(f"transport registry: {tnames} != {EXPECTED_TRANSPORTS}")
    for tname in tnames:
        kind = resolve_transport(tname)
        if kind.deterministic and kind.paced:
            problems.append(f"transport {tname}: deterministic yet paced")
        if kind.fabric_factory is not None and not kind.frame_boundary:
            problems.append(f"transport {tname}: socket fabric without frames")
    return problems


def check_no_dispatch_chains() -> list[str]:
    problems: list[str] = []
    analysis = Path(__file__).resolve().parent.parent / "src/repro/analysis"
    for path in sorted(analysis.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if _DISPATCH.match(line):
                problems.append(
                    f"{path.relative_to(analysis.parent.parent.parent)}:"
                    f"{lineno}: per-engine dispatch chain: {line.strip()}"
                )
    return problems


def main() -> int:
    problems = check_registries() + check_no_dispatch_chains()
    for problem in problems:
        print("FAILED", problem)
    print(f"registries: engines={engine_names()} "
          f"transports={transport_names()}")
    print("registry-integrity:", "FAIL" if problems else "PASS")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
