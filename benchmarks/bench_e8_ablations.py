"""E8 — ablations: each design choice of the paper is load-bearing.

* E8a: flag domain {0..k} with k < 4 lets a capacity-legal adversary make
  the initiator decide without the peer receiving the broadcast; k = 4 (the
  paper's choice) resists the same adversary (Lemma 4).
* E8b: the literal ``mod (n+1)`` of action A7 starves the system (it
  contradicts the paper's own Lemma 11); the corrected ``mod n`` serves
  every request.
* E8c: the paper's naive PIF sketch deadlocks under loss and believes
  stale feedback; Protocol PIF does neither.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.ablations import (
    run_flag_ablation,
    run_modulus_ablation,
    run_naive_ablation,
)
from repro.analysis.tables import render_table


def test_e8a_flag_domain(benchmark):
    results = benchmark.pedantic(
        lambda: [run_flag_ablation(k) for k in (1, 2, 3, 4, 5)],
        rounds=1, iterations=1,
    )
    report(
        "E8a — handshake flag domain ablation",
        render_table(
            ["max_state", "decided", "spec_ok", "first violation"],
            [r.row() for r in results],
        )
        + "\npaper (Lemma 4): 5 values {0..4} are necessary and sufficient "
        "for capacity-1 channels",
    )
    by_k = {r.max_state: r for r in results}
    assert all(not by_k[k].spec_ok for k in (1, 2, 3))
    assert all(by_k[k].spec_ok for k in (4, 5))


def test_e8b_value_modulus(benchmark):
    row = benchmark.pedantic(
        lambda: run_modulus_ablation(n=3, requests_per_process=3,
                                     horizon=120_000),
        rounds=1, iterations=1,
    )
    report(
        "E8b — A7 modulus ablation (paper's mod n+1 vs corrected mod n)",
        render_table(
            ["n", "requested", "mod(n+1) served", "mod(n+1) done",
             "mod n served", "mod n done"],
            [[row["n"], row["requested"], row["paper_mod_served"],
              row["paper_mod_completed"], row["fixed_mod_served"],
              row["fixed_mod_completed"]]],
        )
        + "\nmod (n+1) reaches the dead value n and stalls -> the paper's "
        "A7 line is a typo (contradicts Lemma 11)",
    )
    assert not row["paper_mod_completed"]
    assert row["fixed_mod_completed"]


def test_e8c_naive_pif(benchmark):
    row = benchmark.pedantic(
        lambda: run_naive_ablation(seeds=list(range(8)), loss=0.3,
                                   horizon=25_000),
        rounds=1, iterations=1,
    )
    report(
        "E8c — naive PIF (Section 4.1 sketch) vs Protocol PIF",
        render_table(
            ["configs", "loss", "naive deadlocks", "naive violations",
             "PIF deadlocks", "PIF violations"],
            [[row["configs"], row["loss"], row["naive_deadlocks"],
              row["naive_safety_violations"], row["pif_deadlocks"],
              row["pif_safety_violations"]]],
        )
        + "\npaper: the naive scheme suffers exactly failure modes (1) "
        "deadlock and (2) stale feedback",
    )
    assert row["pif_deadlocks"] == 0
    assert row["pif_safety_violations"] == 0
    assert row["naive_deadlocks"] + row["naive_safety_violations"] > 0
