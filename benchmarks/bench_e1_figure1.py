"""E1 — Figure 1: worst-case two-process PIF handshake.

Paper claim: from the worst-case initial configuration, ``State_p[q]`` can
be pushed up to 3 by garbage and stale echoes alone, but the 3 → 4 switch
(the receive-fck) requires a genuine causal round trip — ``q``'s
receive-brd precedes ``p``'s receive-fck — and the computation still
satisfies Specification 1.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.experiments import run_figure1
from repro.analysis.tables import render_table


def run_experiment():
    return [run_figure1(seed=seed) for seed in range(5)]


def test_e1_figure1_worst_case(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [i, r.spurious_level, r.brd_time, r.fck_time, r.decide_time, r.spec_ok]
        for i, r in enumerate(results)
    ]
    report(
        "E1 / Figure 1 — worst-case handshake (2 processes)",
        render_table(
            ["seed", "spurious_level", "brd@q", "fck@p", "decide@p", "spec_ok"],
            rows,
        )
        + "\npaper: spurious advancement <= 3; 3->4 only after a causal round trip",
    )
    for r in results:
        assert r.spurious_level <= 3
        assert r.brd_time <= r.fck_time <= r.decide_time
        assert r.spec_ok
    # The crafted configuration actually achieves the worst case.
    assert max(r.spurious_level for r in results) == 3
