"""CI gate: prove the async loopback engine equals the serial engine.

Runs E3 (PIF) and E5 (ME) on the Complete, Ring, Clustered and
WAN-weighted Clustered topologies at n <= 32 with ``engine=serial`` and
``engine=async --transport loopback`` and fails on any divergence in the
trace-derived metrics.  On top of the metric comparison it re-executes two
PIF cases — uniform Clustered and the WAN preset, where per-edge latency
draws must stay engine-independent — and compares the raw traces event for
event plus a canonical trace hash — the bit-identity proof obligation —
and asserts every online monitor agreed with the offline verdict.

``--tcp-smoke`` additionally runs one E3 trial at n=8 over real localhost
TCP sockets and requires completion with all online spec monitors
passing; ``--tcp-only`` runs just that smoke.  The tcp path is wall-clock
best-effort, so CI keeps it non-gating; the loopback gate is the hard
contract.

Usage::

    PYTHONPATH=src python benchmarks/check_async_equivalence.py \
        [--tcp-smoke | --tcp-only]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.runner import execute_trial, run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.sim.trace import canonical_trace_hash

CASES = [
    ("E3 pif  complete   n=16", run_pif_trial, 16,
     dict(topology=None, seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  ring       n=16", run_pif_trial, 16,
     dict(topology="ring", seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  clustered  n=16", run_pif_trial, 16,
     dict(topology="clustered:4", seed=0, loss=0.1, requests_per_process=1)),
    ("E5 me   complete   n=8 ", run_mutex_trial, 8,
     dict(topology=None, seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   ring       n=8 ", run_mutex_trial, 8,
     dict(topology="ring", seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   clustered  n=16", run_mutex_trial, 16,
     dict(topology="clustered:4", seed=3, loss=0.1, requests_per_process=1)),
    ("E3 pif  wan        n=32", run_pif_trial, 32,
     dict(topology="wan:4", seed=0, loss=0.1, requests_per_process=1)),
]


def check_metrics() -> bool:
    ok = True
    for name, runner, n, kwargs in CASES:
        t0 = time.perf_counter()
        serial = runner(n, engine="serial", **kwargs)
        t1 = time.perf_counter()
        loopback = runner(n, engine="async", transport="loopback", **kwargs)
        t2 = time.perf_counter()
        same = (
            serial.ok == loopback.ok
            and serial.violations == loopback.violations
            and serial.measurements == loopback.measurements
            and loopback.provenance.get("monitors_ok", False) == loopback.ok
        )
        ok &= same
        verdict = "OK " if same else "DIVERGED"
        print(f"{verdict} {name}  serial={t1 - t0:.1f}s loopback={t2 - t1:.1f}s "
              f"metrics={serial.measurements}")
        if not same:
            print(f"     serial  : ok={serial.ok} violations={serial.violations} "
                  f"{serial.measurements}")
            print(f"     loopback: ok={loopback.ok} violations={loopback.violations} "
                  f"{loopback.measurements} monitors={loopback.provenance}")
    return ok


def check_bit_identity(topology: str, n: int) -> bool:
    driver = dict(tag="pif", requests_per_process=1,
                  payload=lambda pid, k: f"m-{pid}-{k}")
    runs = {}
    for engine in ("serial", "async"):
        runs[engine] = execute_trial(
            n, lambda h: h.register(PifLayer("pif")),
            topology=topology, seed=0, loss=0.1,
            driver=driver, horizon=2_000_000, engine=engine,
        )
    serial_events = [(e.time, e.kind, e.process, e.data)
                     for e in runs["serial"].trace]
    loopback_events = [(e.time, e.kind, e.process, e.data)
                       for e in runs["async"].trace]
    hashes = (
        canonical_trace_hash(runs["serial"].trace),
        canonical_trace_hash(runs["async"].trace),
    )
    same = (
        serial_events == loopback_events
        and hashes[0] == hashes[1]
        and runs["serial"].stats.as_dict() == runs["async"].stats.as_dict()
        and runs["serial"].final_time == runs["async"].final_time
        and runs["serial"].completions == runs["async"].completions
    )
    print(("OK " if same else "DIVERGED")
          + f" bit-identity {topology} n={n} ({len(serial_events)} trace "
          f"events, hash {hashes[0][:16]}.. vs {hashes[1][:16]}..)")
    return same


def tcp_smoke() -> bool:
    """One E3 trial at n=8 over real sockets; every monitor must pass."""
    driver = dict(tag="pif", requests_per_process=1,
                  payload=lambda pid, k: f"m-{pid}-{k}")
    t0 = time.perf_counter()
    run = execute_trial(
        8, lambda h: h.register(PifLayer("pif")),
        seed=0, loss=0.1, driver=driver, horizon=60_000,
        engine="async", transport="tcp",
    )
    wall = time.perf_counter() - t0
    ok = run.completed and run.monitors_ok
    print(("OK " if ok else "FAILED")
          + f" tcp smoke E3 n=8: completed={run.completed} wall={wall:.1f}s "
          f"final_time={run.final_time} ticks "
          f"monitors={[r.summary() for r in run.monitor_reports]}")
    for report in run.monitor_reports:
        for violation in report.violations[:5]:
            print(f"     {report.name}: {violation}")
    return ok


def main() -> int:
    args = sys.argv[1:]
    ok = True
    if "--tcp-only" not in args:
        ok = check_metrics()
        ok &= check_bit_identity("clustered:4", 16)
        ok &= check_bit_identity("wan:4", 32)
    if "--tcp-smoke" in args or "--tcp-only" in args:
        ok &= tcp_smoke()
    print("async-equivalence:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
