"""CI gate: prove the async loopback engine equals the serial engine.

Runs E3 (PIF) and E5 (ME) on the Complete, Ring, Clustered and
WAN-weighted Clustered topologies at n <= 32 with ``engine=serial`` and
``engine=async --transport loopback`` and fails on any divergence in the
trace-derived metrics.  On top of the metric comparison it re-executes two
PIF cases — uniform Clustered and the WAN preset, where per-edge latency
draws must stay engine-independent — and compares the raw traces event for
event plus a canonical trace hash — the bit-identity proof obligation —
and asserts every online monitor agreed with the offline verdict.

Every case is one :class:`~repro.engine.TrialSpec` with the engine axis
replaced per run — the comparison goes through the same
:func:`repro.engine.execute` pipeline and backend registry the CLI uses.

``--tcp-smoke`` additionally runs one E3 trial at n=8 over real localhost
TCP sockets and requires completion with all online spec monitors
passing; ``--udp-smoke`` does the same over loopback UDP datagrams (the
transport registered purely through the registry — no engine/runner/CLI
edits); ``--tcp-only``/``--udp-only`` run just that smoke.  The socket
paths are wall-clock best-effort, so CI keeps them non-gating; the
loopback gate is the hard contract.

Usage::

    PYTHONPATH=src python benchmarks/check_async_equivalence.py \
        [--tcp-smoke | --tcp-only | --udp-smoke | --udp-only]
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.analysis.runner import run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.engine import TransportOpts, TrialSpec, execute
from repro.sim.trace import canonical_trace_hash

CASES = [
    ("E3 pif  complete   n=16", run_pif_trial,
     TrialSpec(n=16, topology=None, seed=0, loss=0.1)),
    ("E3 pif  ring       n=16", run_pif_trial,
     TrialSpec(n=16, topology="ring", seed=0, loss=0.1)),
    ("E3 pif  clustered  n=16", run_pif_trial,
     TrialSpec(n=16, topology="clustered:4", seed=0, loss=0.1)),
    ("E5 me   complete   n=8 ", run_mutex_trial,
     TrialSpec(n=8, topology=None, seed=1, loss=0.0)),
    ("E5 me   ring       n=8 ", run_mutex_trial,
     TrialSpec(n=8, topology="ring", seed=1, loss=0.0)),
    ("E5 me   clustered  n=16", run_mutex_trial,
     TrialSpec(n=16, topology="clustered:4", seed=3, loss=0.1)),
    ("E3 pif  wan        n=32", run_pif_trial,
     TrialSpec(n=32, topology="wan:4", seed=0, loss=0.1)),
]


def check_metrics() -> bool:
    ok = True
    for name, runner, base in CASES:
        t0 = time.perf_counter()
        serial = runner(spec=replace(base, engine="serial"),
                        requests_per_process=1)
        t1 = time.perf_counter()
        loopback = runner(spec=replace(base, engine="async"),
                          requests_per_process=1)
        t2 = time.perf_counter()
        same = (
            serial.ok == loopback.ok
            and serial.violations == loopback.violations
            and serial.measurements == loopback.measurements
            and loopback.provenance.get("monitors_ok", False) == loopback.ok
        )
        ok &= same
        verdict = "OK " if same else "DIVERGED"
        print(f"{verdict} {name}  serial={t1 - t0:.1f}s loopback={t2 - t1:.1f}s "
              f"metrics={serial.measurements}")
        if not same:
            print(f"     serial  : ok={serial.ok} violations={serial.violations} "
                  f"{serial.measurements}")
            print(f"     loopback: ok={loopback.ok} violations={loopback.violations} "
                  f"{loopback.measurements} monitors={loopback.provenance}")
    return ok


def _pif_spec(n: int, *, topology: str | None, horizon: int = 2_000_000,
              transport: str = "loopback") -> TrialSpec:
    return TrialSpec(
        n=n,
        build=lambda h: h.register(PifLayer("pif")),
        topology=topology,
        seed=0,
        loss=0.1,
        driver=dict(tag="pif", requests_per_process=1,
                    payload=lambda pid, k: f"m-{pid}-{k}"),
        horizon=horizon,
        transport=TransportOpts(transport=transport),
    )


def check_bit_identity(topology: str, n: int) -> bool:
    spec = _pif_spec(n, topology=topology)
    runs = {
        engine: execute(replace(spec, engine=engine))
        for engine in ("serial", "async")
    }
    serial_events = [(e.time, e.kind, e.process, e.data)
                     for e in runs["serial"].trace]
    loopback_events = [(e.time, e.kind, e.process, e.data)
                       for e in runs["async"].trace]
    hashes = (
        canonical_trace_hash(runs["serial"].trace),
        canonical_trace_hash(runs["async"].trace),
    )
    same = (
        serial_events == loopback_events
        and hashes[0] == hashes[1]
        and runs["serial"].stats.as_dict() == runs["async"].stats.as_dict()
        and runs["serial"].final_time == runs["async"].final_time
        and runs["serial"].completions == runs["async"].completions
    )
    print(("OK " if same else "DIVERGED")
          + f" bit-identity {topology} n={n} ({len(serial_events)} trace "
          f"events, hash {hashes[0][:16]}.. vs {hashes[1][:16]}..)")
    return same


def socket_smoke(transport: str) -> bool:
    """One E3 trial at n=8 over real sockets; every monitor must pass."""
    t0 = time.perf_counter()
    run = execute(replace(
        _pif_spec(8, topology=None, horizon=60_000, transport=transport),
        engine="async",
    ))
    wall = time.perf_counter() - t0
    ok = run.completed and run.monitors_ok
    print(("OK " if ok else "FAILED")
          + f" {transport} smoke E3 n=8: completed={run.completed} "
          f"wall={wall:.1f}s final_time={run.final_time} ticks "
          f"monitors={[r.summary() for r in run.monitor_reports]}")
    for report in run.monitor_reports:
        for violation in report.violations[:5]:
            print(f"     {report.name}: {violation}")
    return ok


def main() -> int:
    args = sys.argv[1:]
    only = "--tcp-only" in args or "--udp-only" in args
    ok = True
    if not only:
        ok = check_metrics()
        ok &= check_bit_identity("clustered:4", 16)
        ok &= check_bit_identity("wan:4", 32)
    if "--tcp-smoke" in args or "--tcp-only" in args:
        ok &= socket_smoke("tcp")
    if "--udp-smoke" in args or "--udp-only" in args:
        ok &= socket_smoke("udp")
    print("async-equivalence:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
