"""E4 — Theorem 3: Protocol IDL is snap-stabilizing (Specification 2).

Every started IDs-Learning computation must deliver the exact identity
table and the exact minimum identity, from any initial configuration.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.runner import run_idl_trial
from repro.analysis.tables import render_table


def run_experiment():
    trials = []
    for n in (2, 4, 6):
        for loss in (0.0, 0.2):
            for seed in (0, 1, 2):
                trials.append(
                    run_idl_trial(n, seed=seed, loss=loss, requests_per_process=2)
                )
    # Non-pid identities: leadership must follow identities.
    trials.append(
        run_idl_trial(
            3, seed=7, idents={1: 300, 2: 10, 3: 200}, requests_per_process=1
        )
    )
    return trials


def test_e4_idl_snap_stabilization(benchmark):
    trials = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        t.row("n", "loss", "ok", "violations", "computations", "latency_p50")
        for t in trials
    ]
    report(
        "E4 / Theorem 3 — IDs-Learning from arbitrary initial configurations",
        render_table(
            ["n", "loss", "ok", "violations", "computations", "latency_p50"],
            rows,
        )
        + "\npaper: every started computation yields exact ID-Tab and minID",
    )
    assert all(t.ok for t in trials)
