"""E11 — the topology × fault scenario matrix.

One row per (topology, loss model) scenario: scrambled PIF trials checked
against the topology-generalized Specification 1, plus a mutual-exclusion
sweep on the sparse topologies (per-leader-cluster Correctness).  Every cell
must report zero violations — the snap-stabilization guarantee is claimed
for the wave's reach on *any* connected topology, not just the paper's
complete graph.

The matrix carries a weighted axis: ``wan:2`` is the same graph as
``clustered:2`` with per-edge latency maps (fast intra-cluster, slow
cross-cluster), so the uniform-vs-WAN row pair shows how heterogeneous
latency stretches waves without touching correctness (the ``weighted``
column marks which rows drew per-edge bounds).
"""

from __future__ import annotations

from conftest import report

from repro.analysis.experiments import run_topology_matrix
from repro.analysis.tables import render_table

TOPOLOGIES = ["complete", "ring", "star", "grid", "gnp:0.35", "clustered:2",
              "wan:2"]
LOSSES = [0.0, 0.25]
SEEDS = [0, 1, 2]


def run_pif_matrix():
    return run_topology_matrix(
        n=8, topologies=TOPOLOGIES, losses=LOSSES, seeds=SEEDS, protocol="pif"
    )


def run_mutex_matrix():
    return run_topology_matrix(
        n=6, topologies=["complete", "ring", "star", "clustered:2", "wan:2"],
        losses=[0.0, 0.1], seeds=[0, 1], protocol="mutex",
    )


def _render(rows):
    return render_table(list(rows[0].keys()), [list(r.values()) for r in rows])


def test_topology_matrix_pif(benchmark):
    rows = benchmark.pedantic(run_pif_matrix, rounds=1, iterations=1)
    report("E11 — topology x fault matrix (PIF)", _render(rows))
    for row in rows:
        assert row["ok"] == row["trials"], row
        assert row["violations"] == 0, row


def test_topology_matrix_mutex(benchmark):
    rows = benchmark.pedantic(run_mutex_matrix, rounds=1, iterations=1)
    report("E11 — topology x fault matrix (ME)", _render(rows))
    for row in rows:
        assert row["ok"] == row["trials"], row
        assert row["violations"] == 0, row
