"""E9 — Property 1 (channel flushing) and the capacity-c extension.

* E9a: after one complete PIF computation started by p, no
  initial-configuration message survives in any channel adjacent to p.
* E9b: with capacity-c channels and flag domain {0..c+3}, the protocol
  remains snap-stabilizing (the paper's "extension is straightforward").
"""

from __future__ import annotations

from conftest import report

from repro.analysis.experiments import run_capacity_sweep, run_property1_check
from repro.analysis.tables import render_table


def test_e9a_property1(benchmark):
    rows_raw = benchmark.pedantic(
        lambda: [run_property1_check(n=n, seed=s) for n in (2, 4) for s in (0, 1)],
        rounds=1, iterations=1,
    )
    report(
        "E9a / Property 1 — channel flushing after a complete wave",
        render_table(
            ["n", "garbage injected", "leftover after wave", "holds"],
            [[r["n"], r["injected"], r["leftover_initial_messages"],
              r["property1_holds"]] for r in rows_raw],
        )
        + "\npaper: every message adjacent to the initiator in gamma_0 is "
        "gone when the computation terminates",
    )
    assert all(r["property1_holds"] for r in rows_raw)


def test_e9b_capacity_extension(benchmark):
    rows_raw = benchmark.pedantic(
        lambda: run_capacity_sweep([1, 2, 4], n=3, seeds=[0, 1, 2]),
        rounds=1, iterations=1,
    )
    report(
        "E9b — known capacity c with flag domain {0..c+3}",
        render_table(
            ["capacity", "max_state", "trials", "trials ok", "violations"],
            [[r["capacity"], r["max_state"], r["trials"], r["ok"],
              r["violations"]] for r in rows_raw],
        )
        + "\npaper: the extension to known bounded capacity is straightforward",
    )
    assert all(r["ok"] == r["trials"] and r["violations"] == 0 for r in rows_raw)
