"""E2 — Theorem 1: impossibility with unbounded channels, executable.

Paper claim: for any safety-distributed specification (here: mutual
exclusion), per-process witness executions can be folded into an initial
configuration γ₀ — on *unbounded* channels — whose replay violates safety;
with bounded channels γ₀ simply does not exist.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.experiments import run_impossibility_experiment
from repro.analysis.tables import render_table


def run_experiment():
    return [run_impossibility_experiment(n=n, seed=0) for n in (2, 3)]


def test_e2_theorem1(benchmark):
    rows_raw = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [
            r["n"],
            r["unbounded_violated"],
            f"{r['max_concurrency']}/{r['n']}",
            r["messages_preloaded"],
            r["max_channel_depth"],
            r["bounded_construction_fails"],
        ]
        for r in rows_raw
    ]
    report(
        "E2 / Theorem 1 — impossibility construction",
        render_table(
            [
                "n",
                "unbounded: safety violated",
                "concurrent CS",
                "msgs in gamma_0",
                "deepest channel",
                "bounded: gamma_0 impossible",
            ],
            rows,
        )
        + "\npaper: violation realizable iff channels are unbounded",
    )
    for r in rows_raw:
        assert r["unbounded_violated"]
        assert r["max_concurrency"] == r["n"]
        assert r["bounded_construction_fails"]
        assert r["max_channel_depth"] > 1
