"""E5 — Theorem 4: Protocol ME is snap-stabilizing (Specification 3).

Every requesting process enters the critical section in finite time
(Start) and requested critical sections never overlap anything
(Correctness), from any initial configuration, under loss.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.runner import sweep_mutex
from repro.analysis.tables import render_table


def run_experiment():
    return sweep_mutex(
        ns=[2, 3, 4],
        losses=[0.0, 0.1],
        seeds=[0, 1],
        requests_per_process=2,
    )


def test_e5_mutex_snap_stabilization(benchmark):
    trials = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Full per-trial records (measurements + engine/transport/wall-clock
    # provenance) land in the bench JSON artifact, so runs of different
    # engines stay comparable row for row.
    benchmark.extra_info["trials"] = [t.as_dict() for t in trials]
    rows = [
        t.row("n", "loss", "ok", "violations", "served", "requested",
              "latency_p50", "latency_p95")
        for t in trials
    ]
    report(
        "E5 / Theorem 4 — mutual exclusion from arbitrary initial configurations",
        render_table(
            ["n", "loss", "ok", "violations", "served", "requested",
             "latency_p50", "latency_p95"],
            rows,
        )
        + "\npaper: all requests served, zero exclusion violations",
    )
    assert all(t.ok for t in trials)
    assert all(
        t.measurements["served"] == t.measurements["requested"] for t in trials
    )
