"""Compare a fresh BENCH_perf.json against the committed baseline.

Reads the committed ``benchmarks/baselines/BENCH_perf_baseline.json`` and
a freshly produced ``BENCH_perf.json`` (``perf_suite.py``'s output),
compares every timing key — summary timings and per-case medians — and
prints a per-key delta table.  When ``$GITHUB_STEP_SUMMARY`` is set the
table is also appended there as markdown, so the drift is visible on the
workflow run page without downloading artifacts.

Keys whose delta exceeds the tolerance (default +/-30%) are flagged.
Counter-style summary keys (window sizes, barrier counts) must match
exactly — a changed barrier count is a protocol change, not timing noise.
Parallel-speedup keys are *core-gated*: they only enter the verdict when
both artifacts record a compatible ``meta.cpu_count`` (see
:data:`CORE_GATED`), because a 4-worker speedup measured on 2 cores says
nothing about the code.

Exit code: 0 when every timing key is within tolerance, 1 otherwise.
CI runs this **non-gating** (shared-runner wall clock is informational —
the equivalence gates carry correctness), so the exit code feeds a
visible warning, not a red build.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        [--current BENCH_perf.json] [--baseline ...] [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_perf_baseline.json"

#: Summary keys that are protocol counters, not timings: they must be
#: bit-equal across runs of the same code on any machine.
EXACT_KEYS = frozenset({"sharded_window_wan_n128", "sharded_barriers_wan_n128"})

#: Parallel-speedup keys -> cores the measurement needs to mean anything.
#: The committed baseline's ``sharded_speedup_wan: 0.804`` was measured on
#: a shared runner where 4 workers contended for fewer cores; comparing it
#: against a many-core host (or vice versa) measures the hardware, not the
#: code.  When either artifact lacks ``meta.cpu_count``, has fewer cores
#: than required, or the two hosts differ, the key is annotated
#: ``core-gated`` and excluded from the drift verdict.
CORE_GATED: dict[str, int] = {"summary.sharded_speedup_wan": 4}


def _core_gated(key: str, baseline: dict, current: dict) -> bool:
    required = CORE_GATED.get(key)
    if required is None:
        return False
    base_cpus = baseline.get("meta", {}).get("cpu_count")
    cur_cpus = current.get("meta", {}).get("cpu_count")
    return (
        base_cpus is None
        or cur_cpus is None
        or base_cpus < required
        or cur_cpus < required
        or base_cpus != cur_cpus
    )


def timing_keys(doc: dict) -> dict[str, float]:
    keys = {
        f"summary.{key}": value
        for key, value in doc.get("summary", {}).items()
        if isinstance(value, (int, float)) and key not in EXACT_KEYS
    }
    for case in doc.get("cases", []):
        keys[f"case.{case['case']}.median_s"] = case["median_s"]
    return keys


def exact_keys(doc: dict) -> dict[str, object]:
    return {
        f"summary.{key}": value
        for key, value in doc.get("summary", {}).items()
        if key in EXACT_KEYS
    }


def compare(baseline: dict, current: dict, tolerance: float) -> tuple[list[list[str]], bool]:
    base_timings = timing_keys(baseline)
    cur_timings = timing_keys(current)
    rows: list[list[str]] = []
    ok = True
    for key in sorted(set(base_timings) | set(cur_timings)):
        base = base_timings.get(key)
        cur = cur_timings.get(key)
        if base is None or cur is None:
            rows.append([key, fmt(base), fmt(cur), "-", "MISSING"])
            # A renamed or dropped key is suite drift, not a regression:
            # flag it in the table but leave the verdict to timing keys.
            continue
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - base) / base
        if _core_gated(key, baseline, current):
            rows.append([key, fmt(base), fmt(cur), f"{delta:+.1%}",
                         "core-gated"])
            continue
        within = abs(delta) <= tolerance
        ok &= within
        rows.append([key, fmt(base), fmt(cur), f"{delta:+.1%}",
                     "ok" if within else "DRIFT"])
    for key in sorted(set(exact_keys(baseline)) | set(exact_keys(current))):
        base = exact_keys(baseline).get(key)
        cur = exact_keys(current).get(key)
        same = base == cur
        ok &= same
        rows.append([key, str(base), str(cur), "exact",
                     "ok" if same else "CHANGED"])
    return rows, ok


def fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4f}"


def render_text(rows: list[list[str]]) -> str:
    headers = ["key", "baseline", "current", "delta", "verdict"]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


def render_markdown(rows: list[list[str]], tolerance: float, ok: bool) -> str:
    lines = [
        "### Perf vs baseline "
        + ("✅ within tolerance" if ok else "⚠️ drift beyond tolerance"),
        "",
        f"Tolerance: ±{tolerance:.0%} (non-gating; shared-runner wall clock "
        f"is informational)",
        "",
        "| key | baseline | current | delta | verdict |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=Path("BENCH_perf.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative drift per timing key (0.30 = ±30%%)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    rows, ok = compare(baseline, current, args.tolerance)
    print(render_text(rows))
    print(f"\nperf-regression: {'PASS' if ok else 'DRIFT'} "
          f"(tolerance ±{args.tolerance:.0%})")

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write(render_markdown(rows, args.tolerance, ok))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
