"""CI gate: prove the multi-host cluster engine equals the serial engine.

Runs E3 (PIF) and E5 (ME) on the Complete, Ring and WAN-weighted
Clustered topologies at n <= 16 with ``engine=serial`` and
``engine=cluster`` (2-4 localhost worker interpreters — real OS
processes, real sockets, BARRIER-synchronized windows) and fails on any
divergence in the trace-derived metrics.  On top of the metric
comparison it re-executes one PIF probe case and compares the raw traces
event for event plus the canonical trace hash — windowed mode's
bit-identity proof obligation — and asserts every online monitor agreed
with the offline verdict.

The probe also re-runs the first bit-identity case with the
:mod:`repro.obs` instruments enabled (``--metrics``/``--timeline``) and
asserts (a) the canonical hash is *unchanged* by observation — the
metrics-on bit-identity claim of docs/observability.md — and (b) the
exported timeline is structurally valid Chrome trace-event JSON covering
the coordinator plus every worker lane with barrier-wait spans.  The
timeline lands at ``--timeline-out`` (default
``BENCH_cluster_timeline.json``) so CI can upload it as an artifact.

``--freerun-smoke`` additionally runs one E3 trial in ``sync=freerun``
mode (best-effort progress, online monitors are the verdict) and
requires completion with all monitors passing; ``--freerun-only`` runs
just that smoke.  Freerun is wall-clock dependent, so CI keeps it
non-gating; the windowed gate is the hard contract.

Usage::

    PYTHONPATH=src python benchmarks/check_cluster_equivalence.py \
        [--freerun-smoke | --freerun-only] [--timeline-out PATH]
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis.runner import run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.engine import ClusterOpts, TrialSpec, execute
from repro.obs.spans import validate_chrome_trace
from repro.sim.trace import canonical_trace_hash

#: (label, runner, n, hosts, trial kwargs) — every topology family the
#: partition layer distinguishes (complete: all-pairs cut; ring: two
#: neighbour arcs per shard; wan:4: weighted cross-cluster edges that
#: widen the sync window), each small enough for a laptop or CI runner.
CASES = [
    ("E3 pif  complete n=8  hosts=2", run_pif_trial, 8, 2,
     dict(topology=None, seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  ring     n=12 hosts=3", run_pif_trial, 12, 3,
     dict(topology="ring", seed=0, loss=0.1, requests_per_process=1)),
    ("E3 pif  wan      n=16 hosts=4", run_pif_trial, 16, 4,
     dict(topology="wan:4", seed=0, loss=0.1, requests_per_process=1)),
    ("E5 me   complete n=6  hosts=2", run_mutex_trial, 6, 2,
     dict(topology=None, seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   ring     n=8  hosts=2", run_mutex_trial, 8, 2,
     dict(topology="ring", seed=1, loss=0.0, requests_per_process=1)),
    ("E5 me   wan      n=8  hosts=4", run_mutex_trial, 8, 4,
     dict(topology="wan:4", seed=3, loss=0.0, requests_per_process=1)),
]


def check_metrics() -> bool:
    ok = True
    for name, runner, n, hosts, kwargs in CASES:
        t0 = time.perf_counter()
        serial = runner(n, engine="serial", **kwargs)
        t1 = time.perf_counter()
        cluster = runner(n, engine="cluster", hosts=hosts, **kwargs)
        t2 = time.perf_counter()
        same = (
            serial.ok == cluster.ok
            and serial.violations == cluster.violations
            and serial.measurements == cluster.measurements
            and cluster.provenance.get("monitors_ok", False) == cluster.ok
            and cluster.provenance.get("hosts") == hosts
        )
        ok &= same
        verdict = "OK " if same else "DIVERGED"
        print(f"{verdict} {name}  serial={t1 - t0:.1f}s cluster={t2 - t1:.1f}s "
              f"barriers={cluster.provenance.get('barriers')} "
              f"metrics={serial.measurements}")
        if not same:
            print(f"     serial : ok={serial.ok} violations={serial.violations} "
                  f"{serial.measurements}")
            print(f"     cluster: ok={cluster.ok} violations={cluster.violations} "
                  f"{cluster.measurements} provenance={cluster.provenance}")
    return ok


def _probe_spec(topology: str | None, n: int, hosts: int) -> TrialSpec:
    """The PIF probe as one spec; only the engine axis varies per run."""
    return TrialSpec(
        n=n,
        build=lambda h: h.register(PifLayer("pif")),
        topology=topology,
        seed=0,
        loss=0.1,
        driver=dict(tag="pif", requests_per_process=1,
                    payload_fmt="m-{pid}-{k}"),
        horizon=2_000_000,
        protocol={"kind": "pif"},
        cluster=ClusterOpts(hosts=hosts),
    )


def check_bit_identity(topology: str | None, n: int, hosts: int) -> bool:
    """The probe case: the merged cluster trace must equal the serial
    trace event for event, and hash identically under the canonical
    trace hash."""
    spec = _probe_spec(topology, n, hosts)
    runs = {
        engine: execute(replace(
            spec, engine=engine,
            cluster=spec.cluster if engine == "cluster" else ClusterOpts(),
        ))
        for engine in ("serial", "cluster")
    }
    serial_events = [(e.time, e.kind, e.process, e.data)
                     for e in runs["serial"].trace]
    cluster_events = [(e.time, e.kind, e.process, e.data)
                      for e in runs["cluster"].trace]
    hashes = (
        canonical_trace_hash(runs["serial"].trace),
        canonical_trace_hash(runs["cluster"].trace),
    )
    same = (
        serial_events == cluster_events
        and hashes[0] == hashes[1]
        and runs["serial"].stats.as_dict() == runs["cluster"].stats.as_dict()
        and runs["serial"].final_time == runs["cluster"].final_time
        and runs["serial"].completions == runs["cluster"].completions
    )
    print(("OK " if same else "DIVERGED")
          + f" bit-identity {topology or 'complete'} n={n} hosts={hosts} "
          f"({len(serial_events)} trace events, hash {hashes[0][:16]}.. vs "
          f"{hashes[1][:16]}..)")
    return same


def check_obs_identity(
    topology: str | None, n: int, hosts: int, timeline_out: str
) -> bool:
    """Metrics-on bit-identity probe + timeline validation.

    Runs the PIF probe twice on the cluster engine — plain, then with
    metrics and timeline enabled — plus the serial reference, and
    requires all three canonical hashes to be equal: turning the
    instruments on must not perturb a deterministic run.  The exported
    timeline must validate as Chrome trace-event JSON and cover the
    coordinator plus one lane per worker, each with barrier-wait spans.
    """
    spec = _probe_spec(topology, n, hosts)
    with tempfile.TemporaryDirectory() as tmp:
        serial = execute(replace(spec, engine="serial",
                                 cluster=ClusterOpts()))
        plain = execute(replace(spec, engine="cluster"))
        observed = execute(
            replace(spec, engine="cluster")
            .with_obs(str(Path(tmp) / "metrics.json"), timeline_out)
        )
    hashes = [canonical_trace_hash(run.trace)
              for run in (serial, plain, observed)]
    same = len(set(hashes)) == 1

    doc = json.loads(Path(timeline_out).read_text())
    problems = validate_chrome_trace(doc)
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    lanes = {e["pid"] for e in spans}
    barrier_lanes = {e["pid"] for e in spans if e["name"] == "barrier_wait"}
    if problems:
        print(f"     timeline invalid: {problems[:5]}")
    # Lane 0 is the coordinator; every worker shard k gets lane k+1 and
    # must have recorded barrier waits (windowed mode always barriers).
    timeline_ok = (
        not problems
        and lanes == set(range(hosts + 1))
        and barrier_lanes == set(range(1, hosts + 1))
    )
    ok = same and timeline_ok
    print(("OK " if ok else "DIVERGED")
          + f" obs-identity {topology or 'complete'} n={n} hosts={hosts} "
          f"(hashes equal={same}, timeline {len(spans)} spans over lanes "
          f"{sorted(lanes)}, barrier lanes {sorted(barrier_lanes)}) "
          f"-> {timeline_out}")
    return ok


def freerun_smoke() -> bool:
    """One E3 trial in freerun mode; every online monitor must pass."""
    t0 = time.perf_counter()
    trial = run_pif_trial(8, engine="cluster", hosts=2, sync="freerun",
                          seed=0, loss=0.1, requests_per_process=1)
    wall = time.perf_counter() - t0
    ok = bool(trial.ok and trial.provenance.get("monitors_ok"))
    print(("OK " if ok else "FAILED")
          + f" freerun smoke E3 n=8 hosts=2: ok={trial.ok} wall={wall:.1f}s "
          f"monitors_ok={trial.provenance.get('monitors_ok')} "
          f"metrics={trial.measurements}")
    return ok


def main() -> int:
    args = sys.argv[1:]
    timeline_out = "BENCH_cluster_timeline.json"
    if "--timeline-out" in args:
        timeline_out = args[args.index("--timeline-out") + 1]
    ok = True
    if "--freerun-only" not in args:
        ok = check_metrics()
        ok &= check_bit_identity(None, 8, 2)
        ok &= check_bit_identity("wan:4", 16, 4)
        ok &= check_obs_identity(None, 8, 2, timeline_out)
    if "--freerun-smoke" in args or "--freerun-only" in args:
        ok &= freerun_smoke()
    print("cluster-equivalence:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
