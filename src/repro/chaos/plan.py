"""The FaultPlan DSL: deterministic runtime-fault schedules.

A *fault plan* is a tiny text program describing which runtime faults to
inject where, compiled once on the coordinator and sliced per worker.
Statements are separated by newlines or ``;``; ``#`` starts a comment:

.. code-block:: text

    crash worker 2 at barrier 5        # _exit(70) on receiving adv 5
    crash worker 1 at round 3          # _exit mid-round: after compute,
                                       #   before shipping round 3
    crash worker 0 at rendezvous       # die before REGISTER
    crash worker 0 at peering          # die before dialing peers
    cut link 1->3 at round 4 for 0.5s  # shard 1 withholds all frames to
                                       #   shard 3 from round 4, heals
                                       #   after 0.5 wall seconds
    cut link 1->3 for rounds 4..8      # sugar: duration scales with the
                                       #   round span
    drop ship from 5 to 9 round 2..6 count 2
    duplicate ship to 9                # re-send one matching SHIP frame
    corrupt ship from 5 count 1        # truncate the payload (receiver
                                       #   counts + drops it)
    stall worker 2 at round 3 for 1s   # delay the CONTROL ack
    stall registry 2s                  # every worker stalls its round-1 ack

Semantics that keep the equivalence gates meaningful:

* ``crash`` faults are *recoverable* under ``sync=windowed`` with
  coordinator-spawned workers: the replay protocol (:mod:`repro.net.cluster`)
  restores bit-identity with the serial engine.
* ``cut`` faults are pure delay — the sender buffers frames in order and
  flushes after the wall-clock hold, so the virtual-time trace is
  untouched by construction.
* ``drop``/``corrupt`` ship faults are healed by the barrier ship-count
  NAK/resend protocol; ``duplicate`` is absorbed by receiver dedup.
  Budgets (``count``, default 1) make every fault finite, so resends
  terminate.
* ``stall`` faults only delay CONTROL acks (wall time), never virtual time.

``crash worker`` / ``cut link`` / ``stall worker`` name **shards**;
``from``/``to`` in ship faults name **pids**; ``round`` predicates are the
sender's barrier round (round 0 ships the scramble-era backlog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "CrashWorker",
    "CutLink",
    "FaultPlan",
    "ShipFault",
    "StallWorker",
    "parse_fault_plan",
]

CRASH_PHASES = ("rendezvous", "peering", "barrier", "round")
SHIP_ACTIONS = ("drop", "duplicate", "corrupt")

#: ``cut link A->B for rounds X..Y`` sugar: wall-clock hold per round in
#: the span (cuts must heal on wall time — a round-count heal deadlocks,
#: because the receiver's stalled barrier stalls the very rounds that
#: would trigger the heal).
CUT_SECONDS_PER_ROUND = 0.25


@dataclass(frozen=True)
class CrashWorker:
    """``crash worker <shard> at <phase> [<round>]`` — the worker calls
    ``os._exit`` at the named lifecycle point."""

    shard: int
    phase: str
    round: int = 0

    def token(self) -> str:
        """argv encoding for the spawned worker (``--chaos``): crash faults
        must ride the command line because ``at rendezvous`` fires before
        the spec channel exists."""
        if self.phase in ("barrier", "round"):
            return f"{self.phase}:{self.round}"
        return self.phase


@dataclass(frozen=True)
class CutLink:
    """``cut link <src>-><dst> at round <r> for <s>s`` — shard ``src``
    withholds every frame to shard ``dst`` (ships *and* barriers, in
    order) starting at round ``start_round``, flushing after ``seconds``
    of wall time."""

    src_shard: int
    dst_shard: int
    start_round: int
    seconds: float


@dataclass(frozen=True)
class ShipFault:
    """``drop|duplicate|corrupt ship [from <pid>] [to <pid>]
    [round <r>[..<r2>]] [count <n>]`` — applied sender-side at the SHIP
    frame boundary (or, on the async tcp engine, the MESSAGE frame
    boundary) to frames matching every given predicate."""

    action: str
    src: int | None = None
    dst: int | None = None
    rounds: tuple[int, int] | None = None
    count: int = 1

    def matches(self, src: int, dst: int, round_no: int | None) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.rounds is not None:
            if round_no is None:
                return False
            lo, hi = self.rounds
            if not lo <= round_no <= hi:
                return False
        return True


@dataclass(frozen=True)
class StallWorker:
    """``stall worker <shard> at round <r> for <s>s`` (or
    ``stall registry <s>s`` = every shard, round 1) — the worker sleeps
    before acking that round's CONTROL advance."""

    shard: int | None
    round: int
    seconds: float


Fault = CrashWorker | CutLink | ShipFault | StallWorker


class FaultPlan:
    """A parsed, validated fault schedule.

    Immutable; :meth:`parse` is the entry point.  The coordinator keeps
    the full plan, delivers crash faults via worker argv
    (:meth:`crash_token`) and everything else via the picklable per-shard
    :meth:`worker_slice` in the trial spec.
    """

    def __init__(self, faults: Sequence[Fault], source: str = "") -> None:
        self.faults: tuple[Fault, ...] = tuple(faults)
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.faults)!r})"

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __eq__(self, other: object) -> bool:
        # Plans are equal by schedule, not by surface text: a TrialSpec
        # provenance round-trip rebuilds the plan from its DSL source, and
        # whitespace/comments must not break the equality.
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.faults == other.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        return cls(list(_parse_statements(text)), source=text)

    # -- queries -------------------------------------------------------

    def crashes(self) -> list[CrashWorker]:
        return [f for f in self.faults if isinstance(f, CrashWorker)]

    def crash_token(self, shard: int) -> str | None:
        for fault in self.crashes():
            if fault.shard == shard:
                return fault.token()
        return None

    def ship_faults(self) -> list[ShipFault]:
        return [f for f in self.faults if isinstance(f, ShipFault)]

    def requires_cluster(self) -> bool:
        """True if any fault needs the cluster runtime (worker processes,
        shard links, CONTROL channel, or round predicates)."""
        for fault in self.faults:
            if isinstance(fault, (CrashWorker, CutLink, StallWorker)):
                return True
            if isinstance(fault, ShipFault) and fault.rounds is not None:
                return True
        return False

    # -- per-worker slicing -------------------------------------------

    def worker_slice(self, shard: int, shard_of: dict[int, int]) -> dict | None:
        """The picklable non-crash fault slice shard ``shard`` enforces.

        Ship faults with a ``from`` pid belong to that pid's shard; with
        no ``from`` pid every sender applies them (``count`` is then a
        per-sender budget).  Crash faults never appear here — they travel
        via argv, and replacements are spawned without them.
        """
        cuts = [
            (f.dst_shard, f.start_round, f.seconds)
            for f in self.faults
            if isinstance(f, CutLink) and f.src_shard == shard
        ]
        ships = [
            (f.action, f.src, f.dst, f.rounds, f.count)
            for f in self.ship_faults()
            if f.src is None or shard_of.get(f.src) == shard
        ]
        stalls = [
            (f.round, f.seconds)
            for f in self.faults
            if isinstance(f, StallWorker) and f.shard in (None, shard)
        ]
        if not (cuts or ships or stalls):
            return None
        return {"cuts": cuts, "ships": ships, "stalls": stalls}

    # -- validation ----------------------------------------------------

    def validate_for_cluster(
        self, n_shards: int, pids: Sequence[int], *, sync: str, spawned: bool
    ) -> None:
        pid_set = set(pids)
        crashed: set[int] = set()
        for fault in self.faults:
            if isinstance(fault, CrashWorker):
                _check_shard(fault.shard, n_shards, "crash worker")
                if fault.shard in crashed:
                    raise ConfigurationError(
                        f"fault plan crashes worker {fault.shard} twice; one "
                        "crash per shard is supported"
                    )
                crashed.add(fault.shard)
                if sync != "windowed":
                    raise ConfigurationError(
                        "crash faults need sync='windowed' (replay recovery "
                        f"is undefined under sync={sync!r})"
                    )
                if not spawned:
                    raise ConfigurationError(
                        "crash faults need coordinator-spawned workers "
                        "(listen=None); hand-launched workers cannot be "
                        "respawned"
                    )
            elif isinstance(fault, CutLink):
                _check_shard(fault.src_shard, n_shards, "cut link source")
                _check_shard(fault.dst_shard, n_shards, "cut link target")
                if fault.src_shard == fault.dst_shard:
                    raise ConfigurationError(
                        f"cut link {fault.src_shard}->{fault.dst_shard}: "
                        "a shard has no link to itself"
                    )
            elif isinstance(fault, ShipFault):
                for pid in (fault.src, fault.dst):
                    if pid is not None and pid not in pid_set:
                        raise ConfigurationError(
                            f"{fault.action} ship names pid {pid}, not in "
                            "the system"
                        )
            elif isinstance(fault, StallWorker):
                if fault.shard is not None:
                    _check_shard(fault.shard, n_shards, "stall worker")

    def validate_for_async(self, transport: str) -> None:
        if self.requires_cluster():
            raise ConfigurationError(
                "this fault plan needs engine='cluster': crash/cut/stall "
                "faults and round predicates have no meaning on the async "
                "engine (only drop/duplicate/corrupt ship faults keyed by "
                "pid apply there)"
            )
        from repro.net.transport import resolve_transport, transport_names

        if not resolve_transport(transport).frame_boundary:
            framed = tuple(
                name for name in transport_names()
                if resolve_transport(name).frame_boundary
            )
            raise ConfigurationError(
                f"fault plans on the async engine need a framed transport "
                f"{framed} ({transport!r} has no frame boundary to inject at)"
            )


def _check_shard(shard: int, n_shards: int, what: str) -> None:
    if not 0 <= shard < n_shards:
        raise ConfigurationError(
            f"{what} names shard {shard}, but the partition has "
            f"{n_shards} shard(s)"
        )


def parse_fault_plan(text: str) -> FaultPlan:
    """Module-level convenience mirroring :meth:`FaultPlan.parse`."""
    return FaultPlan.parse(text)


# -- parser ------------------------------------------------------------


def _parse_statements(text: str) -> Iterator[Fault]:
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        for statement in line.split(";"):
            words = statement.split()
            if words:
                yield _parse_one(words, statement.strip())


def _parse_one(words: list[str], statement: str) -> Fault:
    head = words[0].lower()
    try:
        if head == "crash":
            return _parse_crash(words)
        if head == "cut":
            return _parse_cut(words)
        if head in SHIP_ACTIONS:
            return _parse_ship(words)
        if head == "stall":
            return _parse_stall(words)
    except (ConfigurationError, IndexError) as exc:
        detail = exc if isinstance(exc, ConfigurationError) else "truncated"
        raise ConfigurationError(
            f"bad fault statement {statement!r}: {detail}"
        ) from None
    raise ConfigurationError(
        f"bad fault statement {statement!r}: unknown fault "
        f"{head!r} (expected crash/cut/drop/duplicate/corrupt/stall)"
    )


def _parse_crash(words: list[str]) -> CrashWorker:
    # crash worker <shard> at <phase> [<round>]
    _expect(words, 1, "worker")
    shard = _int(words[2], "shard")
    _expect(words, 3, "at")
    phase = words[4].lower()
    if phase not in CRASH_PHASES:
        raise ConfigurationError(
            f"unknown crash phase {phase!r} (expected one of {CRASH_PHASES})"
        )
    round_no = 0
    if phase in ("barrier", "round"):
        round_no = _int(words[5], "round")
        _done(words, 6)
        if round_no < 1:
            raise ConfigurationError(
                "crash round must be >= 1 (coordinator rounds are 1-based)"
            )
    else:
        _done(words, 5)
    return CrashWorker(shard=shard, phase=phase, round=round_no)


def _parse_cut(words: list[str]) -> CutLink:
    # cut link A->B at round R for Ss | cut link A->B for rounds X..Y
    _expect(words, 1, "link")
    src, dst = _link(words[2])
    if words[3].lower() == "at":
        _expect(words, 4, "round")
        start = _int(words[5], "round")
        _expect(words, 6, "for")
        seconds = _seconds(words[7])
        _done(words, 8)
    elif words[3].lower() == "for":
        _expect(words, 4, "rounds")
        lo, hi = _round_range(words[5])
        start, seconds = lo, (hi - lo + 1) * CUT_SECONDS_PER_ROUND
        _done(words, 6)
    else:
        raise ConfigurationError(
            f"expected 'at round R for Ss' or 'for rounds X..Y', got "
            f"{' '.join(words[3:])!r}"
        )
    if start < 0:
        raise ConfigurationError("cut round must be >= 0")
    if seconds <= 0:
        raise ConfigurationError("cut duration must be > 0")
    return CutLink(src_shard=src, dst_shard=dst, start_round=start,
                   seconds=seconds)


def _parse_ship(words: list[str]) -> ShipFault:
    # <action> ship [from P] [to P] [round R[..R2]] [count N]
    action = words[0].lower()
    _expect(words, 1, "ship")
    src = dst = rounds = None
    count = 1
    i = 2
    while i < len(words):
        key = words[i].lower()
        if key == "from":
            src = _int(words[i + 1], "from pid")
        elif key == "to":
            dst = _int(words[i + 1], "to pid")
        elif key == "round":
            rounds = _round_range(words[i + 1])
        elif key == "count":
            count = _int(words[i + 1], "count")
        else:
            raise ConfigurationError(
                f"unknown ship predicate {key!r} (expected "
                "from/to/round/count)"
            )
        i += 2
    if count < 1:
        raise ConfigurationError("ship fault count must be >= 1")
    return ShipFault(action=action, src=src, dst=dst, rounds=rounds,
                     count=count)


def _parse_stall(words: list[str]) -> StallWorker:
    # stall worker <shard> at round <r> for <s>s | stall registry <s>s
    kind = words[1].lower()
    if kind == "registry":
        seconds = _seconds(words[2])
        _done(words, 3)
        shard: int | None = None
        round_no = 1
    elif kind == "worker":
        shard = _int(words[2], "shard")
        _expect(words, 3, "at")
        _expect(words, 4, "round")
        round_no = _int(words[5], "round")
        _expect(words, 6, "for")
        seconds = _seconds(words[7])
        _done(words, 8)
    else:
        raise ConfigurationError(
            f"expected 'stall worker ...' or 'stall registry ...', got "
            f"{kind!r}"
        )
    if seconds <= 0:
        raise ConfigurationError("stall duration must be > 0")
    if round_no < 1:
        raise ConfigurationError("stall round must be >= 1")
    return StallWorker(shard=shard, round=round_no, seconds=seconds)


def _expect(words: list[str], index: int, keyword: str) -> None:
    if words[index].lower() != keyword:
        raise ConfigurationError(
            f"expected {keyword!r}, got {words[index]!r}"
        )


def _done(words: list[str], length: int) -> None:
    if len(words) > length:
        raise ConfigurationError(
            f"trailing words {' '.join(words[length:])!r}"
        )


def _int(token: str, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ConfigurationError(f"{what} must be an integer, got {token!r}") \
            from None


def _seconds(token: str) -> float:
    token = token[:-1] if token.lower().endswith("s") else token
    try:
        return float(token)
    except ValueError:
        raise ConfigurationError(
            f"duration must look like '2s' or '0.5', got {token!r}"
        ) from None


def _link(token: str) -> tuple[int, int]:
    if "->" not in token:
        raise ConfigurationError(
            f"link must look like 'A->B', got {token!r}"
        )
    left, right = token.split("->", 1)
    return _int(left, "link source shard"), _int(right, "link target shard")


def _round_range(token: str) -> tuple[int, int]:
    if ".." in token:
        left, right = token.split("..", 1)
        lo, hi = _int(left, "round"), _int(right, "round")
    else:
        lo = hi = _int(token, "round")
    if lo < 0 or hi < lo:
        raise ConfigurationError(f"bad round range {token!r}")
    return lo, hi
