"""Exponential backoff with deterministic jitter for dial/rendezvous retries.

Every reconnection loop in the multi-host runtime (registry dials, peer
redials after a crash recovery) retries through one :class:`Backoff`
policy instead of a fixed-delay sleep: delays grow geometrically up to a
cap, and a jitter factor decorrelates retry storms when many workers dial
the same endpoint at once (the classic thundering-herd fix).

Jitter is drawn from the policy's *own* :class:`random.Random` stream —
never from a simulator entity stream — so chaos-era retries cannot
perturb the deterministic draw paths the equivalence gates compare.  With
an explicit ``seed`` the delay sequence itself is reproducible, which is
how the unit tests pin it down without sleeping.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, TypeVar

from repro.errors import SimulationError

__all__ = ["Backoff", "retry_async"]

T = TypeVar("T")


@dataclass(frozen=True)
class Backoff:
    """A retry-delay policy: ``initial * factor**n``, capped, jittered.

    ``jitter`` is the +/- fraction applied to each delay (0.5 means each
    sleep lands uniformly in [0.5x, 1.5x] of its nominal value); ``seed``
    fixes the jitter stream for reproducible schedules (None draws a
    fresh stream per :meth:`delays` call).
    """

    initial: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise SimulationError(f"backoff initial must be > 0, got {self.initial}")
        if self.factor < 1.0:
            raise SimulationError(f"backoff factor must be >= 1, got {self.factor}")
        if self.cap < self.initial:
            raise SimulationError(
                f"backoff cap ({self.cap}) must be >= initial ({self.initial})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(
                f"backoff jitter must be in [0, 1), got {self.jitter}"
            )

    def delays(self) -> Iterator[float]:
        """The (infinite) sleep sequence; callers bound it by a deadline."""
        rng = random.Random(self.seed)
        nominal = self.initial
        while True:
            spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield nominal * spread
            nominal = min(nominal * self.factor, self.cap)


async def retry_async(
    op: Callable[[], Awaitable[T]],
    *,
    backoff: Backoff,
    timeout: float,
    describe: str,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    clock: Callable[[], float] | None = None,
    sleep: Callable[[float], Awaitable[None]] | None = None,
    on_retry: Callable[[float], None] | None = None,
) -> T:
    """Run ``op`` until it succeeds or ``timeout`` seconds elapse.

    Only ``retryable`` exceptions trigger a retry; anything else (and the
    final timeout) propagates.  ``clock``/``sleep`` default to the running
    event loop's and exist so tests can drive the schedule with a fake
    clock; ``on_retry(delay)`` is called before each sleep (retry
    counters for repro.obs).
    """
    loop = asyncio.get_running_loop()
    clock = clock or loop.time
    sleep = sleep or asyncio.sleep
    deadline = clock() + timeout
    last: BaseException | None = None
    for delay in backoff.delays():
        try:
            return await op()
        except retryable as exc:
            last = exc
            if clock() + delay > deadline:
                raise SimulationError(
                    f"{describe} failed after {timeout:.0f}s of retries: {exc}"
                ) from exc
            if on_retry is not None:
                on_retry(delay)
            await sleep(delay)
    raise SimulationError(f"{describe}: backoff yielded no delays ({last})")
