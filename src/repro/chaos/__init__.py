"""repro.chaos: deterministic runtime fault injection + recovery helpers.

The simulator already models *protocol-level* faults (scramble, loss
draws, corruption inside :mod:`repro.sim`).  This package injects faults
into the *runtime itself* — worker processes, peer sockets, the CONTROL
channel — on a deterministic schedule (:class:`FaultPlan`), and provides
the backoff policy every dial-retry loop shares (:class:`Backoff`).

The recovery machinery that makes injected faults survivable (crash
detection, barrier-checkpoint replay) lives with the runtime it protects
in :mod:`repro.net.cluster`; see ``docs/robustness.md`` for the protocol
and its determinism argument.
"""

from repro.chaos.backoff import Backoff, retry_async
from repro.chaos.plan import (
    CrashWorker,
    CutLink,
    FaultPlan,
    ShipFault,
    StallWorker,
    parse_fault_plan,
)

__all__ = [
    "Backoff",
    "CrashWorker",
    "CutLink",
    "FaultPlan",
    "ShipFault",
    "StallWorker",
    "parse_fault_plan",
    "retry_async",
]
