"""Execution visualization: ASCII space-time diagrams and event logs."""

from repro.viz.spacetime import render_event_log, render_spacetime

__all__ = ["render_event_log", "render_spacetime"]
