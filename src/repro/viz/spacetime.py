"""ASCII space-time diagrams of executions.

Renders a trace as one lane per process with per-tick markers for the
semantic events — the classic way distributed-algorithm papers draw
executions (the paper's Figure 1 is exactly such a diagram).  Useful for
debugging protocol runs and for the examples' output.

Markers:

====== =========================================
``R``  request (application sets Request ← Wait)
``S``  start (Request Wait → In)
``D``  decide (Request In → Done)
``b``  receive-brd
``f``  receive-fck
``[``  critical-section entry
``]``  critical-section exit
``p``  phase change (Protocol ME)
``*``  several events in the same tick
====== =========================================
"""

from __future__ import annotations

from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = ["render_spacetime", "render_event_log"]

_MARKERS = {
    EventKind.REQUEST: "R",
    EventKind.START: "S",
    EventKind.DECIDE: "D",
    EventKind.RECEIVE_BRD: "b",
    EventKind.RECEIVE_FCK: "f",
    EventKind.CS_ENTER: "[",
    EventKind.CS_EXIT: "]",
    EventKind.PHASE: "p",
}


def _marked(events: list[TraceEvent]) -> str:
    markers = {_MARKERS[e.kind] for e in events if e.kind in _MARKERS}
    if not markers:
        return "-"
    if len(markers) == 1:
        return markers.pop()
    return "*"


def render_spacetime(
    trace: Trace,
    pids: list[int] | tuple[int, ...],
    *,
    tag: str | None = None,
    t0: int | None = None,
    t1: int | None = None,
    compress: bool = True,
) -> str:
    """Render one lane per process over time.

    ``tag`` filters to one protocol instance; ``t0``/``t1`` bound the window
    (defaults: full trace).  With ``compress`` (default) ticks where nothing
    happened anywhere are elided and marked with ``..``.
    """
    events = [
        e
        for e in trace
        if e.process in set(pids)
        and e.kind in _MARKERS
        and (tag is None or e.get("tag") == tag)
    ]
    if not events:
        return "(no events)"
    lo = t0 if t0 is not None else min(e.time for e in events)
    hi = t1 if t1 is not None else max(e.time for e in events)
    by_tick: dict[int, dict[int, list[TraceEvent]]] = {}
    for e in events:
        if lo <= e.time <= hi:
            by_tick.setdefault(e.time, {}).setdefault(e.process, []).append(e)

    ticks = sorted(by_tick) if compress else list(range(lo, hi + 1))
    width = max(len(str(hi)), 4)
    header = "t".rjust(width) + " | " + " ".join(f"p{pid}" for pid in pids)
    lines = [header, "-" * len(header)]
    previous_tick: int | None = None
    for tick in ticks:
        if compress and previous_tick is not None and tick > previous_tick + 1:
            lines.append("..".rjust(width))
        row = by_tick.get(tick, {})
        cells = " ".join(
            _marked(row.get(pid, [])).center(len(f"p{pid}")) for pid in pids
        )
        lines.append(str(tick).rjust(width) + " | " + cells)
        previous_tick = tick
    legend = "legend: R request, S start, D decide, b brd, f fck, [ ] CS, p phase"
    lines.append(legend)
    return "\n".join(lines)


def render_event_log(
    trace: Trace,
    *,
    tag: str | None = None,
    kinds: tuple[str, ...] | None = None,
    limit: int = 50,
) -> str:
    """A readable flat listing of semantic events (most recent last)."""
    rows = []
    for e in trace:
        if tag is not None and e.get("tag") != tag:
            continue
        if kinds is not None and e.kind not in kinds:
            continue
        extra = ", ".join(
            f"{k}={v!r}" for k, v in e.data.items() if k not in ("tag",)
        )
        where = f"p{e.process}" if e.process is not None else "--"
        rows.append(f"t={e.time:>6} {where:>4} {e.kind:<12} {extra}")
    if len(rows) > limit:
        omitted = len(rows) - limit
        rows = [f"... ({omitted} earlier events omitted)"] + rows[-limit:]
    return "\n".join(rows) if rows else "(no events)"
