"""The engine plugin surface: :class:`EngineBackend` and its contracts.

A backend turns a :class:`~repro.engine.spec.TrialSpec` into an
:class:`EngineRun` in three steps the pipeline drives uniformly:

* :meth:`~EngineBackend.prepare` — resolve the topology, normalize the
  driver config, construct the engine object (a :class:`PreparedTrial`);
* :meth:`~EngineBackend.run` — execute the trial shape every engine
  shares (scramble → serve the request driver → drain
  :data:`DRAIN_TICKS`) and return the engine-agnostic outcome;
* :meth:`~EngineBackend.collect_obs` — harvest passive counters into the
  trial's :class:`~repro.obs.recorder.ObsRecorder` (optional).

Fitness is declarative: :meth:`~EngineBackend.capabilities` names the
spec axes the backend understands, and :func:`check_capabilities` turns
any populated-but-undeclared axis into one uniform
:class:`~repro.errors.SpecError` naming the backend and the offending
field — there is no per-engine ``if``/``elif`` anywhere above this line.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.core.requests import CompletedRequest
from repro.errors import SpecError
from repro.net.monitors import MonitorReport
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import Trace
from repro.engine.spec import TrialSpec
from repro.types import RequestState

__all__ = [
    "DRAIN_TICKS",
    "SCRAMBLE_XOR",
    "EngineBackend",
    "PreparedTrial",
    "EngineRun",
    "check_capabilities",
    "loss_model",
    "normalized_driver",
    "resolve_topology",
    "scramble_seed_of",
    "validate_run_provenance",
]

#: Ticks every trial runs past the driver's completion, so residual
#: (never-started) computations drain and — crucially — all engines stop
#: on the same full tick (barrier-synced engines detect completion at a
#: window boundary, which can overshoot the completion tick by up to one
#: window).
DRAIN_TICKS = 200

#: The scramble stream is decorrelated from the protocol streams by
#: deriving its seed as ``seed ^ SCRAMBLE_XOR`` — shared by every engine
#: so scrambled initial configurations are bit-identical across backends.
SCRAMBLE_XOR = 0x5EED


def resolve_topology(
    n: int, topology: Topology | str | None, seed: int
) -> Topology | None:
    """Normalize a spec's topology (None = the complete graph on ``n``)."""
    if isinstance(topology, str):
        return topology_from_spec(topology, n, seed=seed)
    return topology


def scramble_seed_of(spec: TrialSpec) -> int | None:
    """The adversary stream seed (None when the spec skips scrambling)."""
    return (spec.seed ^ SCRAMBLE_XOR) if spec.scramble else None


def loss_model(loss: float):
    return BernoulliLoss(loss) if loss > 0 else NoLoss()


def normalized_driver(spec: TrialSpec, *, picklable: bool = False) -> dict[str, Any]:
    """The spec's driver config in the form the backend needs.

    The picklable ``payload_fmt`` spelling works on every engine; for
    in-process backends it expands to the equivalent callable here so
    :class:`~repro.core.requests.RequestDriver` stays format-agnostic.
    Cross-interpreter backends (``picklable=True``) keep the format
    string — closures cannot cross interpreters.
    """
    driver = dict(spec.driver)
    if not picklable and "payload_fmt" in driver:
        from repro.net.cluster import payload_from_fmt

        driver["payload"] = payload_from_fmt(driver.pop("payload_fmt"))
    return driver


@dataclass
class PreparedTrial:
    """A spec resolved against one backend, ready to run."""

    spec: TrialSpec
    #: The resolved topology object (None = complete graph via ``spec.n``).
    topology: Topology | None
    #: Backend-shaped driver config (see :func:`normalized_driver`).
    driver: dict[str, Any]
    #: The driver's layer tag (finals/monitors/measurements key).
    tag: str
    #: Adversary stream seed, or None when the spec skips scrambling.
    scramble_seed: int | None
    #: The trial's recorder, or None when observability is off.
    obs: Any = None
    #: The constructed engine object (backend-specific).
    sim: Any = None


@dataclass
class EngineRun:
    """Engine-agnostic outcome of one driven run (any engine)."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    final_time: int
    topology: Topology
    pids: tuple[int, ...]
    #: Run provenance: which backend executed the trial and what it cost.
    engine: str = "serial"
    transport: str | None = None
    wall_clock_s: float = 0.0
    #: Online monitor verdicts (async engine; empty elsewhere).
    monitor_reports: list[MonitorReport] = field(default_factory=list)
    #: Sharded/cluster provenance: the active synchronization window, the
    #: barriers paid and the driver-side sync overhead (None elsewhere).
    window: int | None = None
    barriers: int | None = None
    sync_wall_s: float | None = None
    #: Cluster provenance: worker-interpreter count, sync mode, per-shard
    #: simulation wall clock and rendezvous round trips (None elsewhere).
    hosts: int | None = None
    sync: str | None = None
    worker_wall_s: dict[int, float] | None = None
    registry_round_trips: int | None = None
    #: Chaos provenance (repro.chaos): injected-fault / recovery counters
    #: when a fault plan was active (None on fault-free runs).
    fault_counts: dict[str, int] | None = None
    recoveries: int | None = None
    replayed_rounds: int | None = None

    def latencies(self) -> list[int]:
        return [c.latency for c in self.completions]

    @property
    def monitors_ok(self) -> bool:
        return all(r.ok for r in self.monitor_reports)

    def provenance(self) -> dict[str, Any]:
        """JSON-ready provenance block for bench artifacts."""
        record: dict[str, Any] = {
            "engine": self.engine,
            "transport": self.transport,
            "wall_clock_s": round(self.wall_clock_s, 4),
        }
        if self.window is not None:
            record["window"] = self.window
            record["barriers"] = self.barriers
            record["sync_wall_s"] = round(self.sync_wall_s or 0.0, 4)
        if self.hosts is not None:
            record["hosts"] = self.hosts
            record["sync"] = self.sync
            walls = self.worker_wall_s or {}
            record["worker_wall_s"] = {
                shard: round(seconds, 4) for shard, seconds in walls.items()
            }
            #: Load imbalance at a glance: slowest minus fastest shard.
            record["worker_wall_spread_s"] = (
                round(max(walls.values()) - min(walls.values()), 4)
                if walls else 0.0
            )
            record["registry_round_trips"] = self.registry_round_trips
        if self.fault_counts is not None:
            record["fault_counts"] = dict(sorted(self.fault_counts.items()))
            if self.recoveries is not None:
                record["recoveries"] = self.recoveries
                record["replayed_rounds"] = self.replayed_rounds
        if self.monitor_reports:
            record["monitors_ok"] = self.monitors_ok
            record["monitors"] = [
                {"name": r.name, "ok": r.ok, "violations": len(r.violations)}
                for r in self.monitor_reports
            ]
        return record


class EngineBackend(abc.ABC):
    """One execution engine behind the registry.

    Subclasses set :attr:`name`, declare :meth:`capabilities`, and
    implement :meth:`prepare`/:meth:`run`.  :meth:`validate` hosts any
    backend-specific consistency checks the capability table cannot
    express (raise :class:`~repro.errors.SpecError`); :meth:`collect_obs`
    harvests passive counters after the run.
    """

    #: Registry key and the ``engine=`` axis value.
    name: str = ""
    #: One-line description for ``--engine`` help and the docs.
    summary: str = ""

    @abc.abstractmethod
    def capabilities(self) -> frozenset[str]:
        """The spec axes this backend understands (see :data:`AXES`)."""

    def validate(self, spec: TrialSpec) -> None:
        """Backend-specific checks beyond the capability table."""

    @abc.abstractmethod
    def prepare(self, spec: TrialSpec, obs: Any = None) -> PreparedTrial:
        """Resolve the spec and construct the engine object."""

    @abc.abstractmethod
    def run(self, prepared: PreparedTrial) -> EngineRun:
        """Execute the shared trial shape and return the outcome."""

    def collect_obs(self, prepared: PreparedTrial, run: EngineRun) -> None:
        """Harvest engine counters into ``prepared.obs`` (no-op default —
        backends whose ``run_trial`` already takes the recorder inline
        need nothing here)."""


#: The capability axis table: ``(capability, field name, reader)``.
#: ``check_capabilities`` flags any axis whose value is populated while
#: the backend does not declare the capability.
AXES: tuple[tuple[str, str, Any], ...] = (
    ("round_budget", "round_budget", lambda s: s.round_budget),
    ("shards", "shards", lambda s: s.sharding.shards),
    ("window", "window", lambda s: s.sharding.window),
    ("tick", "tick", lambda s: s.transport.tick),
    ("hosts", "hosts", lambda s: s.cluster.hosts),
    ("sync", "sync", lambda s: s.cluster.sync),
    ("cluster_listen", "cluster_listen", lambda s: s.cluster.listen),
    ("fault_plan", "fault_plan", lambda s: s.chaos.plan),
)


def _alternatives(capability: str) -> str:
    """Human list of engines that do declare ``capability``."""
    from repro.engine.registry import backends

    names = sorted(
        name for name, backend in backends().items()
        if capability in backend.capabilities()
    )
    if not names:
        return "<no registered engine>"
    return " or ".join(repr(name) for name in names)


def check_capabilities(spec: TrialSpec, backend: EngineBackend) -> None:
    """One uniform error for every unsupported-axis combination.

    Raises :class:`~repro.errors.SpecError` naming the backend and the
    offending field when the spec populates an axis the backend does not
    declare — ``--fault-plan`` on serial, ``--sync`` on async,
    ``--hosts`` on sharded, a non-loopback transport off the async
    engine, all through this single gate.
    """
    caps = backend.capabilities()
    for capability, field_name, read in AXES:
        value = read(spec)
        if value is None or capability in caps:
            continue
        raise SpecError(
            f"{field_name}={value!r} is not supported by the "
            f"{backend.name!r} backend: {field_name} requires "
            f"engine={_alternatives(capability)}",
            backend=backend.name, field=field_name,
        )
    transport = spec.transport.transport
    if transport != "loopback" and f"transport:{transport}" not in caps:
        from repro.net.transport import resolve_transport

        resolve_transport(transport)  # unknown name → its own SpecError
        raise SpecError(
            f"transport={transport!r} is not supported by the "
            f"{backend.name!r} backend: transport requires "
            f"engine={_alternatives(f'transport:{transport}')}",
            backend=backend.name, field="transport",
        )


# -- provenance schema ---------------------------------------------------

#: The shared shape of :meth:`EngineRun.provenance` records: required
#: keys with their types, then conditional sections keyed by the field
#: that switches them on.
_PROVENANCE_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "engine": str,
    "transport": (str, type(None)),
    "wall_clock_s": (int, float),
}
_PROVENANCE_SECTIONS: dict[str, dict[str, type | tuple[type, ...]]] = {
    "window": {"window": int, "barriers": int, "sync_wall_s": (int, float)},
    "hosts": {"hosts": int, "sync": str, "worker_wall_s": dict,
              "worker_wall_spread_s": (int, float),
              "registry_round_trips": int},
    "fault_counts": {"fault_counts": dict},
    "monitors_ok": {"monitors_ok": bool, "monitors": list},
}


def validate_run_provenance(record: dict[str, Any]) -> None:
    """Check one :meth:`EngineRun.provenance` record against the shared
    schema every backend's provenance must fit.  Raises
    :class:`~repro.errors.SpecError` naming the offending key."""
    for key, types in _PROVENANCE_REQUIRED.items():
        if key not in record:
            raise SpecError(f"provenance record misses {key!r}", field=key)
        if not isinstance(record[key], types):
            raise SpecError(
                f"provenance {key!r} has type "
                f"{type(record[key]).__name__}, expected {types}", field=key)
    known = set(_PROVENANCE_REQUIRED)
    for switch, section in _PROVENANCE_SECTIONS.items():
        known |= set(section)
        if switch not in record:
            continue
        for key, types in section.items():
            if key not in record:
                raise SpecError(
                    f"provenance record carries {switch!r} but misses its "
                    f"section key {key!r}", field=key)
            if not isinstance(record[key], types):
                raise SpecError(
                    f"provenance {key!r} has type "
                    f"{type(record[key]).__name__}, expected {types}",
                    field=key)
    known |= {"recoveries", "replayed_rounds"}
    unknown = set(record) - known
    if unknown:
        raise SpecError(
            f"provenance record carries unknown keys {sorted(unknown)}",
            field=sorted(unknown)[0])
