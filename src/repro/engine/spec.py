"""The declarative trial description: :class:`TrialSpec` and its codecs.

A trial used to be ~20 keyword arguments threaded by hand through
``execute_trial``, every ``run_*_trial`` wrapper, the topology matrix and
the CLI.  :class:`TrialSpec` freezes that surface into one value: the
universal axes (topology/seed/loss/capacity/latency/scramble/driver/
horizon) plus one small options record per engine family —
:class:`ShardingOpts`, :class:`TransportOpts`, :class:`ClusterOpts`,
:class:`ChaosOpts`, :class:`ObsOpts`.  Backends declare which sections
they understand (:meth:`repro.engine.base.EngineBackend.capabilities`);
a populated section a backend does not understand is one uniform
:class:`~repro.errors.SpecError`.

Codecs:

* :meth:`TrialSpec.from_cli_args` — build the axis part of a spec from an
  argparse namespace (any subset of the CLI's engine/topology flags);
* :meth:`TrialSpec.as_provenance` / :meth:`TrialSpec.from_provenance` —
  a JSON-ready record and its lossless inverse for *codable* specs
  (callables — ``build``, a ``payload`` closure — cannot cross a JSON
  boundary and are dropped; see :meth:`TrialSpec.codable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.chaos.plan import FaultPlan
from repro.errors import SpecError
from repro.sim.topology import Topology, topology_from_spec

__all__ = [
    "SPEC_VERSION",
    "ShardingOpts",
    "TransportOpts",
    "ClusterOpts",
    "ChaosOpts",
    "ObsOpts",
    "TrialSpec",
    "parse_latency_map",
    "resolve_fault_plan",
]

#: Bump on any incompatible change to the :meth:`TrialSpec.as_provenance`
#: record layout.
SPEC_VERSION = 1


@dataclass(frozen=True)
class ShardingOpts:
    """``engine=sharded`` axes: worker count and sync window (ticks)."""

    shards: int | None = None
    window: int | None = None


@dataclass(frozen=True)
class TransportOpts:
    """``engine=async`` axes: channel medium and wall-clock tick length."""

    transport: str = "loopback"
    tick: float | None = None


@dataclass(frozen=True)
class ClusterOpts:
    """``engine=cluster`` axes: worker-interpreter count, sync mode, and
    the rendezvous listen address for hand-launched workers."""

    hosts: int | None = None
    sync: str | None = None
    listen: str | None = None


@dataclass(frozen=True)
class ChaosOpts:
    """Fault injection (:mod:`repro.chaos`): a parsed :class:`FaultPlan`.

    Accepts the DSL text directly (``ChaosOpts(plan="drop ship from 1")``)
    and parses it at construction, so a spec never carries raw plan text.
    """

    plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if isinstance(self.plan, str):
            object.__setattr__(self, "plan", FaultPlan.parse(self.plan))


@dataclass(frozen=True)
class ObsOpts:
    """Observability (:mod:`repro.obs`): output paths for the metrics
    snapshot and the Chrome-trace timeline (None = instrument off)."""

    metrics: str | None = None
    timeline: str | None = None

    @property
    def active(self) -> bool:
        return self.metrics is not None or self.timeline is not None


@dataclass(frozen=True)
class TrialSpec:
    """One driven trial, fully described.

    ``build`` registers the protocol layers on each process host (any
    in-process engine); ``protocol`` is the picklable equivalent for
    engines whose workers live in other interpreters.  Either may be
    None — each backend validates that the form it needs is present.
    ``horizon`` may be left None by axis-only specs (e.g. from the CLI);
    the ``run_*_trial`` wrappers fill in their per-experiment default and
    :func:`repro.engine.pipeline.execute` requires it to be set.
    """

    n: int = 0
    build: Callable | None = None
    protocol: dict[str, Any] | None = None
    topology: Topology | str | None = None
    seed: int = 0
    loss: float = 0.0
    capacity: int = 1
    latency: tuple[int, int] = (1, 3)
    scramble: bool = True
    driver: dict[str, Any] = field(default_factory=dict)
    horizon: int | None = None
    round_budget: int | None = None
    engine: str = "serial"
    sharding: ShardingOpts = ShardingOpts()
    transport: TransportOpts = TransportOpts()
    cluster: ClusterOpts = ClusterOpts()
    chaos: ChaosOpts = ChaosOpts()
    obs: ObsOpts = ObsOpts()

    def __post_init__(self) -> None:
        # Normalize sequence spellings so == and the codecs are stable.
        if not isinstance(self.latency, tuple):
            object.__setattr__(self, "latency", tuple(self.latency))
        if isinstance(self.chaos, (FaultPlan, str)):
            object.__setattr__(self, "chaos", ChaosOpts(plan=self.chaos))

    # -- structural validation (backend-independent) -------------------

    def validate(self) -> None:
        """Check internal consistency; engine fit is checked separately
        against the resolved backend's capability declaration."""
        if not isinstance(self.n, int) or self.n < 1:
            raise SpecError(f"n must be a positive int, got {self.n!r}",
                            field="n")
        if not 0.0 <= self.loss <= 1.0:
            raise SpecError(f"loss must be in [0, 1], got {self.loss!r}",
                            field="loss")
        if self.capacity < 1:
            raise SpecError(
                f"capacity must be >= 1, got {self.capacity!r}",
                field="capacity")
        if (
            len(self.latency) != 2
            or not all(isinstance(b, int) for b in self.latency)
            or not 1 <= self.latency[0] <= self.latency[1]
        ):
            raise SpecError(
                f"latency must be an int pair (lo, hi) with 1 <= lo <= hi, "
                f"got {self.latency!r}", field="latency")
        if self.horizon is not None and self.horizon < 1:
            raise SpecError(
                f"horizon must be >= 1 ticks, got {self.horizon!r}",
                field="horizon")
        if self.round_budget is not None and self.round_budget < 0:
            raise SpecError(
                f"round_budget must be >= 0, got {self.round_budget!r}",
                field="round_budget")
        if self.driver and "tag" not in self.driver:
            raise SpecError(
                "driver config names no 'tag' (which layer serves the "
                "requests)", field="driver")
        if self.transport.tick is not None and self.transport.tick <= 0:
            raise SpecError(
                f"tick must be > 0 seconds, got {self.transport.tick!r}",
                field="tick")

    # -- codecs ---------------------------------------------------------

    def codable(self) -> bool:
        """True when :meth:`as_provenance` loses nothing: no callables in
        the driver, no ``build`` closure, no pre-built topology object."""
        return (
            self.build is None
            and (self.topology is None or isinstance(self.topology, str))
            and not any(callable(v) for v in self.driver.values())
        )

    def as_provenance(self) -> dict[str, Any]:
        """JSON-ready record of this spec (bench artifacts, obs context).

        Lossless for codable specs (:meth:`from_provenance` inverts it);
        callables are dropped and a pre-built topology collapses to its
        name.
        """
        if isinstance(self.topology, str) or self.topology is None:
            topology: str | None = self.topology
        else:
            topology = self.topology.name
        plan = self.chaos.plan
        return {
            "spec_version": SPEC_VERSION,
            "n": self.n,
            "topology": topology,
            "seed": self.seed,
            "loss": self.loss,
            "capacity": self.capacity,
            "latency": list(self.latency),
            "scramble": self.scramble,
            "driver": {k: v for k, v in self.driver.items()
                       if not callable(v)},
            "protocol": self.protocol,
            "horizon": self.horizon,
            "round_budget": self.round_budget,
            "engine": self.engine,
            "sharding": {"shards": self.sharding.shards,
                         "window": self.sharding.window},
            "transport": {"transport": self.transport.transport,
                          "tick": self.transport.tick},
            "cluster": {"hosts": self.cluster.hosts,
                        "sync": self.cluster.sync,
                        "listen": self.cluster.listen},
            "chaos": {"fault_plan": plan.source if plan is not None else None},
            "obs": {"metrics": self.obs.metrics,
                    "timeline": self.obs.timeline},
        }

    @classmethod
    def from_provenance(cls, record: dict[str, Any]) -> "TrialSpec":
        """Rebuild a spec from an :meth:`as_provenance` record."""
        version = record.get("spec_version")
        if version != SPEC_VERSION:
            raise SpecError(
                f"provenance record speaks spec_version {version!r}, "
                f"expected {SPEC_VERSION}", field="spec_version")
        plan_text = (record.get("chaos") or {}).get("fault_plan")
        sharding = record.get("sharding") or {}
        transport = record.get("transport") or {}
        cluster = record.get("cluster") or {}
        obs = record.get("obs") or {}
        return cls(
            n=record["n"],
            topology=record.get("topology"),
            seed=record.get("seed", 0),
            loss=record.get("loss", 0.0),
            capacity=record.get("capacity", 1),
            latency=tuple(record.get("latency", (1, 3))),
            scramble=record.get("scramble", True),
            driver=dict(record.get("driver") or {}),
            protocol=record.get("protocol"),
            horizon=record.get("horizon"),
            round_budget=record.get("round_budget"),
            engine=record.get("engine", "serial"),
            sharding=ShardingOpts(shards=sharding.get("shards"),
                                  window=sharding.get("window")),
            transport=TransportOpts(
                transport=transport.get("transport", "loopback"),
                tick=transport.get("tick")),
            cluster=ClusterOpts(hosts=cluster.get("hosts"),
                                sync=cluster.get("sync"),
                                listen=cluster.get("listen")),
            chaos=ChaosOpts(plan=plan_text),
            obs=ObsOpts(metrics=obs.get("metrics"),
                        timeline=obs.get("timeline")),
        )

    @classmethod
    def from_cli_args(
        cls, args: Any, *, n: int | None = None, seed: int | None = None
    ) -> "TrialSpec":
        """Build the axis part of a spec from an argparse namespace.

        Reads whichever of the CLI's engine/topology flags the namespace
        carries (``--engine``, ``--shards``, ``--transport``, ``--hosts``,
        ``--fault-plan``, ``--metrics``, ``--wan``, ``--latency-map``, …)
        and leaves the experiment part — ``build``/``driver``/
        ``protocol``/``horizon`` defaults — to the trial wrappers.
        ``seed`` defaults to the first of ``--seeds`` (or ``--seed``);
        multi-seed commands :func:`dataclasses.replace` the seed per
        trial.
        """
        if n is None:
            n = getattr(args, "n", None)
            if n is None:
                raise SpecError(
                    "from_cli_args needs a system size: pass n= or parse "
                    "a command with --n", field="n")
        if seed is None:
            seeds = getattr(args, "seeds", None)
            seed = seeds[0] if seeds else getattr(args, "seed", 0)
        return cls(
            n=n,
            seed=seed,
            loss=getattr(args, "loss", 0.0),
            topology=_topology_from_args(args, n, seed),
            latency=tuple(getattr(args, "latency", (1, 3))),
            horizon=getattr(args, "horizon", None),
            round_budget=getattr(args, "round_budget", None),
            engine=getattr(args, "engine", "serial"),
            sharding=ShardingOpts(shards=getattr(args, "shards", None),
                                  window=getattr(args, "window", None)),
            transport=TransportOpts(
                transport=getattr(args, "transport", "loopback"),
                tick=getattr(args, "tick", None)),
            cluster=ClusterOpts(
                hosts=getattr(args, "hosts", None),
                sync=getattr(args, "sync", None),
                listen=getattr(args, "cluster_listen", None)),
            chaos=ChaosOpts(
                plan=resolve_fault_plan(getattr(args, "fault_plan", None))),
            obs=ObsOpts(metrics=getattr(args, "metrics", None),
                        timeline=getattr(args, "timeline", None)),
        )

    def with_obs(self, metrics: str | None, timeline: str | None) -> "TrialSpec":
        """Copy with different obs paths (per-seed / per-cell suffixing)."""
        return replace(self, obs=ObsOpts(metrics=metrics, timeline=timeline))


# -- CLI helpers (shared by from_cli_args and repro.cli) ----------------


def parse_latency_map(
    entries: Any,
) -> dict[tuple[int, int], tuple[int, int]]:
    """Parse ``SRC-DST=LO:HI`` entries into an edge-latency map."""
    mapping: dict[tuple[int, int], tuple[int, int]] = {}
    for entry in entries:
        edge, edge_sep, bounds = entry.partition("=")
        u, pid_sep, v = edge.partition("-")
        lo, bound_sep, hi = bounds.partition(":")
        try:
            if not (edge_sep and pid_sep and bound_sep):
                raise ValueError
            mapping[(int(u), int(v))] = (int(lo), int(hi))
        except ValueError:
            raise SpecError(
                f"bad --latency-map entry {entry!r}; want SRC-DST=LO:HI "
                f"(e.g. 1-2=16:32)", field="latency_map"
            ) from None
    return mapping


def resolve_fault_plan(plan: Any) -> FaultPlan | None:
    """Coerce a fault-plan argument: FaultPlan, DSL text, or ``@FILE``."""
    if plan is None or isinstance(plan, FaultPlan):
        return plan
    text = plan
    if text.startswith("@"):
        from pathlib import Path

        try:
            text = Path(text[1:]).read_text()
        except OSError as exc:
            raise SpecError(
                f"cannot read fault plan file {plan[1:]!r}: {exc}",
                field="fault_plan") from None
    return FaultPlan.parse(text)


def _topology_from_args(args: Any, n: int, seed: int):
    """The trial topology from CLI flags: a spec string (with ``--wan``
    folded in), or a built :class:`~repro.sim.topology.Weighted` when
    ``--latency-map`` layers explicit per-edge bounds over the graph."""
    spec = getattr(args, "topology", None)
    if getattr(args, "wan", False):
        if spec is not None and not spec.startswith("wan"):
            raise SpecError(
                f"--wan conflicts with --topology {spec!r}; use --topology "
                f"wan:K to pick the cluster count", field="topology")
        spec = spec or "wan"
    entries = getattr(args, "latency_map", None)
    if entries is None:
        return spec
    from repro.sim.topology import Weighted

    base = topology_from_spec(spec or "complete", n, seed=seed)
    if base.is_weighted:
        raise SpecError(
            f"--latency-map cannot layer over the already-weighted spec "
            f"{spec!r}; weigh the edges in one map", field="latency_map")
    return Weighted(base, latency=parse_latency_map(entries))
