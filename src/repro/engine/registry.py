"""The engine registry: adding a backend is one ``register`` call.

Built-in backends live in :mod:`repro.engine.backends` and register at
import; anything else (a plugin, a test double) calls
:func:`register` with an :class:`~repro.engine.base.EngineBackend`
instance.  :func:`resolve` is the only lookup the pipeline performs —
there is no name dispatch anywhere else.
"""

from __future__ import annotations

from repro.errors import SpecError
from repro.engine.base import EngineBackend

__all__ = ["register", "resolve", "unregister", "backends", "engine_names"]

_BACKENDS: dict[str, EngineBackend] = {}
_BOOTSTRAPPED = False


def _bootstrap() -> None:
    """Import the built-in backends exactly once (import = registration)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    import repro.engine.backends  # noqa: F401 - side effect: register()


def register(backend: EngineBackend) -> EngineBackend:
    """Register a backend under its :attr:`~EngineBackend.name`.

    Names are a flat namespace shared with the built-ins; a collision is
    an error (two engines answering ``engine=x`` would make provenance
    ambiguous) — :func:`unregister` first to replace one deliberately.
    """
    if not backend.name:
        raise SpecError("backend declares no name", field="engine")
    if backend.name in _BACKENDS:
        raise SpecError(
            f"engine name {backend.name!r} is already registered "
            f"(by {type(_BACKENDS[backend.name]).__name__})",
            field="engine")
    _BACKENDS[backend.name] = backend
    return backend


def unregister(name: str) -> None:
    """Remove a registered backend (test doubles, plugin reload)."""
    _BACKENDS.pop(name, None)


def resolve(name: str) -> EngineBackend:
    """The backend answering ``engine=name``; :class:`SpecError` if none."""
    _bootstrap()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise SpecError(
            f"unknown engine {name!r}; expected one of {engine_names()}",
            field="engine") from None


def backends() -> dict[str, EngineBackend]:
    """Snapshot of the registry (name → backend)."""
    _bootstrap()
    return dict(_BACKENDS)


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted (CLI choices, error messages)."""
    _bootstrap()
    return tuple(sorted(_BACKENDS))
