"""The sharded backend: the topology partitioned across forked worker
processes under the conservative time-window protocol."""

from __future__ import annotations

from typing import Any

from repro.sim.sharded import ShardedSimulator
from repro.engine.base import (
    DRAIN_TICKS,
    EngineBackend,
    EngineRun,
    PreparedTrial,
    loss_model,
    normalized_driver,
    resolve_topology,
    scramble_seed_of,
)
from repro.engine.registry import register
from repro.engine.spec import TrialSpec
from repro.errors import SpecError


class ShardedBackend(EngineBackend):
    """Forked worker processes with time-window barriers — bit-identical
    to serial for the same seed (``shard-equivalence`` CI gate)."""

    name = "sharded"
    summary = "forked worker processes, conservative time windows"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"obs", "shards", "window"})

    def validate(self, spec: TrialSpec) -> None:
        if spec.build is None:
            raise SpecError(
                "the sharded backend needs a build callable (spec.build)",
                backend=self.name, field="build")

    def prepare(self, spec: TrialSpec, obs: Any = None) -> PreparedTrial:
        top = resolve_topology(spec.n, spec.topology, spec.seed)
        driver = normalized_driver(spec)
        sim = ShardedSimulator(
            spec.n if top is None else None,
            spec.build,
            topology=top,
            seed=spec.seed,
            shards=spec.sharding.shards,
            window=spec.sharding.window,
            loss=loss_model(spec.loss),
            capacity=spec.capacity,
            latency=spec.latency,
        )
        return PreparedTrial(
            spec=spec, topology=top, driver=driver, tag=driver["tag"],
            scramble_seed=scramble_seed_of(spec), obs=obs, sim=sim,
        )

    def run(self, prepared: PreparedTrial) -> EngineRun:
        sharded: ShardedSimulator = prepared.sim
        result = sharded.run_trial(
            horizon=prepared.spec.horizon,
            scramble_seed=prepared.scramble_seed,
            driver=prepared.driver,
            drain=DRAIN_TICKS,
            obs=prepared.obs,
        )
        return EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=sharded.topology,
            pids=sharded.pids,
            engine=self.name,
            window=result.window,
            barriers=result.barriers,
            sync_wall_s=result.sync_wall_s,
        )


register(ShardedBackend())
