"""The async backend: the asyncio runtime over pluggable transports.

Transports are their own registry (:mod:`repro.net.transport`) — this
backend's capability set is *computed* from it, so a new transport (udp
was the first) lights up ``engine=async --transport <name>`` everywhere
without touching this module.
"""

from __future__ import annotations

from typing import Any

from repro.net.engine import AsyncSimulator
from repro.net.monitors import default_monitors
from repro.net.transport import resolve_transport, transport_names
from repro.engine.base import (
    DRAIN_TICKS,
    EngineBackend,
    EngineRun,
    PreparedTrial,
    loss_model,
    normalized_driver,
    resolve_topology,
    scramble_seed_of,
)
from repro.engine.registry import register
from repro.engine.spec import TrialSpec
from repro.errors import SpecError


class AsyncBackend(EngineBackend):
    """One coroutine per process, one transport per channel; loopback is
    bit-identical to serial, paced transports are wall-clock best-effort
    with online monitors carrying the correctness claim."""

    name = "async"
    summary = "asyncio runtime; transport registry selects the medium"

    def capabilities(self) -> frozenset[str]:
        return frozenset(
            {"obs", "tick", "fault_plan"}
            | {f"transport:{name}" for name in transport_names()}
        )

    def validate(self, spec: TrialSpec) -> None:
        if spec.build is None:
            raise SpecError(
                "the async backend needs a build callable (spec.build)",
                backend=self.name, field="build")
        kind = resolve_transport(spec.transport.transport)
        if spec.transport.tick is not None and not kind.paced:
            raise SpecError(
                f"tick={spec.transport.tick!r} requires a wall-clock-paced "
                f"transport ({self._paced_names()}); transport="
                f"{kind.name!r} runs virtual time",
                backend=self.name, field="tick")
        if spec.chaos.plan is not None:
            spec.chaos.plan.validate_for_async(spec.transport.transport)

    @staticmethod
    def _paced_names() -> str:
        return " or ".join(
            repr(name) for name in transport_names()
            if resolve_transport(name).paced
        )

    def prepare(self, spec: TrialSpec, obs: Any = None) -> PreparedTrial:
        top = resolve_topology(spec.n, spec.topology, spec.seed)
        driver = normalized_driver(spec)
        tick = spec.transport.tick
        sim = AsyncSimulator(
            spec.n if top is None else None,
            spec.build,
            topology=top,
            seed=spec.seed,
            loss=loss_model(spec.loss),
            capacity=spec.capacity,
            latency=spec.latency,
            transport=spec.transport.transport,
            fault_plan=spec.chaos.plan,
            **({} if tick is None else {"tick": tick}),
        )
        tag = driver["tag"]
        for monitor in default_monitors(tag, sim.topology):
            sim.attach_monitor(monitor)
        return PreparedTrial(
            spec=spec, topology=top, driver=driver, tag=tag,
            scramble_seed=scramble_seed_of(spec), obs=obs, sim=sim,
        )

    def run(self, prepared: PreparedTrial) -> EngineRun:
        spec = prepared.spec
        sim: AsyncSimulator = prepared.sim
        obs = prepared.obs
        if obs is not None:
            with obs.phase("trial", transport=spec.transport.transport):
                result = sim.run_trial(
                    horizon=spec.horizon,
                    scramble_seed=prepared.scramble_seed,
                    driver=prepared.driver,
                    drain=DRAIN_TICKS,
                )
        else:
            result = sim.run_trial(
                horizon=spec.horizon,
                scramble_seed=prepared.scramble_seed,
                driver=prepared.driver,
                drain=DRAIN_TICKS,
            )
        return EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=sim.topology,
            pids=sim.pids,
            engine=self.name,
            transport=spec.transport.transport,
            monitor_reports=result.monitor_reports,
            fault_counts=(
                dict(sim.fault_counts)
                if spec.chaos.plan is not None else None
            ),
        )

    def collect_obs(self, prepared: PreparedTrial, run: EngineRun) -> None:
        if prepared.obs is not None:
            prepared.obs.collect_sim(prepared.sim)


register(AsyncBackend())
