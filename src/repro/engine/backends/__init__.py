"""Built-in engine backends.  Importing this package registers all of
them (:mod:`repro.engine.registry` bootstraps by importing it)."""

from repro.engine.backends import async_, cluster, serial, sharded

__all__ = ["serial", "sharded", "async_", "cluster"]
