"""The serial backend: one in-process discrete-event scheduler."""

from __future__ import annotations

from typing import Any

from repro.core.requests import RequestDriver
from repro.errors import HorizonExceeded, SpecError
from repro.sim.runtime import Simulator
from repro.sim.trace import EventKind, Trace
from repro.engine.base import (
    DRAIN_TICKS,
    EngineBackend,
    EngineRun,
    PreparedTrial,
    loss_model,
    normalized_driver,
    resolve_topology,
    scramble_seed_of,
)
from repro.engine.registry import register
from repro.engine.spec import TrialSpec


class _RoundBudgetGuard:
    """Incremental CS-grant counter over a growing trace.

    ``exceeded`` is evaluated inside the serial engine's stop predicate —
    after every event — so it watches the trace's *live* CS_ENTER kind
    index: the steady-state cost is one ``len()`` per event, and payload
    dicts are inspected only for the (rare) critical-section entries
    appended since the last call.
    """

    def __init__(self, trace: Trace, tag: str, budget: int) -> None:
        self._rows = trace.kind_rows(EventKind.CS_ENTER)
        self._data_at = trace.data_at
        self._tag = tag
        self.budget = budget
        self.rounds = 0
        self._cursor = 0

    def exceeded(self) -> bool:
        rows = self._rows
        while self._cursor < len(rows):
            if self._data_at(rows[self._cursor]).get("tag") == self._tag:
                self.rounds += 1
            self._cursor += 1
        return self.rounds > self.budget


class SerialBackend(EngineBackend):
    """One in-process scheduler — the reference engine every other
    backend's equivalence gate compares against."""

    name = "serial"
    summary = "one in-process scheduler (the bit-identity reference)"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"obs", "round_budget"})

    def validate(self, spec: TrialSpec) -> None:
        if spec.build is None:
            raise SpecError(
                "the serial backend needs a build callable (spec.build)",
                backend=self.name, field="build")

    def prepare(self, spec: TrialSpec, obs: Any = None) -> PreparedTrial:
        top = resolve_topology(spec.n, spec.topology, spec.seed)
        driver = normalized_driver(spec)
        sim = Simulator(
            spec.n if top is None else None,
            spec.build,
            topology=top,
            seed=spec.seed,
            loss=loss_model(spec.loss),
            capacity=spec.capacity,
            latency=spec.latency,
        )
        return PreparedTrial(
            spec=spec, topology=top, driver=driver, tag=driver["tag"],
            scramble_seed=scramble_seed_of(spec), obs=obs, sim=sim,
        )

    def run(self, prepared: PreparedTrial) -> EngineRun:
        spec = prepared.spec
        sim: Simulator = prepared.sim
        obs = prepared.obs
        horizon: int = spec.horizon  # type: ignore[assignment]
        if prepared.scramble_seed is not None:
            if obs is not None:
                with obs.phase("scramble"):
                    sim.scramble(seed=prepared.scramble_seed)
            else:
                sim.scramble(seed=prepared.scramble_seed)
        drv = RequestDriver(sim, **prepared.driver)
        serve_ctx = obs.phase("serve") if obs is not None else None
        if serve_ctx is not None:
            serve_ctx.__enter__()
        if spec.round_budget is None:
            completed = sim.run(horizon, until=lambda s: drv.done)
        else:
            guard = _RoundBudgetGuard(sim.trace, prepared.tag,
                                      spec.round_budget)
            sim.run(horizon, until=lambda s: drv.done or guard.exceeded())
            completed = drv.done
            if not completed and guard.rounds > spec.round_budget:
                raise HorizonExceeded(
                    f"round budget of {spec.round_budget} CS grants "
                    f"exhausted at t={sim.now} before all requests were "
                    f"served",
                    horizon=horizon,
                    served=drv.total_completed(),
                    requested=drv.total_planned(),
                    rounds=guard.rounds,
                )
        if serve_ctx is not None:
            serve_ctx.__exit__(None, None, None)
        if obs is not None:
            with obs.phase("drain"):
                sim.run(sim.now + DRAIN_TICKS)
        else:
            sim.run(sim.now + DRAIN_TICKS)
        return EngineRun(
            trace=sim.trace,
            stats=sim.stats,
            finals={p: sim.layer(p, prepared.tag).request for p in sim.pids},
            completions=drv.completed(),
            completed=completed,
            final_time=sim.now,
            topology=sim.topology,
            pids=sim.pids,
            engine=self.name,
        )

    def collect_obs(self, prepared: PreparedTrial, run: EngineRun) -> None:
        if prepared.obs is not None:
            prepared.obs.collect_sim(prepared.sim)


register(SerialBackend())
