"""The cluster backend: per-shard worker interpreters over real sockets."""

from __future__ import annotations

from typing import Any

from repro.net.cluster import ClusterSimulator
from repro.net.monitors import default_monitors
from repro.engine.base import (
    DRAIN_TICKS,
    EngineBackend,
    EngineRun,
    PreparedTrial,
    loss_model,
    normalized_driver,
    resolve_topology,
    scramble_seed_of,
)
from repro.engine.registry import register
from repro.engine.spec import TrialSpec
from repro.errors import SpecError


class ClusterBackend(EngineBackend):
    """Worker interpreters (own OS processes) behind the wire format;
    ``sync=windowed`` reproduces serial results exactly, ``sync=freerun``
    is best-effort under the replayed monitor verdicts."""

    name = "cluster"
    summary = "per-shard worker interpreters over real sockets"

    def capabilities(self) -> frozenset[str]:
        return frozenset(
            {"obs", "hosts", "sync", "cluster_listen", "window",
             "fault_plan"}
        )

    def validate(self, spec: TrialSpec) -> None:
        if spec.protocol is None:
            raise SpecError(
                "the cluster backend needs a picklable protocol spec "
                "(spec.protocol) — build closures cannot cross worker "
                "interpreters", backend=self.name, field="protocol")

    def prepare(self, spec: TrialSpec, obs: Any = None) -> PreparedTrial:
        top = resolve_topology(spec.n, spec.topology, spec.seed)
        driver = normalized_driver(spec, picklable=True)
        sim = ClusterSimulator(
            spec.n if top is None else None,
            spec.protocol,
            topology=top,
            seed=spec.seed,
            hosts=spec.cluster.hosts,
            window=spec.sharding.window,
            sync=spec.cluster.sync or "windowed",
            loss=loss_model(spec.loss),
            capacity=spec.capacity,
            latency=spec.latency,
            listen=spec.cluster.listen,
            fault_plan=spec.chaos.plan,
        )
        return PreparedTrial(
            spec=spec, topology=top, driver=driver, tag=driver["tag"],
            scramble_seed=scramble_seed_of(spec), obs=obs, sim=sim,
        )

    def run(self, prepared: PreparedTrial) -> EngineRun:
        spec = prepared.spec
        cluster: ClusterSimulator = prepared.sim
        result = cluster.run_trial(
            horizon=spec.horizon,
            scramble_seed=prepared.scramble_seed,
            driver=prepared.driver,
            drain=DRAIN_TICKS,
            obs=prepared.obs,
        )
        # The workers ran monitor-free (their slices see only local
        # emissions); replay the online automata over the merged trace.
        # Windowed runs merge to the exact serial trace, so the verdicts
        # agree with the offline checkers; freerun runs make these the
        # correctness claim.
        monitors = default_monitors(prepared.tag, cluster.topology)
        for event_time, kind, process, data in result.trace.scan():
            for monitor in monitors:
                monitor.observe(event_time, kind, process, data)
        chaos = spec.chaos.plan is not None
        return EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=cluster.topology,
            pids=cluster.pids,
            engine=self.name,
            monitor_reports=[m.report() for m in monitors],
            window=result.window,
            barriers=result.barriers,
            sync_wall_s=result.sync_wall_s,
            hosts=cluster.n_shards,
            sync=result.sync,
            worker_wall_s=result.worker_wall_s,
            registry_round_trips=result.registry_round_trips,
            fault_counts=dict(result.fault_counts) if chaos else None,
            recoveries=result.recoveries if chaos else None,
            replayed_rounds=result.replayed_rounds if chaos else None,
        )


register(ClusterBackend())
