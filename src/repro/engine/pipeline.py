"""The one trial pipeline every engine runs behind.

:func:`execute` replaces the four hand-threaded dispatch branches the
runner used to carry: validate the spec → resolve the backend from the
registry → check the spec against the backend's capability declaration
(one uniform :class:`~repro.errors.SpecError` for any unsupported axis)
→ prepare → run → harvest observability → return the
:class:`~repro.engine.base.EngineRun`.  Nothing in this module knows any
backend by name.
"""

from __future__ import annotations

import time

from repro.errors import SpecError
from repro.engine.base import EngineRun, check_capabilities
from repro.engine.registry import resolve
from repro.engine.spec import TrialSpec

__all__ = ["execute"]


def execute(spec: TrialSpec) -> EngineRun:
    """Run one driven trial as described by ``spec``.

    The shape is identical on every backend: build the system, scramble
    it into an arbitrary initial configuration, let the request driver
    issue and await every request (up to ``spec.horizon``), then drain
    :data:`~repro.engine.base.DRAIN_TICKS` more ticks.  Deterministic
    backends (serial, sharded, async-loopback, cluster-windowed) return
    bit-identical traces, stats, finals and completions for the same
    spec; run provenance (engine, transport, wall clock, barriers,
    monitor verdicts) rides on the :class:`EngineRun` without entering
    the compared state.

    ``spec.obs`` switches on the :mod:`repro.obs` instruments; they read
    wall clocks and passive counters only, so enabling them never
    changes the trace, stats or canonical hash of a deterministic run
    (see docs/observability.md).
    """
    spec.validate()
    if spec.horizon is None:
        raise SpecError(
            "spec names no horizon; set one (or run through a trial "
            "wrapper, which fills in its experiment default)",
            field="horizon")
    if not spec.driver:
        raise SpecError(
            "spec names no driver config (which layer serves requests, "
            "and how many)", field="driver")
    backend = resolve(spec.engine)
    check_capabilities(spec, backend)
    backend.validate(spec)

    obs = None
    if spec.obs.active:
        from repro.obs.recorder import ObsRecorder

        obs = ObsRecorder(
            metrics=spec.obs.metrics is not None,
            timeline=spec.obs.timeline is not None,
        )
        obs.mark_wire_baseline()

    start_clock = time.perf_counter()
    prepared = backend.prepare(spec, obs)
    run = backend.run(prepared)
    run.wall_clock_s = time.perf_counter() - start_clock

    if obs is not None:
        backend.collect_obs(prepared, run)
        obs.collect_monitors(run.monitor_reports)
        obs.collect_wire()
        obs.write(
            spec.obs.metrics,
            spec.obs.timeline,
            context={
                "engine": spec.engine,
                "n": len(run.pids),
                "seed": spec.seed,
                "loss": spec.loss,
                "topology": run.topology.name,
                "tag": prepared.tag,
                "transport": run.transport,
                "wall_clock_s": round(run.wall_clock_s, 4),
            },
        )
    return run
