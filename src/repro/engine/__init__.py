"""repro.engine — the declarative trial pipeline.

One :class:`TrialSpec` describes a trial (axes + per-engine option
sections); one :class:`EngineBackend` registry answers ``engine=name``;
one :func:`execute` pipeline runs every backend identically:

    spec → registry → backend.prepare → backend.run → EngineRun
         → specs/monitors → provenance

Adding an engine is a registry entry plus a capability declaration —
see docs/architecture.md for the walkthrough (the UDP transport is the
worked example on the sibling transport registry).
"""

from repro.engine.base import (
    DRAIN_TICKS,
    AXES,
    EngineBackend,
    EngineRun,
    PreparedTrial,
    check_capabilities,
    validate_run_provenance,
)
from repro.engine.pipeline import execute
from repro.engine.registry import (
    backends,
    engine_names,
    register,
    resolve,
    unregister,
)
from repro.engine.spec import (
    SPEC_VERSION,
    ChaosOpts,
    ClusterOpts,
    ObsOpts,
    ShardingOpts,
    TransportOpts,
    TrialSpec,
)

__all__ = [
    "TrialSpec",
    "ShardingOpts",
    "TransportOpts",
    "ClusterOpts",
    "ChaosOpts",
    "ObsOpts",
    "SPEC_VERSION",
    "EngineBackend",
    "EngineRun",
    "PreparedTrial",
    "AXES",
    "DRAIN_TICKS",
    "check_capabilities",
    "validate_run_provenance",
    "execute",
    "register",
    "resolve",
    "unregister",
    "backends",
    "engine_names",
]
