"""Safety-distributed specifications (Definition 5).

A specification is *safety-distributed* when there is a *bad-factor* — a
sequence of abstract configurations ``BAD`` — such that (1) any execution
containing a factor whose state-projection equals ``BAD`` violates the
specification, while (2) for every process ``p`` there is a *correct*
execution whose projection on ``p`` matches ``p``'s projection of ``BAD``.
Intuitively: the bad thing is a forbidden *combination* of individually
legal local behaviours.  Mutual exclusion is the canonical instance: each
process may execute the critical section, but not two of them concurrently.

Executable form: a :class:`BadFactor` is a sequence of predicates over
abstract configurations (predicate-based rather than literal equality so a
single factor captures the whole symmetry class of bad configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sim.configuration import AbstractConfiguration

__all__ = [
    "BadFactor",
    "SafetyDistributedSpec",
    "concurrent_cs_count",
    "mutual_exclusion_spec",
]

ConfigPredicate = Callable[[AbstractConfiguration], bool]


@dataclass(frozen=True)
class BadFactor:
    """A bad-factor: a window of abstract-configuration predicates."""

    name: str
    predicates: tuple[ConfigPredicate, ...]

    def __len__(self) -> int:
        return len(self.predicates)

    def find(self, configs: Sequence[AbstractConfiguration]) -> int | None:
        """Index of the first window of ``configs`` matching the factor."""
        k = len(self.predicates)
        if k == 0 or len(configs) < k:
            return None
        for i in range(len(configs) - k + 1):
            if all(pred(configs[i + j]) for j, pred in enumerate(self.predicates)):
                return i
        return None

    def matches(self, configs: Sequence[AbstractConfiguration]) -> bool:
        return self.find(configs) is not None


@dataclass(frozen=True)
class SafetyDistributedSpec:
    """A specification equipped with a bad-factor (Definition 5)."""

    name: str
    bad_factor: BadFactor

    def violated_by(self, configs: Sequence[AbstractConfiguration]) -> bool:
        """Point (1) of Definition 5: the execution contains the factor."""
        return self.bad_factor.matches(configs)


def concurrent_cs_count(config: AbstractConfiguration, tag: str = "me") -> int:
    """How many processes occupy the critical section in ``config``."""
    count = 0
    for state in config.states.values():
        layer_state = state.get(tag, {})
        if layer_state.get("in_cs"):
            count += 1
    return count


def mutual_exclusion_spec(tag: str = "me", concurrency: int = 2) -> SafetyDistributedSpec:
    """The mutual-exclusion safety-distributed specification.

    Its bad-factor is a single abstract configuration in which at least
    ``concurrency`` processes occupy the critical section simultaneously —
    each of those local behaviours is legal alone (point (2) of
    Definition 5: every process does enter the CS in some correct
    execution), but their combination is forbidden.
    """

    def bad(config: AbstractConfiguration) -> bool:
        return concurrent_cs_count(config, tag) >= concurrency

    return SafetyDistributedSpec(
        name=f"mutual-exclusion[{tag}]",
        bad_factor=BadFactor(name=f">={concurrency} processes in CS", predicates=(bad,)),
    )
