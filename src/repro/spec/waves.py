"""Wave extraction: reconstructing PIF computations from a trace.

Runs as a **single forward pass** over the trace's kind index
(:meth:`~repro.sim.trace.Trace.scan`): only START/DECIDE/RECEIVE_BRD/
RECEIVE_FCK rows are visited and no :class:`~repro.sim.trace.TraceEvent`
views are materialized — on a multi-million-event trace the extraction cost
is proportional to the wave traffic, not the trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.trace import EventKind, Trace

__all__ = ["Wave", "extract_waves"]


@dataclass
class Wave:
    """One started PIF computation, as visible in the trace."""

    pid: int
    wave: tuple[int, int]
    payload: object
    start_time: int
    decide_time: int | None = None
    #: receive-brd records carrying this wave id, by receiving process:
    #: ``(time, sender, payload)`` per event, in trace order.
    brd_events: dict[int, list[tuple[int, int, Any]]] = field(default_factory=dict)
    #: receive-fck times carrying this wave id at the initiator, by sender.
    fck_events: dict[int, list[int]] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.decide_time is not None

    @property
    def duration(self) -> int | None:
        if self.decide_time is None:
            return None
        return self.decide_time - self.start_time


def extract_waves(trace: Trace, tag: str) -> list[Wave]:
    """Reconstruct every started computation of the PIF instance ``tag``.

    Start/decide events pair up per wave id; receive-brd / receive-fck
    events attach to the wave whose id they carry (``debug_wave`` metadata;
    garbage messages carry no wave id and attach to nothing).
    """
    waves: dict[tuple[int, int], Wave] = {}
    for time, kind, process, data in trace.scan(
        EventKind.START,
        EventKind.DECIDE,
        EventKind.RECEIVE_BRD,
        EventKind.RECEIVE_FCK,
    ):
        if data.get("tag") != tag:
            continue
        if kind == EventKind.RECEIVE_BRD:
            wid = data.get("wave")
            wave = waves.get(wid)
            if wave is not None:
                wave.brd_events.setdefault(process, []).append(
                    (time, data.get("sender"), data.get("payload"))
                )
        elif kind == EventKind.RECEIVE_FCK:
            wid = data.get("wave")
            wave = waves.get(wid)
            if wave is not None:
                wave.fck_events.setdefault(data["sender"], []).append(time)
        elif kind == EventKind.START:
            if "wave" in data:
                waves[data["wave"]] = Wave(
                    pid=process,  # type: ignore[arg-type]
                    wave=data["wave"],
                    payload=data.get("payload"),
                    start_time=time,
                )
        else:  # DECIDE
            if "wave" in data:
                wave = waves.get(data["wave"])
                if wave is not None and wave.decide_time is None:
                    wave.decide_time = time
    return sorted(waves.values(), key=lambda w: w.start_time)
