"""Wave extraction: reconstructing PIF computations from a trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = ["Wave", "extract_waves"]


@dataclass
class Wave:
    """One started PIF computation, as visible in the trace."""

    pid: int
    wave: tuple[int, int]
    payload: object
    start_time: int
    decide_time: int | None = None
    #: receive-brd events carrying this wave id, by receiving process.
    brd_events: dict[int, list[TraceEvent]] = field(default_factory=dict)
    #: receive-fck events carrying this wave id at the initiator, by sender.
    fck_events: dict[int, list[TraceEvent]] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.decide_time is not None

    @property
    def duration(self) -> int | None:
        if self.decide_time is None:
            return None
        return self.decide_time - self.start_time


def extract_waves(trace: Trace, tag: str) -> list[Wave]:
    """Reconstruct every started computation of the PIF instance ``tag``.

    Start/decide events pair up per wave id; receive-brd / receive-fck
    events attach to the wave whose id they carry (``debug_wave`` metadata;
    garbage messages carry no wave id and attach to nothing).
    """
    waves: dict[tuple[int, int], Wave] = {}
    for event in trace:
        if event.get("tag") != tag:
            continue
        if event.kind == EventKind.START and "wave" in event.data:
            wid = event["wave"]
            waves[wid] = Wave(
                pid=event.process,  # type: ignore[arg-type]
                wave=wid,
                payload=event.get("payload"),
                start_time=event.time,
            )
        elif event.kind == EventKind.DECIDE and "wave" in event.data:
            wave = waves.get(event["wave"])
            if wave is not None and wave.decide_time is None:
                wave.decide_time = event.time
        elif event.kind == EventKind.RECEIVE_BRD:
            wid = event.get("wave")
            if wid in waves:
                waves[wid].brd_events.setdefault(event.process, []).append(event)
        elif event.kind == EventKind.RECEIVE_FCK:
            wid = event.get("wave")
            if wid in waves:
                waves[wid].fck_events.setdefault(event["sender"], []).append(event)
    return sorted(waves.values(), key=lambda w: w.start_time)
