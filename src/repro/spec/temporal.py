"""Temporal combinators over traces.

A tiny linear-temporal vocabulary for writing execution properties the way
the paper states them ("when requested, ... in finite time"; "never two
concurrent ...").  Checkers in :mod:`repro.spec` are hand-rolled for
precise diagnostics; these combinators complement them for quick ad-hoc
properties in tests and experiments.

All combinators operate on event predicates ``TraceEvent -> bool`` and
return :class:`TemporalResult` (truthy on success, with a witness or
counterexample event for diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "EventPred",
    "TemporalResult",
    "event",
    "eventually",
    "always",
    "never",
    "leads_to",
    "precedes",
    "count",
]

EventPred = Callable[[TraceEvent], bool]


@dataclass(frozen=True)
class TemporalResult:
    """Outcome of a temporal check; truthy iff the property holds."""

    holds: bool
    reason: str
    witness: TraceEvent | None = None

    def __bool__(self) -> bool:
        return self.holds


def event(kind: str, process: int | None = None, **fields) -> EventPred:
    """Predicate builder: match kind, optionally process and data fields."""

    def pred(e: TraceEvent) -> bool:
        if e.kind != kind:
            return False
        if process is not None and e.process != process:
            return False
        return all(e.data.get(k) == v for k, v in fields.items())

    return pred


def eventually(trace: Trace, pred: EventPred, *, after: int = 0) -> TemporalResult:
    """◇ pred — some event at time >= ``after`` satisfies ``pred``."""
    for e in trace:
        if e.time >= after and pred(e):
            return TemporalResult(True, f"satisfied at t={e.time}", e)
    return TemporalResult(False, f"no matching event at or after t={after}")


def always(trace: Trace, pred: EventPred) -> TemporalResult:
    """□ pred — every event satisfies ``pred``."""
    for e in trace:
        if not pred(e):
            return TemporalResult(False, f"violated at t={e.time}", e)
    return TemporalResult(True, "holds for all events")


def never(trace: Trace, pred: EventPred) -> TemporalResult:
    """□ ¬pred — no event satisfies ``pred``."""
    for e in trace:
        if pred(e):
            return TemporalResult(False, f"occurred at t={e.time}", e)
    return TemporalResult(True, "never occurred")


def leads_to(
    trace: Trace,
    trigger: EventPred,
    response: EventPred,
    *,
    within: int | None = None,
) -> TemporalResult:
    """trigger ⇝ response — every trigger is followed by a response.

    With ``within``, the response must arrive no later than
    ``trigger.time + within``.
    """
    # The trace's cached event view — no per-call O(n) copy.
    events = trace.events
    for i, e in enumerate(events):
        if not trigger(e):
            continue
        deadline = None if within is None else e.time + within
        satisfied = any(
            response(later)
            for later in events[i + 1:]
            if deadline is None or later.time <= deadline
        )
        if not satisfied:
            limit = "" if deadline is None else f" within {within} ticks"
            return TemporalResult(
                False, f"trigger at t={e.time} never answered{limit}", e
            )
    return TemporalResult(True, "every trigger answered")


def precedes(trace: Trace, first: EventPred, second: EventPred) -> TemporalResult:
    """The first occurrence of ``first`` is before the first of ``second``.

    Vacuously true when ``second`` never occurs; false when ``second``
    occurs without any earlier ``first``.
    """
    first_time: int | None = None
    for e in trace:
        if first_time is None and first(e):
            first_time = e.time
        if second(e):
            if first_time is None or first_time > e.time:
                return TemporalResult(
                    False, f"second event at t={e.time} not preceded", e
                )
            return TemporalResult(True, f"{first_time} <= {e.time}")
    return TemporalResult(True, "second event never occurred (vacuous)")


def count(trace: Trace, pred: EventPred) -> int:
    """Number of events satisfying ``pred``."""
    return sum(1 for e in trace if pred(e))
