"""Specification 1 — PIF-Execution (Section 4.1).

An execution satisfies the PIF specification iff:

* **Start** — when there is a request for ``p`` to broadcast, ``p`` starts a
  computation in finite time;
* **Correctness** — during any computation started by ``p`` for ``m``: every
  other process receives ``m`` and ``p`` receives acknowledgments for ``m``
  from every other process;
* **Termination** — any computation (even non-started) terminates in finite
  time;
* **Decision** — when a started computation terminates at ``p``, ``p``
  decides taking all (and only) acknowledgments of its last broadcast into
  account.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.sim.trace import EventKind, Trace
from repro.spec.base import SpecVerdict
from repro.spec.waves import Wave, extract_waves
from repro.types import RequestState

__all__ = ["check_pif"]


def check_pif(
    trace: Trace,
    tag: str,
    pids: Iterable[int],
    *,
    final_requests: Mapping[int, RequestState] | None = None,
    require_all_decided: bool = True,
    neighbors: Mapping[int, Sequence[int]] | None = None,
) -> SpecVerdict:
    """Check Specification 1 for the PIF instance ``tag``.

    ``final_requests`` (pid -> final Request value) enables the Termination
    check on never-started computations: at the end of a sufficiently long
    run, nobody may still be ``In``.  ``require_all_decided`` additionally
    demands every *started* wave decided before the end of the trace — turn
    it off when analysing deliberately truncated runs.

    ``neighbors`` (pid -> neighbour ids) scopes Correctness and Decision to
    each initiator's neighbourhood — the wave's reach on a non-complete
    topology.  Without it, every other process is expected to hear the
    broadcast (the paper's complete-graph reading).
    """
    pids = tuple(pids)
    verdict = SpecVerdict(spec=f"PIF[{tag}]")
    waves = extract_waves(trace, tag)
    verdict.info["waves_started"] = len(waves)
    verdict.info["waves_decided"] = sum(1 for w in waves if w.decided)

    _check_start(trace, tag, verdict)
    _check_termination(waves, final_requests, require_all_decided, verdict)
    for wave in waves:
        if wave.decided:
            if neighbors is not None:
                others = tuple(neighbors[wave.pid])
            else:
                others = tuple(q for q in pids if q != wave.pid)
            _check_correctness(wave, others, verdict)
            _check_decision(wave, others, verdict)
    return verdict


def _check_start(trace: Trace, tag: str, verdict: SpecVerdict) -> None:
    """Every request is followed by a start at the same process."""
    pending: dict[int, int] = {}
    for time, kind, process, data in trace.scan(EventKind.REQUEST, EventKind.START):
        if data.get("tag") != tag or process is None:
            continue
        if kind == EventKind.REQUEST:
            # Hypothesis 1 makes at most one request outstanding.
            pending.setdefault(process, time)
        else:
            pending.pop(process, None)
    for pid, t in sorted(pending.items()):
        verdict.add(
            "Start",
            f"request at t={t} never followed by a start",
            time=t,
            process=pid,
        )


def _check_termination(
    waves: list[Wave],
    final_requests: Mapping[int, RequestState] | None,
    require_all_decided: bool,
    verdict: SpecVerdict,
) -> None:
    if require_all_decided:
        for wave in waves:
            if not wave.decided:
                verdict.add(
                    "Termination",
                    f"wave {wave.wave} started at t={wave.start_time} never decided",
                    time=wave.start_time,
                    process=wave.pid,
                )
    if final_requests is not None:
        for pid, state in sorted(final_requests.items()):
            if state is RequestState.IN:
                verdict.add(
                    "Termination",
                    "computation (possibly never started) still In at end of run",
                    process=pid,
                )


def _check_correctness(wave: Wave, others: tuple[int, ...], verdict: SpecVerdict) -> None:
    """Every reachable process got the broadcast; the initiator every ack."""
    for q in others:
        brds = [
            (time, payload)
            for time, sender, payload in wave.brd_events.get(q, [])
            if sender == wave.pid
            and wave.start_time <= time <= (wave.decide_time or time)
        ]
        if not brds:
            verdict.add(
                "Correctness",
                f"process {q} never received broadcast of wave {wave.wave} "
                f"(payload {wave.payload!r})",
                time=wave.decide_time,
                process=q,
            )
        else:
            for time, payload in brds:
                if payload != wave.payload:
                    verdict.add(
                        "Correctness",
                        f"process {q} received corrupted payload "
                        f"{payload!r} != {wave.payload!r}",
                        time=time,
                        process=q,
                    )
    for q in others:
        fcks = wave.fck_events.get(q, [])
        if not fcks:
            verdict.add(
                "Correctness",
                f"initiator never received acknowledgment from {q} "
                f"for wave {wave.wave}",
                time=wave.decide_time,
                process=wave.pid,
            )


def _check_decision(wave: Wave, others: tuple[int, ...], verdict: SpecVerdict) -> None:
    """Exactly one acknowledgment per peer, all within the wave's window."""
    for q in others:
        fcks = wave.fck_events.get(q, [])
        if len(fcks) > 1:
            verdict.add(
                "Decision",
                f"{len(fcks)} acknowledgments from {q} counted for wave "
                f"{wave.wave}; expected exactly one",
                time=wave.decide_time,
                process=wave.pid,
            )
        for time in fcks:
            if not wave.start_time <= time <= (wave.decide_time or time):
                verdict.add(
                    "Decision",
                    f"acknowledgment from {q} at t={time} outside the "
                    f"wave window [{wave.start_time}, {wave.decide_time}]",
                    time=time,
                    process=wave.pid,
                )
