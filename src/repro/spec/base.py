"""Common machinery for specification checkers.

Specifications are predicates over *executions* (Section 2).  Checkers here
evaluate them over recorded traces of semantic events and return structured
verdicts; they never inspect protocol internals, so they constitute an
independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationViolation

__all__ = ["Violation", "SpecVerdict"]


@dataclass(frozen=True)
class Violation:
    """One violated property instance."""

    prop: str
    detail: str
    time: int | None = None
    process: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" at p{self.process}" if self.process is not None else ""
        when = f" (t={self.time})" if self.time is not None else ""
        return f"[{self.prop}]{where}{when}: {self.detail}"


@dataclass
class SpecVerdict:
    """Outcome of checking one specification over one execution."""

    spec: str
    violations: list[Violation] = field(default_factory=list)
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, prop: str, detail: str, *, time: int | None = None,
            process: int | None = None) -> None:
        self.violations.append(
            Violation(prop=prop, detail=detail, time=time, process=process)
        )

    def by_property(self, prop: str) -> list[Violation]:
        return [v for v in self.violations if v.prop == prop]

    def property_ok(self, prop: str) -> bool:
        return not self.by_property(prop)

    def require(self) -> "SpecVerdict":
        """Raise :class:`SpecificationViolation` unless the verdict is clean."""
        if not self.ok:
            first = self.violations[0]
            raise SpecificationViolation(
                f"{self.spec}/{first.prop}",
                f"{first.detail} (+{len(self.violations) - 1} more)",
            )
        return self

    def summary(self) -> str:
        if self.ok:
            return f"{self.spec}: OK ({self.info})"
        lines = [f"{self.spec}: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)
