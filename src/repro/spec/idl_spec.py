"""Specification 2 — IDs-Learning-Execution (Section 4.2).

At the end of any IDs-Learning computation *started* by ``p``:
``ID-Tab_p[q] = ID_q`` for every peer ``q`` and
``minID_p = min`` of all identities.  Start and Termination mirror
Specification 1.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.trace import EventKind, Trace
from repro.spec.base import SpecVerdict
from repro.types import RequestState

__all__ = ["check_idl"]


def check_idl(
    trace: Trace,
    tag: str,
    idents: Mapping[int, int],
    *,
    final_requests: Mapping[int, RequestState] | None = None,
    neighborhoods: Mapping[int, Sequence[int]] | None = None,
) -> SpecVerdict:
    """Check Specification 2 for the IDL instance ``tag``.

    ``idents`` is the ground truth: pid -> identity.  The checker pairs each
    START with the next DECIDE at the same process and validates the decision
    payload (``min_id`` and ``id_tab`` recorded in the decide event) against
    the ground truth.

    ``neighborhoods`` (pid -> neighbour ids) scopes the ground truth to what
    an IDL wave can reach on a non-complete topology: the decided ``min_id``
    must be the *closed neighbourhood* minimum and ``id_tab`` must cover
    exactly the neighbours.  Without it the paper's complete-graph reading
    applies (global minimum, every other process tabulated).
    """
    verdict = SpecVerdict(spec=f"IDL[{tag}]")
    true_min = min(idents.values())
    started: dict[int, int] = {}  # pid -> start time of open computation
    requested: dict[int, int] = {}
    computations = 0

    # Single forward pass over the REQUEST/START/DECIDE kind index.
    for time, kind, pid, data in trace.scan(
        EventKind.REQUEST, EventKind.START, EventKind.DECIDE
    ):
        if data.get("tag") != tag or pid is None:
            continue
        if kind == EventKind.REQUEST:
            requested.setdefault(pid, time)
        elif kind == EventKind.START:
            requested.pop(pid, None)
            started[pid] = time
        else:  # DECIDE
            start_time = started.pop(pid, None)
            if start_time is None:
                continue  # decision of a never-started computation: no guarantee
            computations += 1
            min_id = data.get("min_id")
            id_tab = data.get("id_tab") or {}
            if neighborhoods is not None:
                peers = tuple(neighborhoods[pid])
                expected_min = min(
                    idents[pid], min(idents[q] for q in peers)
                )
            else:
                peers = tuple(q for q in idents if q != pid)
                expected_min = true_min
            if min_id != expected_min:
                verdict.add(
                    "Correctness",
                    f"decided min_id={min_id!r}, true minimum is {expected_min}",
                    time=time,
                    process=pid,
                )
            for q in peers:
                if id_tab.get(q) != idents[q]:
                    verdict.add(
                        "Correctness",
                        f"ID-Tab[{q}]={id_tab.get(q)!r}, true identity is {idents[q]}",
                        time=time,
                        process=pid,
                    )

    for pid, t in sorted(requested.items()):
        verdict.add("Start", f"request at t={t} never started", time=t, process=pid)
    for pid, t in sorted(started.items()):
        verdict.add(
            "Termination",
            f"computation started at t={t} never decided",
            time=t,
            process=pid,
        )
    if final_requests is not None:
        for pid, state in sorted(final_requests.items()):
            if state is RequestState.IN:
                verdict.add(
                    "Termination",
                    "computation (possibly never started) still In at end of run",
                    process=pid,
                )
    verdict.info["computations"] = computations
    return verdict
