"""Specification 3 — ME-Execution (Section 4.3).

* **Start** — any process that requests the critical section enters it in
  finite time.
* **Correctness** — if a requesting process enters the critical section, it
  executes it alone.

The arbitrary initial configuration may place *non-requesting* processes in
the critical section (the paper's footnote 1); such occupancies are recorded
with ``requested=False``.  The paper guarantees exclusivity for requesting
processes, and the EXIT-wave mechanism in fact prevents a requested CS from
overlapping *any* other occupancy once the zombie occupant blocks the EXIT
wave until it leaves — so the checker flags any overlap involving at least
one requested interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection, Sequence

from repro.sim.trace import EventKind, Trace
from repro.spec.base import SpecVerdict

__all__ = ["CsInterval", "cs_intervals", "check_mutex"]


@dataclass(frozen=True)
class CsInterval:
    """One critical-section occupancy."""

    pid: int
    enter: int
    exit: int | None  # None when still inside at the end of the trace
    requested: bool

    def overlaps(self, other: "CsInterval", horizon: int) -> bool:
        end_self = self.exit if self.exit is not None else horizon
        end_other = other.exit if other.exit is not None else horizon
        return self.enter < end_other and other.enter < end_self


def cs_intervals(trace: Trace, tag: str) -> list[CsInterval]:
    """Reconstruct every critical-section interval from the trace.

    Single forward pass over the CS_ENTER/CS_EXIT kind index — the trace's
    other events are never visited.
    """
    open_by_pid: dict[int, tuple[int, bool]] = {}
    intervals: list[CsInterval] = []
    for time, kind, pid, data in trace.scan(EventKind.CS_ENTER, EventKind.CS_EXIT):
        if data.get("tag") != tag or pid is None:
            continue
        if kind == EventKind.CS_ENTER:
            open_by_pid[pid] = (time, bool(data.get("requested", True)))
        else:
            opened = open_by_pid.pop(pid, None)
            if opened is not None:
                intervals.append(
                    CsInterval(pid=pid, enter=opened[0], exit=time,
                               requested=opened[1])
                )
    for pid, (enter, requested) in open_by_pid.items():
        intervals.append(CsInterval(pid=pid, enter=enter, exit=None,
                                    requested=requested))
    intervals.sort(key=lambda i: (i.enter, i.pid))
    return intervals


def check_mutex(
    trace: Trace,
    tag: str,
    *,
    horizon: int,
    require_all_served: bool = True,
    clusters: "Sequence[Collection[int]] | None" = None,
) -> SpecVerdict:
    """Check Specification 3 for the ME instance ``tag``.

    ``horizon`` is the end-of-run time (used to close still-open intervals).
    With ``require_all_served`` every REQUEST must be followed by a DECIDE
    (the request was serviced) before the end of the trace.

    ``clusters`` generalizes Correctness to non-complete topologies: ME
    arbitrates per *leader cluster* (processes sharing the same closed-
    neighbourhood-minimum leader — see
    :func:`repro.sim.topology.arbitration_clusters`), so an overlap is a
    violation only between processes of a common cluster.  Without it every
    pair conflicts — the paper's complete graph, where the single global
    leader forms one cluster.
    """
    verdict = SpecVerdict(spec=f"ME[{tag}]")
    intervals = cs_intervals(trace, tag)
    verdict.info["cs_count"] = len(intervals)
    verdict.info["requested_cs_count"] = sum(1 for i in intervals if i.requested)
    conflict: Callable[[int, int], bool]
    if clusters is None:
        conflict = lambda p, q: True
    else:
        cluster_sets = [frozenset(c) for c in clusters]
        conflict = lambda p, q: any(p in c and q in c for c in cluster_sets)

    # Correctness: a requested interval overlaps nothing it conflicts with.
    for i in range(len(intervals)):
        for j in range(i + 1, len(intervals)):
            a, b = intervals[i], intervals[j]
            if (
                a.pid != b.pid
                and (a.requested or b.requested)
                and conflict(a.pid, b.pid)
                and a.overlaps(b, horizon)
            ):
                verdict.add(
                    "Correctness",
                    f"critical sections overlap: p{a.pid} [{a.enter}, {a.exit}] "
                    f"(requested={a.requested}) and p{b.pid} [{b.enter}, {b.exit}] "
                    f"(requested={b.requested})",
                    time=max(a.enter, b.enter),
                )

    # Start/liveness: every request is eventually serviced.
    if require_all_served:
        pending: dict[int, int] = {}
        for time, kind, pid, data in trace.scan(EventKind.REQUEST, EventKind.DECIDE):
            if data.get("tag") != tag or pid is None:
                continue
            if kind == EventKind.REQUEST:
                pending.setdefault(pid, time)
            else:
                pending.pop(pid, None)
        for pid, t in sorted(pending.items()):
            verdict.add(
                "Start",
                f"request at t={t} never serviced (no CS entry/decide)",
                time=t,
                process=pid,
            )
    return verdict


def service_order(trace: Trace, tag: str) -> list[int]:
    """The order in which processes entered requested critical sections."""
    return [
        pid
        for _time, _kind, pid, data in trace.scan(EventKind.CS_ENTER)
        if data.get("tag") == tag and data.get("requested", True) and pid is not None
    ]
