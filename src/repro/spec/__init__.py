"""Specification checkers (Specifications 1-3, Definition 5)."""

from repro.spec.base import SpecVerdict, Violation
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import CsInterval, check_mutex, cs_intervals, service_order
from repro.spec.pif_spec import check_pif
from repro.spec.safety_distributed import (
    BadFactor,
    SafetyDistributedSpec,
    concurrent_cs_count,
    mutual_exclusion_spec,
)
from repro.spec.temporal import (
    TemporalResult,
    always,
    count,
    event,
    eventually,
    leads_to,
    never,
    precedes,
)
from repro.spec.waves import Wave, extract_waves

__all__ = [
    "BadFactor",
    "TemporalResult",
    "always",
    "count",
    "event",
    "eventually",
    "leads_to",
    "never",
    "precedes",
    "CsInterval",
    "SafetyDistributedSpec",
    "SpecVerdict",
    "Violation",
    "Wave",
    "check_idl",
    "check_mutex",
    "check_pif",
    "concurrent_cs_count",
    "cs_intervals",
    "extract_waves",
    "mutual_exclusion_spec",
    "service_order",
]
