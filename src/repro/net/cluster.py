"""Multi-host runtime: per-shard worker interpreters behind the wire format.

:class:`ClusterSimulator` runs one trial across OS processes (or, with
hand-launched workers, machines): the topology is partitioned into shards
(:mod:`repro.sim.partition` — Weighted-aware boundaries, cross-shard
latency floors), and each shard runs inside its own *worker interpreter*
hosting an :class:`~repro.net.engine.AsyncSimulator` slice
(``hosts_for=shard_pids``).  Intra-shard channels stay in-process loopback
queues; cross-shard sends fall through the base engine's sender-owned
accounting into the cross-shard outbox and travel as ``SHIP`` frames
(:mod:`repro.net.wire`) over real sockets, directly worker-to-worker.

Workers find each other through the rendezvous service of
:mod:`repro.net.registry`: each registers ``(shard_id, host, port)``,
receives the full peer map, and dials its peer shards itself (HELLO
identifies the source shard).  The registry connection doubles as the
coordinator's control channel.

Two synchronization modes:

* ``sync="windowed"`` — the sharded engine's conservative time-window
  protocol over sockets.  The coordinator advances all workers in windows
  of at most :attr:`Partition.latency_floor` ticks; a worker finishes its
  round, ships its outbox, then sends a ``BARRIER(round)`` frame on every
  peer link.  Per-connection FIFO means a barrier certifies every SHIP of
  that round was already delivered, and the window bound means every
  shipped delivery time lies strictly beyond the next window — so a
  worker that has seen round ``r-1`` barriers from all peers can advance
  round ``r`` with its event heap complete.  The run is therefore
  **bit-identical to the serial engine** (same trace, same canonical
  hash), which the ``cluster-equivalence`` CI gate asserts.
* ``sync="freerun"`` — best-effort: same frames, no barrier waits, and
  arrival times are clamped to the receiver's local future
  (``max(when, now + 1)``).  Cross-shard timing is no longer reproducible,
  so the online spec monitors (:mod:`repro.net.monitors`), replayed over
  the merged trace, carry the verdict — in the spirit of automata-based
  distributed runtime checking.

Trace merging, completion bookkeeping and scramble segment handling are
shared with the fork-based sharded engine
(:func:`repro.sim.sharded.merge_worker_traces` and friends) — one merge
algorithm, two fabrics.

Worker interpreters cannot inherit closures, so trials are described by
picklable *specs*: a protocol spec (``{"kind": "pif", ...}`` —
:func:`build_protocol`) and a driver config whose payload is a format
string (``payload_fmt="msg-{pid}-{k}"``) rather than a callable.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import SimulationError
from repro.net import wire
from repro.net.engine import AsyncSimulator
from repro.net.registry import RegistryClient, RegistryServer
from repro.obs.recorder import ObsRecorder
from repro.obs.spans import wall
from repro.sim.channel import LossModel
from repro.sim.partition import Partition, partition_topology
from repro.sim.runtime import BuildFn
from repro.sim.sharded import (
    _KeyedTrace,
    _SHARDABLE_LOSS,
    merge_completions,
    merge_worker_traces,
    scramble_shard,
    shard_result_payload,
)
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import Trace
from repro.types import RequestState

__all__ = [
    "ClusterSimulator",
    "ClusterRunResult",
    "SYNC_MODES",
    "FREERUN_WINDOW",
    "build_protocol",
    "payload_from_fmt",
    "run_cluster_worker",
    "parse_hostport",
]

SYNC_MODES = ("windowed", "freerun")

#: Advance-round size in freerun mode (no lookahead bound applies — the
#: round exists only to pace control traffic and completion checks).
FREERUN_WINDOW = 64


def parse_hostport(spec: str) -> tuple[str, int]:
    """Parse ``host:port`` (the form every cluster CLI flag uses)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SimulationError(f"expected HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SimulationError(f"bad port in {spec!r}") from None


# -- picklable trial specs -------------------------------------------------


def _build_pif(*, tag: str = "pif", max_state: int = 4) -> BuildFn:
    def build(host) -> None:
        host.register(PifLayer(tag, max_state=max_state))

    return build


def _build_idl(
    *, tag: str = "idl", idents: dict[int, int] | None = None
) -> BuildFn:
    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer(tag, ident=ident))

    return build


def _build_me(
    *, tag: str = "me", cs_duration: int = 3, use_paper_modulus: bool = False
) -> BuildFn:
    def build(host) -> None:
        host.register(
            MutexLayer(
                tag, cs_duration=cs_duration, use_paper_modulus=use_paper_modulus
            )
        )

    return build


#: Named protocol builders: worker interpreters reconstruct the build
#: closure from a picklable ``{"kind": ..., **params}`` spec.
BUILDERS: dict[str, Callable[..., BuildFn]] = {
    "pif": _build_pif,
    "idl": _build_idl,
    "me": _build_me,
}


def build_protocol(spec: dict[str, Any]) -> BuildFn:
    """Turn a protocol spec into a build function (worker side)."""
    params = dict(spec)
    kind = params.pop("kind", None)
    factory = BUILDERS.get(kind)
    if factory is None:
        raise SimulationError(
            f"unknown protocol kind {kind!r}; expected one of {sorted(BUILDERS)}"
        )
    return factory(**params)


def payload_from_fmt(fmt: str) -> Callable[[int, int], str]:
    """The picklable replacement for driver payload callables: a format
    string over ``pid``/``k`` (``"msg-{pid}-{k}"`` reproduces the serial
    runners' payloads byte for byte)."""

    def payload(pid: int, k: int) -> str:
        return fmt.format(pid=pid, k=k)

    return payload


def _worker_driver_cfg(driver: dict[str, Any] | None) -> dict[str, Any] | None:
    """Validate a driver config for shipping to worker interpreters."""
    if driver is None:
        return None
    cfg = dict(driver)
    if callable(cfg.get("payload")):
        raise SimulationError(
            "engine='cluster' cannot ship payload callables to worker "
            "interpreters; pass payload_fmt='msg-{pid}-{k}' instead"
        )
    for key, value in cfg.items():
        if callable(value):
            raise SimulationError(
                f"driver option {key!r} is a callable; the cluster engine "
                "needs a picklable driver config"
            )
    return cfg


@dataclass
class ClusterRunResult:
    """Everything a trial needs back from a multi-host run."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    #: Tick at which the last shard's driver went idle (None if it never did).
    done_at: int | None
    final_time: int
    partition: Partition
    sync: str = "windowed"
    #: Synchronization window (advance-round size in freerun).
    window: int = 0
    #: Barriers paid: one advance round per entry.
    barriers: int = 0
    #: Coordinator-side synchronization wall time: round round-trips minus
    #: each round's slowest worker compute.
    sync_wall_s: float = 0.0
    #: Per-shard simulation wall clock (seconds inside ``drive``), as
    #: reported by each worker interpreter.
    worker_wall_s: dict[int, float] = field(default_factory=dict)
    #: REGISTER/PEERS exchanges the rendezvous cost.
    registry_round_trips: int = 0


class ClusterSimulator:
    """Coordinate one trial across per-shard worker interpreters.

    Constructor arguments mirror :class:`~repro.sim.sharded.ShardedSimulator`
    where they are meaningful across hosts; ``protocol`` is a picklable
    protocol spec (see :data:`BUILDERS`) instead of a build closure, and
    ``hosts`` fixes the worker count (default: one per arbitration-cluster
    group).  With ``listen="host:port"`` the coordinator binds its registry
    there and waits for hand-launched ``repro cluster-worker`` processes
    instead of spawning localhost workers itself.
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        protocol: dict[str, Any] | None = None,
        *,
        topology: Topology | str | None = None,
        seed: int = 0,
        hosts: int | None = None,
        window: int | None = None,
        sync: str = "windowed",
        capacity: int = 1,
        latency: tuple[int, int] = (1, 3),
        loss: LossModel | None = None,
        activation_period: int = 2,
        activation_jitter: int = 1,
        listen: str | None = None,
        worker_timeout: float = 120.0,
    ) -> None:
        if protocol is None:
            raise SimulationError(
                "the cluster engine needs a picklable protocol spec "
                "(e.g. {'kind': 'pif'}); build closures cannot cross "
                "interpreter boundaries"
            )
        build_protocol(protocol)  # validate early, coordinator-side
        if sync not in SYNC_MODES:
            raise SimulationError(
                f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}"
            )
        if isinstance(pids, int):
            pids = list(range(1, pids + 1))
        if topology is None:
            if pids is None:
                raise SimulationError("need a process count, pid list, or topology")
            from repro.sim.topology import Complete

            topology = Complete(pids)
        elif isinstance(topology, str):
            if pids is None:
                raise SimulationError(
                    f"topology spec {topology!r} needs an explicit process count"
                )
            topology = topology_from_spec(topology, len(pids), seed=seed)
        if loss is not None and not isinstance(loss, _SHARDABLE_LOSS):
            raise SimulationError(
                f"loss model {type(loss).__name__} keeps cross-channel state; "
                "the cluster engine supports NoLoss/BernoulliLoss"
            )
        lo, hi = latency
        if not 1 <= lo <= hi:
            raise SimulationError(
                f"latency bounds must satisfy 1 <= lo <= hi, got {latency}"
            )
        self.topology = topology
        self.protocol = dict(protocol)
        self.partition = partition_topology(topology, hosts)
        #: Conservative lookahead, as on the sharded engine: the minimum
        #: latency lower bound over cross-shard edges.
        self.lookahead = self.partition.latency_floor(lo)
        self.sync = sync
        if sync == "windowed":
            if window is None:
                window = self.lookahead
            if not 1 <= window <= self.lookahead:
                detail = (
                    "the latency lower bound"
                    if self.lookahead == lo
                    else f"the cross-shard latency floor; global lower bound {lo}"
                )
                raise SimulationError(
                    f"window must be in 1..{self.lookahead} ({detail} — the "
                    f"engine's conservative lookahead), got {window}"
                )
        else:
            if window is None:
                window = FREERUN_WINDOW
            if window < 1:
                raise SimulationError(f"window must be >= 1, got {window}")
        self.window = window
        self.seed = seed
        self.listen = listen
        self.worker_timeout = worker_timeout
        self._sim_kwargs = dict(
            seed=seed,
            capacity=capacity,
            latency=latency,
            loss=loss,
            activation_period=activation_period,
            activation_jitter=activation_jitter,
        )

    @property
    def pids(self) -> tuple[int, ...]:
        return self.topology.pids

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    # -- the coordinator loop ---------------------------------------------

    def run_trial(
        self,
        *,
        horizon: int,
        scramble_seed: int | None = None,
        fill_channels: bool = True,
        driver: dict[str, Any] | None = None,
        drain: int = 200,
        obs: ObsRecorder | None = None,
    ) -> ClusterRunResult:
        """Rendezvous the workers, then scramble/serve/drain across shards.

        Same trial shape as every other engine; ``drain`` must be >= the
        window (completion is detected at a round boundary, which can
        overshoot the completion tick by up to one window).  With ``obs``,
        workers record their own metrics and spans and ship them back in
        the RESULT control frame, where they merge into the coordinator's
        recorder — one timeline across every interpreter in the trial.
        """
        if drain < self.window:
            raise SimulationError(
                f"drain ({drain}) must be >= window ({self.window})"
            )
        driver_cfg = _worker_driver_cfg(driver)
        return asyncio.run(
            self._run(
                horizon, scramble_seed, fill_channels, driver_cfg, drain, obs
            )
        )

    def _spawn_workers(self, registry_address: str) -> list[subprocess.Popen]:
        """Launch one localhost worker interpreter per shard.

        Workers are fresh interpreters (``python -m repro cluster-worker``),
        not forks — the same launch command works on a remote machine, which
        is the point.  ``PYTHONPATH`` is threaded through explicitly: the
        parent may be running from a source tree (pytest sets ``sys.path``,
        not the environment).
        """
        import repro

        env = os.environ.copy()
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        workers = []
        for shard in range(self.n_shards):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "cluster-worker",
                        "--registry",
                        registry_address,
                        "--shard",
                        str(shard),
                    ],
                    env=env,
                )
            )
        return workers

    async def _run(
        self,
        horizon: int,
        scramble_seed: int | None,
        fill_channels: bool,
        driver_cfg: dict[str, Any] | None,
        drain: int,
        obs: ObsRecorder | None,
    ) -> ClusterRunResult:
        if self.listen is not None:
            reg_host, reg_port = parse_hostport(self.listen)
            registry = RegistryServer(self.n_shards, host=reg_host, port=reg_port)
        else:
            registry = RegistryServer(self.n_shards)
        workers: list[subprocess.Popen] = []
        try:
            await registry.start()
            if self.listen is None:
                workers = self._spawn_workers(registry.address)
            rendezvous_wall = wall() if obs is not None else 0.0
            handles = await registry.rendezvous(self.worker_timeout)
            if obs is not None:
                obs.spans.record(
                    "rendezvous", "phase", rendezvous_wall, wall(),
                    args={"workers": self.n_shards},
                )
                obs.metrics.observe(
                    "registry.rendezvous_wall_s", registry.rendezvous_wall_s
                )
            spec = {
                "topology": self.topology,
                "shards": self.partition.shards,
                "protocol": self.protocol,
                "sync": self.sync,
                "scramble_seed": scramble_seed,
                "fill_channels": fill_channels,
                "driver": driver_cfg,
                "timeout": self.worker_timeout,
                "obs": obs is not None,
                **self._sim_kwargs,
            }
            for handle in handles:
                await handle.send(("spec", spec))

            async def recv(handle, expected: str):
                try:
                    message = await asyncio.wait_for(
                        handle.recv(), timeout=self.worker_timeout
                    )
                except asyncio.TimeoutError:
                    raise SimulationError(
                        f"cluster worker shard {handle.shard} sent no "
                        f"{expected!r} within {self.worker_timeout:.0f}s"
                    ) from None
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    raise SimulationError(
                        f"cluster worker shard {handle.shard} dropped its "
                        "control connection"
                    ) from None
                if message[0] == "error":
                    raise SimulationError(
                        f"cluster worker shard {handle.shard} failed:\n{message[1]}"
                    )
                if message[0] != expected:
                    raise SimulationError(
                        f"cluster worker protocol error: expected {expected!r}, "
                        f"got {message[0]!r}"
                    )
                return message

            injected = 0
            for handle in handles:
                _, worker_injected = await recv(handle, "ready")
                injected += worker_injected

            completed = False
            done_at: int | None = None
            final_target: int | None = None
            barriers = 0
            sync_wall = 0.0
            worker_wall: dict[int, float] = {h.shard: 0.0 for h in handles}
            t = -1
            while final_target is None or t < final_target:
                cap = horizon if final_target is None else final_target
                target = min(t + self.window, cap)
                round_wall = wall() if obs is not None else 0.0
                round_start = time.perf_counter()
                for handle in handles:
                    await handle.send(("adv", target))
                done_ticks = []
                slowest = 0.0
                for handle in handles:
                    _, worker_done, compute_s = await recv(handle, "adv-ok")
                    done_ticks.append(worker_done)
                    worker_wall[handle.shard] += compute_s
                    if compute_s > slowest:
                        slowest = compute_s
                barriers += 1
                round_wait = max(
                    0.0, time.perf_counter() - round_start - slowest
                )
                sync_wall += round_wait
                if obs is not None:
                    obs.record_round(
                        "round", round_wall, wall(),
                        round=barriers - 1, target=target,
                    )
                    obs.metrics.observe("sync.round_wait_s", round_wait)
                t = target
                if final_target is None:
                    if driver_cfg is not None and all(
                        d is not None for d in done_ticks
                    ):
                        done_at = max(done_ticks, default=0)
                        completed = True
                        final_target = done_at + drain
                    elif t >= horizon:
                        final_target = horizon + drain

            payloads = []
            for handle in handles:
                await handle.send(("result",))
                _, payload = await recv(handle, "result")
                payloads.append(payload)
            for handle in handles:
                await handle.send(("stop",))
            for worker in workers:
                try:
                    worker.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    worker.terminate()
        finally:
            await registry.close()
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
            for worker in workers:
                if worker.poll() is None:
                    try:
                        worker.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        worker.kill()

        trace = merge_worker_traces(
            payloads, scramble_seed is not None, fill_channels, injected
        )
        stats = SimStats()
        finals: dict[int, RequestState] = {}
        for payload in payloads:
            stats.merge(payload["stats"])
            finals.update(payload["finals"])
        if obs is not None:
            for payload in payloads:
                if payload.get("obs") is not None:
                    obs.merge_worker(payload["obs"])
            obs.metrics.inc("sync.barriers", barriers)
            obs.metrics.gauge_max("sync.window", self.window)
            obs.metrics.observe("sync.wall_s", sync_wall)
            obs.metrics.inc("registry.round_trips", registry.round_trips)
        assert final_target is not None
        return ClusterRunResult(
            trace=trace,
            stats=stats,
            finals=finals,
            completions=merge_completions(payloads),
            completed=completed,
            done_at=done_at,
            final_time=final_target,
            partition=self.partition,
            sync=self.sync,
            window=self.window,
            barriers=barriers,
            sync_wall_s=sync_wall,
            worker_wall_s=worker_wall,
            registry_round_trips=registry.round_trips,
        )


# -- the worker interpreter ------------------------------------------------


class _ClusterWorker:
    """One shard's interpreter: an AsyncSimulator slice behind the fabric."""

    def __init__(
        self, shard: int, registry_host: str, registry_port: int, advertise_host: str
    ) -> None:
        self.shard = shard
        self.client = RegistryClient(registry_host, registry_port)
        self.advertise_host = advertise_host
        self.engine: AsyncSimulator | None = None
        self.sync = "windowed"
        self.timeout = 120.0
        self.peers: tuple[int, ...] = ()
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._peer_server: asyncio.Server | None = None
        self._pumps: list[asyncio.Task] = []
        #: Latest barrier round seen per in-peer (-1 = none yet).
        self._barrier_round: dict[int, int] = {}
        self._barrier_event = asyncio.Event()
        #: Inbound frames wait on this: a fast peer can ship round 0
        #: while this worker is still building its engine, and a BARRIER
        #: processed before ``_connect_peers`` seeds ``_barrier_round``
        #: would be overwritten (a lost barrier deadlocks the round
        #: loop).  TCP buffers the frames until the trial state exists.
        self._frames_ready = asyncio.Event()
        self._errors: list[BaseException] = []

    async def run(self) -> None:
        # The peer server opens before registration: the PEERS broadcast
        # must only ever name live, dialable endpoints.
        local = self.advertise_host in ("127.0.0.1", "localhost")
        self._peer_server = await asyncio.start_server(
            self._accept_peer,
            host="127.0.0.1" if local else None,
            port=0,
        )
        port = self._peer_server.sockets[0].getsockname()[1]
        try:
            peers = await self.client.register(
                self.shard, self.advertise_host, port, timeout=self.timeout
            )
            op, spec = await asyncio.wait_for(
                self.client.recv(), timeout=self.timeout
            )
            if op != "spec":
                raise SimulationError(f"expected the trial spec, got {op!r}")
            await self._trial(spec, peers)
        finally:
            await self._teardown()

    # -- fabric ----------------------------------------------------------

    async def _connect_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        for peer in self.peers:
            self._barrier_round[peer] = -1
            host, port = peers[peer]
            _reader, writer = await asyncio.open_connection(host, port)
            writer.write(wire.encode_hello(self.shard))
            await writer.drain()
            self._peer_writers[peer] = writer

    async def _accept_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._pumps.append(task)
        try:
            kind, payload = await wire.read_frame(reader)
            if kind != wire.HELLO:
                raise wire.WireError("peer link did not open with a HELLO frame")
            src_shard = wire.decode_hello(payload)
            await self._frames_ready.wait()
            while True:
                kind, payload = await wire.read_frame(reader)
                if kind == wire.SHIP:
                    self._on_ship(*wire.decode_ship(payload))
                elif kind == wire.BARRIER:
                    shard, round_no = wire.decode_barrier(payload)
                    if shard != src_shard:
                        raise wire.WireError(
                            f"barrier names shard {shard} on shard "
                            f"{src_shard}'s link"
                        )
                    self._barrier_round[shard] = round_no
                    self._barrier_event.set()
                else:
                    raise wire.WireError(
                        f"unexpected frame kind 0x{kind:02x} on a peer link"
                    )
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            return  # peer closed or trial teardown
        except Exception as exc:  # noqa: BLE001 - surfaced at the next barrier
            self._errors.append(exc)
            self._barrier_event.set()
        finally:
            writer.close()

    def _on_ship(
        self, src: int, dst: int, msg: Any, when: int, entry_seq: int
    ) -> None:
        engine = self.engine
        assert engine is not None
        if self.sync == "freerun":
            # Best-effort: a late frame lands in the receiver's local
            # future instead of violating the clock.  TCP keeps each
            # link FIFO and the clamp is monotone, so per-channel
            # delivery order still holds.
            when = max(when, engine.now + 1)
        # In windowed mode the protocol guarantees `when` lies beyond the
        # current window; Scheduler.post_at's past-time check stays active
        # as a causality assertion.
        engine.schedule_remote_arrival(src, dst, msg, when, entry_seq)

    async def _ship_round(self, round_no: int) -> None:
        """Ship the round's outbox, then barrier every peer link."""
        engine = self.engine
        assert engine is not None
        shard_of = self.partition.shard_of
        for src, dst, msg, when, entry_seq in engine.drain_outbox():
            writer = self._peer_writers[shard_of[dst]]
            writer.write(wire.encode_ship(src, dst, msg, when, entry_seq))
        barrier = wire.encode_barrier(self.shard, round_no)
        for writer in self._peer_writers.values():
            writer.write(barrier)
        for writer in self._peer_writers.values():
            await writer.drain()

    async def _await_barriers(self, round_no: int) -> None:
        """Block until every in-peer has announced ``round_no``."""
        while True:
            if self._errors:
                raise SimulationError(
                    f"peer link failed: {self._errors[0]}"
                ) from self._errors[0]
            if all(r >= round_no for r in self._barrier_round.values()):
                return
            self._barrier_event.clear()
            try:
                await asyncio.wait_for(
                    self._barrier_event.wait(), timeout=self.timeout
                )
            except asyncio.TimeoutError:
                lagging = sorted(
                    peer
                    for peer, r in self._barrier_round.items()
                    if r < round_no
                )
                raise SimulationError(
                    f"shard {self.shard} waited {self.timeout:.0f}s for "
                    f"barrier {round_no} from peers {lagging}"
                ) from None

    # -- the trial -------------------------------------------------------

    async def _trial(
        self, spec: dict[str, Any], peers: dict[int, tuple[str, int]]
    ) -> None:
        self.sync = spec["sync"]
        self.timeout = spec.get("timeout", self.timeout)
        shards = spec["shards"]
        shard_pids = shards[self.shard]
        self.partition = Partition(topology=spec["topology"], shards=shards)
        self.peers = self.partition.peer_shards(self.shard)
        engine = AsyncSimulator(
            build=build_protocol(spec["protocol"]),
            topology=spec["topology"],
            hosts_for=shard_pids,
            transport="loopback",
            seed=spec["seed"],
            capacity=spec["capacity"],
            latency=spec["latency"],
            loss=spec["loss"],
            activation_period=spec["activation_period"],
            activation_jitter=spec["activation_jitter"],
        )
        trace = _KeyedTrace(engine.scheduler)
        engine.trace = trace
        self.engine = engine
        await self._connect_peers(peers)
        self._frames_ready.set()
        engine.start_actors()
        try:
            injected, proc_len, chan_len = scramble_shard(
                engine, trace, spec["scramble_seed"], spec["fill_channels"]
            )
            driver_cfg = spec["driver"]
            driver: RequestDriver | None = None
            if driver_cfg is not None:
                cfg = dict(driver_cfg)
                fmt = cfg.pop("payload_fmt", None)
                if fmt is not None:
                    cfg["payload"] = payload_from_fmt(fmt)
                driver = RequestDriver(engine, pids=shard_pids, **cfg)
            # Round 0: the scramble's cross-shard injections ship before
            # the coordinator ever advances anyone — by the time a peer
            # passes its round-0 barrier wait, these are in its heap.
            await self._ship_round(0)
            await self.client.send(("ready", injected))
            clock = engine.scheduler
            round_no = 0
            obs: ObsRecorder | None = None
            if spec.get("obs"):
                # Coordinator lane is pid 0; worker lanes follow shard order.
                obs = ObsRecorder(
                    pid=self.shard + 1, name=f"shard{self.shard}"
                )
            while True:
                message = await asyncio.wait_for(
                    self.client.recv(), timeout=self.timeout
                )
                op = message[0]
                if op == "adv":
                    _, target = message
                    round_no += 1
                    if self.sync == "windowed":
                        if obs is not None:
                            w0 = wall()
                            await self._await_barriers(round_no - 1)
                            w1 = wall()
                            obs.spans.record(
                                "barrier_wait", "round", w0, w1,
                                args={"round": round_no - 1},
                            )
                            obs.metrics.observe(
                                "sync.barrier_wait_s", w1 - w0
                            )
                        else:
                            await self._await_barriers(round_no - 1)
                    w0 = wall() if obs is not None else 0.0
                    t0 = time.perf_counter()
                    await clock.drive(target, engine._route)
                    compute_s = time.perf_counter() - t0
                    if obs is not None:
                        obs.record_round(
                            "compute", w0, wall(),
                            round=round_no, target=target,
                        )
                    engine._raise_net_errors()
                    if self._errors:
                        raise SimulationError(
                            f"peer link failed: {self._errors[0]}"
                        ) from self._errors[0]
                    await self._ship_round(round_no)
                    done_at = driver.done_at if driver is not None else 0
                    await self.client.send(("adv-ok", done_at, compute_s))
                elif op == "result":
                    tag = driver_cfg["tag"] if driver_cfg else None
                    if obs is not None:
                        # Fresh interpreter: absolute wire counts are this
                        # trial's (no baseline needed).
                        obs.collect_wire()
                    await self.client.send((
                        "result",
                        shard_result_payload(
                            engine, trace, proc_len, chan_len,
                            shard_pids, driver, tag, obs=obs,
                        ),
                    ))
                elif op == "stop":
                    return
                else:
                    raise SimulationError(
                        f"unknown coordinator op {op!r}"
                    )
        finally:
            await engine._teardown()

    async def _teardown(self) -> None:
        for writer in self._peer_writers.values():
            writer.close()
        for pump in self._pumps:
            pump.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps, return_exceptions=True)
        if self._peer_server is not None:
            self._peer_server.close()
            await self._peer_server.wait_closed()
        self.client.close()


async def _worker_async(
    shard: int, registry_host: str, registry_port: int, advertise_host: str
) -> int:
    worker = _ClusterWorker(shard, registry_host, registry_port, advertise_host)
    try:
        await worker.run()
        return 0
    except Exception:  # noqa: BLE001 - forwarded to the coordinator
        import traceback

        tb = traceback.format_exc()
        try:
            await worker.client.send(("error", tb))
        except Exception:  # noqa: BLE001 - coordinator may be gone
            print(tb, file=sys.stderr)
        return 1


def run_cluster_worker(
    registry: str, shard: int, advertise_host: str = "127.0.0.1"
) -> int:
    """Entry point of ``repro cluster-worker``: serve one shard.

    ``registry`` is the coordinator's rendezvous address (``host:port``);
    ``advertise_host`` is the address *peers* should dial this worker on —
    set it to this machine's reachable address when launching on a remote
    host.  Returns a process exit code.
    """
    host, port = parse_hostport(registry)
    if shard < 0:
        raise SimulationError(f"shard must be >= 0, got {shard}")
    return asyncio.run(_worker_async(shard, host, port, advertise_host))
