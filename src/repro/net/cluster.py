"""Multi-host runtime: per-shard worker interpreters behind the wire format.

:class:`ClusterSimulator` runs one trial across OS processes (or, with
hand-launched workers, machines): the topology is partitioned into shards
(:mod:`repro.sim.partition` — Weighted-aware boundaries, cross-shard
latency floors), and each shard runs inside its own *worker interpreter*
hosting an :class:`~repro.net.engine.AsyncSimulator` slice
(``hosts_for=shard_pids``).  Intra-shard channels stay in-process loopback
queues; cross-shard sends fall through the base engine's sender-owned
accounting into the cross-shard outbox and travel as ``SHIP`` frames
(:mod:`repro.net.wire`) over real sockets, directly worker-to-worker.

Workers find each other through the rendezvous service of
:mod:`repro.net.registry`: each registers ``(shard_id, host, port)``,
receives the full peer map, and dials its peer shards itself (HELLO
identifies the source shard).  The registry connection doubles as the
coordinator's control channel.

Two synchronization modes:

* ``sync="windowed"`` — the sharded engine's conservative time-window
  protocol over sockets.  The coordinator advances all workers in windows
  of at most :attr:`Partition.latency_floor` ticks; a worker finishes its
  round, ships its outbox, then sends a ``BARRIER(round, ship_count)``
  frame on every peer link.  Per-connection FIFO means a barrier certifies
  every SHIP of that round was already delivered, and the window bound
  means every shipped delivery time lies strictly beyond the next window —
  so a worker that has seen round ``r-1`` barriers from all peers can
  advance round ``r`` with its event heap complete.  The run is therefore
  **bit-identical to the serial engine** (same trace, same canonical
  hash), which the ``cluster-equivalence`` CI gate asserts.
* ``sync="freerun"`` — best-effort: same frames, no barrier waits, and
  arrival times are clamped to the receiver's local future
  (``max(when, now + 1)``).  Cross-shard timing is no longer reproducible,
  so the online spec monitors (:mod:`repro.net.monitors`), replayed over
  the merged trace, carry the verdict — in the spirit of automata-based
  distributed runtime checking.

Fault injection and crash recovery (``docs/robustness.md``):

* A :class:`~repro.chaos.FaultPlan` threads deterministic runtime faults
  through the runtime: worker crashes (``os._exit`` at a named lifecycle
  point, delivered via spawn argv so ``at rendezvous`` works), link cuts
  (sender-side in-order withholding, healed on wall time — pure delay,
  so virtual time is untouched), SHIP drop/duplicate/corrupt at the frame
  boundary, and CONTROL-ack stalls.
* The coordinator *detects* worker death by polling each spawned worker's
  ``Popen`` alongside every control-channel await (and treating control
  EOF the same way), raising :class:`~repro.errors.WorkerCrashed` with
  the shard id, round, exit code and a stderr tail within
  :data:`_CRASH_POLL_S` seconds of the death instead of waiting out the
  worker timeout.
* Under ``sync="windowed"`` with coordinator-spawned workers, a crash is
  *survivable*: every worker keeps a per-peer, per-round log of its
  outbound ships, so the coordinator can respawn the shard, collect the
  survivors' logs, and have the replacement deterministically re-execute
  rounds ``0..r`` from ``(seed, spec)`` plus the logged cross-shard
  inputs.  Survivors dedup the replayed re-ships by ``(src, dst,
  entry_seq)`` (channel admission seqs are monotone per channel, so the
  key is unique); the finished trial's canonical trace hash still equals
  the serial engine's.
* Dropped/corrupted ships are healed without replay: the per-round ship
  count in each BARRIER lets a receiver detect the gap, NAK it over
  CONTROL, and have the sender re-ship that round from its log
  (duplicates are absorbed by the same dedup set).

Trace merging, completion bookkeeping and scramble segment handling are
shared with the fork-based sharded engine
(:func:`repro.sim.sharded.merge_worker_traces` and friends) — one merge
algorithm, two fabrics.

Worker interpreters cannot inherit closures, so trials are described by
picklable *specs*: a protocol spec (``{"kind": "pif", ...}`` —
:func:`build_protocol`) and a driver config whose payload is a format
string (``payload_fmt="msg-{pid}-{k}"``) rather than a callable.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import subprocess
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.chaos import FaultPlan
from repro.chaos.backoff import Backoff, retry_async
from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import SimulationError, WorkerCrashed
from repro.net import wire
from repro.net.engine import AsyncSimulator
from repro.net.registry import RegistryClient, RegistryServer
from repro.obs.recorder import ObsRecorder
from repro.obs.spans import SpanRecorder, wall
from repro.sim.channel import LossModel
from repro.sim.partition import Partition, partition_topology
from repro.sim.runtime import BuildFn
from repro.sim.sharded import (
    _KeyedTrace,
    _SHARDABLE_LOSS,
    merge_completions,
    merge_worker_traces,
    scramble_shard,
    shard_result_payload,
)
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import Trace
from repro.types import RequestState

__all__ = [
    "ClusterSimulator",
    "ClusterRunResult",
    "SYNC_MODES",
    "FREERUN_WINDOW",
    "build_protocol",
    "payload_from_fmt",
    "run_cluster_worker",
    "parse_hostport",
]

SYNC_MODES = ("windowed", "freerun")

#: Advance-round size in freerun mode (no lookahead bound applies — the
#: round exists only to pace control traffic and completion checks).
FREERUN_WINDOW = 64

#: How often the coordinator polls worker Popen handles while awaiting a
#: control frame — the crash-detection latency bound.
_CRASH_POLL_S = 0.25

#: Exit code of an injected ``crash worker`` fault (distinct from 1, the
#: generic worker-error exit, so tests can tell them apart).
_CHAOS_EXIT = 70


def parse_hostport(spec: str) -> tuple[str, int]:
    """Parse ``host:port`` (the form every cluster CLI flag uses)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SimulationError(f"expected HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SimulationError(f"bad port in {spec!r}") from None


def _stderr_tail(path: str | None, limit: int = 4000) -> str:
    """The last ``limit`` bytes of a worker's captured stderr."""
    if path is None:
        return ""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return ""
    return data[-limit:].decode("utf-8", "replace").strip()


# -- picklable trial specs -------------------------------------------------


def _build_pif(*, tag: str = "pif", max_state: int = 4) -> BuildFn:
    def build(host) -> None:
        host.register(PifLayer(tag, max_state=max_state))

    return build


def _build_idl(
    *, tag: str = "idl", idents: dict[int, int] | None = None
) -> BuildFn:
    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer(tag, ident=ident))

    return build


def _build_me(
    *, tag: str = "me", cs_duration: int = 3, use_paper_modulus: bool = False
) -> BuildFn:
    def build(host) -> None:
        host.register(
            MutexLayer(
                tag, cs_duration=cs_duration, use_paper_modulus=use_paper_modulus
            )
        )

    return build


#: Named protocol builders: worker interpreters reconstruct the build
#: closure from a picklable ``{"kind": ..., **params}`` spec.
BUILDERS: dict[str, Callable[..., BuildFn]] = {
    "pif": _build_pif,
    "idl": _build_idl,
    "me": _build_me,
}


def build_protocol(spec: dict[str, Any]) -> BuildFn:
    """Turn a protocol spec into a build function (worker side)."""
    params = dict(spec)
    kind = params.pop("kind", None)
    factory = BUILDERS.get(kind)
    if factory is None:
        raise SimulationError(
            f"unknown protocol kind {kind!r}; expected one of {sorted(BUILDERS)}"
        )
    return factory(**params)


def payload_from_fmt(fmt: str) -> Callable[[int, int], str]:
    """The picklable replacement for driver payload callables: a format
    string over ``pid``/``k`` (``"msg-{pid}-{k}"`` reproduces the serial
    runners' payloads byte for byte)."""

    def payload(pid: int, k: int) -> str:
        return fmt.format(pid=pid, k=k)

    return payload


def _worker_driver_cfg(driver: dict[str, Any] | None) -> dict[str, Any] | None:
    """Validate a driver config for shipping to worker interpreters."""
    if driver is None:
        return None
    cfg = dict(driver)
    if callable(cfg.get("payload")):
        raise SimulationError(
            "engine='cluster' cannot ship payload callables to worker "
            "interpreters; pass payload_fmt='msg-{pid}-{k}' instead"
        )
    for key, value in cfg.items():
        if callable(value):
            raise SimulationError(
                f"driver option {key!r} is a callable; the cluster engine "
                "needs a picklable driver config"
            )
    return cfg


@dataclass
class ClusterRunResult:
    """Everything a trial needs back from a multi-host run."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    #: Tick at which the last shard's driver went idle (None if it never did).
    done_at: int | None
    final_time: int
    partition: Partition
    sync: str = "windowed"
    #: Synchronization window (advance-round size in freerun).
    window: int = 0
    #: Barriers paid: one advance round per entry.
    barriers: int = 0
    #: Coordinator-side synchronization wall time: round round-trips minus
    #: each round's slowest worker compute.
    sync_wall_s: float = 0.0
    #: Per-shard simulation wall clock (seconds inside ``drive``), as
    #: reported by each worker interpreter.
    worker_wall_s: dict[int, float] = field(default_factory=dict)
    #: REGISTER/PEERS exchanges the rendezvous cost.
    registry_round_trips: int = 0
    #: Injected-fault and recovery counters (coordinator + all workers):
    #: ``fault.injected.*``, ``worker.crashed``, ``recovery.*``,
    #: ``ship.*``, ``backoff.retries``.
    fault_counts: dict[str, int] = field(default_factory=dict)
    #: Crash recoveries performed (worker respawn + replay).
    recoveries: int = 0
    #: Advance rounds deterministically re-executed by replacements.
    replayed_rounds: int = 0


class ClusterSimulator:
    """Coordinate one trial across per-shard worker interpreters.

    Constructor arguments mirror :class:`~repro.sim.sharded.ShardedSimulator`
    where they are meaningful across hosts; ``protocol`` is a picklable
    protocol spec (see :data:`BUILDERS`) instead of a build closure, and
    ``hosts`` fixes the worker count (default: one per arbitration-cluster
    group).  With ``listen="host:port"`` the coordinator binds its registry
    there and waits for hand-launched ``repro cluster-worker`` processes
    instead of spawning localhost workers itself.

    ``fault_plan`` (a :class:`~repro.chaos.FaultPlan` or its DSL text)
    injects deterministic runtime faults; ``recover`` enables the
    respawn-and-replay path for crash faults (``max_respawns`` bounds it).
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        protocol: dict[str, Any] | None = None,
        *,
        topology: Topology | str | None = None,
        seed: int = 0,
        hosts: int | None = None,
        window: int | None = None,
        sync: str = "windowed",
        capacity: int = 1,
        latency: tuple[int, int] = (1, 3),
        loss: LossModel | None = None,
        activation_period: int = 2,
        activation_jitter: int = 1,
        listen: str | None = None,
        worker_timeout: float = 120.0,
        fault_plan: FaultPlan | str | None = None,
        recover: bool = True,
        max_respawns: int = 2,
    ) -> None:
        if protocol is None:
            raise SimulationError(
                "the cluster engine needs a picklable protocol spec "
                "(e.g. {'kind': 'pif'}); build closures cannot cross "
                "interpreter boundaries"
            )
        build_protocol(protocol)  # validate early, coordinator-side
        if sync not in SYNC_MODES:
            raise SimulationError(
                f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}"
            )
        if isinstance(pids, int):
            pids = list(range(1, pids + 1))
        if topology is None:
            if pids is None:
                raise SimulationError("need a process count, pid list, or topology")
            from repro.sim.topology import Complete

            topology = Complete(pids)
        elif isinstance(topology, str):
            if pids is None:
                raise SimulationError(
                    f"topology spec {topology!r} needs an explicit process count"
                )
            topology = topology_from_spec(topology, len(pids), seed=seed)
        if loss is not None and not isinstance(loss, _SHARDABLE_LOSS):
            raise SimulationError(
                f"loss model {type(loss).__name__} keeps cross-channel state; "
                "the cluster engine supports NoLoss/BernoulliLoss"
            )
        lo, hi = latency
        if not 1 <= lo <= hi:
            raise SimulationError(
                f"latency bounds must satisfy 1 <= lo <= hi, got {latency}"
            )
        self.topology = topology
        self.protocol = dict(protocol)
        self.partition = partition_topology(topology, hosts)
        #: Conservative lookahead, as on the sharded engine: the minimum
        #: latency lower bound over cross-shard edges.
        self.lookahead = self.partition.latency_floor(lo)
        self.sync = sync
        if sync == "windowed":
            if window is None:
                window = self.lookahead
            if not 1 <= window <= self.lookahead:
                detail = (
                    "the latency lower bound"
                    if self.lookahead == lo
                    else f"the cross-shard latency floor; global lower bound {lo}"
                )
                raise SimulationError(
                    f"window must be in 1..{self.lookahead} ({detail} — the "
                    f"engine's conservative lookahead), got {window}"
                )
        else:
            if window is None:
                window = FREERUN_WINDOW
            if window < 1:
                raise SimulationError(f"window must be >= 1, got {window}")
        self.window = window
        self.seed = seed
        self.listen = listen
        self.worker_timeout = worker_timeout
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        if fault_plan is not None:
            fault_plan.validate_for_cluster(
                self.partition.n_shards,
                self.topology.pids,
                sync=sync,
                spawned=listen is None,
            )
        self._plan = fault_plan
        self.recover = recover
        self.max_respawns = max_respawns
        self._sim_kwargs = dict(
            seed=seed,
            capacity=capacity,
            latency=latency,
            loss=loss,
            activation_period=activation_period,
            activation_jitter=activation_jitter,
        )

    @property
    def pids(self) -> tuple[int, ...]:
        return self.topology.pids

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    # -- the coordinator loop ---------------------------------------------

    def run_trial(
        self,
        *,
        horizon: int,
        scramble_seed: int | None = None,
        fill_channels: bool = True,
        driver: dict[str, Any] | None = None,
        drain: int = 200,
        obs: ObsRecorder | None = None,
    ) -> ClusterRunResult:
        """Rendezvous the workers, then scramble/serve/drain across shards.

        Same trial shape as every other engine; ``drain`` must be >= the
        window (completion is detected at a round boundary, which can
        overshoot the completion tick by up to one window).  With ``obs``,
        workers record their own metrics and spans and ship them back in
        the RESULT control frame, where they merge into the coordinator's
        recorder — one timeline across every interpreter in the trial,
        with fault injections and recoveries on a dedicated chaos lane.
        """
        if drain < self.window:
            raise SimulationError(
                f"drain ({drain}) must be >= window ({self.window})"
            )
        driver_cfg = _worker_driver_cfg(driver)
        return asyncio.run(
            self._run(
                horizon, scramble_seed, fill_channels, driver_cfg, drain, obs
            )
        )

    def _worker_env(self) -> dict[str, str]:
        """Spawn environment: ``PYTHONPATH`` is threaded through explicitly
        — the parent may be running from a source tree (pytest sets
        ``sys.path``, not the environment)."""
        import repro

        env = os.environ.copy()
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        return env

    def _spawn_worker(
        self, registry_address: str, shard: int, *, chaos: bool = True
    ) -> tuple[subprocess.Popen, str]:
        """Launch one localhost worker interpreter for ``shard``.

        Workers are fresh interpreters (``python -m repro cluster-worker``),
        not forks — the same launch command works on a remote machine, which
        is the point.  Crash faults ride the argv (``--chaos``): they must
        exist before the control channel does.  stderr goes to a tempfile
        so :class:`WorkerCrashed` can carry its tail.  ``chaos=False``
        spawns a *replacement*, which must not re-inject its predecessor's
        crash.
        """
        argv = [
            sys.executable,
            "-m",
            "repro",
            "cluster-worker",
            "--registry",
            registry_address,
            "--shard",
            str(shard),
        ]
        token = self._plan.crash_token(shard) if (chaos and self._plan) else None
        if token is not None:
            argv += ["--chaos", token]
        stderr_file = tempfile.NamedTemporaryFile(
            prefix=f"repro-worker-{shard}-", suffix=".stderr", delete=False
        )
        try:
            popen = subprocess.Popen(
                argv, env=self._worker_env(), stderr=stderr_file
            )
        finally:
            stderr_file.close()
        return popen, stderr_file.name

    async def _run(
        self,
        horizon: int,
        scramble_seed: int | None,
        fill_channels: bool,
        driver_cfg: dict[str, Any] | None,
        drain: int,
        obs: ObsRecorder | None,
    ) -> ClusterRunResult:
        plan = self._plan
        if self.listen is not None:
            reg_host, reg_port = parse_hostport(self.listen)
            registry = RegistryServer(self.n_shards, host=reg_host, port=reg_port)
        else:
            registry = RegistryServer(self.n_shards)
        procs: dict[int, subprocess.Popen] = {}
        stderr_paths: dict[int, str] = {}
        handles: dict[int, Any] = {}
        coord_counts: dict[str, int] = {}
        chaos_spans = (
            SpanRecorder(pid=self.n_shards + 1) if obs is not None else None
        )
        recovering: set[int] = set()
        respawns = 0
        replayed_rounds_total = 0
        injected_by_shard: dict[int, int] = {}
        targets: list[int] = []
        spec: dict[str, Any] = {}

        def count(name: str, n: int = 1) -> None:
            coord_counts[name] = coord_counts.get(name, 0) + n

        def spawn(shard: int, *, chaos: bool = True) -> None:
            popen, path = self._spawn_worker(registry.address, shard, chaos=chaos)
            procs[shard] = popen
            stderr_paths[shard] = path

        def first_dead() -> int | None:
            for shard in sorted(procs):
                if procs[shard].poll() is not None:
                    return shard
            return None

        def crash_error(
            shard: int, phase: str, round_no: int | None = None
        ) -> WorkerCrashed:
            popen = procs.get(shard)
            exit_code = popen.poll() if popen is not None else None
            tail = _stderr_tail(stderr_paths.get(shard))
            count("worker.crashed")
            if plan is not None and plan.crash_token(shard) is not None:
                count("fault.injected.crash")
            return WorkerCrashed(
                "cluster worker died",
                shard=shard,
                round=round_no,
                phase=phase,
                exit_code=exit_code,
                stderr_tail=tail or None,
            )

        async def relay_nak(nak_from: int, peer: int, round_no: int) -> None:
            """A receiver's ship-count mismatch: ask the sender to re-ship
            the round from its log.  Suppressed while the sender is being
            recovered — its replacement's live re-ships heal the gap."""
            count("ship.nak_relayed")
            if peer in recovering or peer not in handles:
                return
            with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
                await handles[peer].send(("resend", nak_from, round_no))

        async def recv(
            handle, expected: str, *, phase: str, round_no: int | None = None
        ):
            """Await one control frame, polling the worker's Popen so its
            death surfaces as :class:`WorkerCrashed` within
            :data:`_CRASH_POLL_S` instead of the worker timeout.  NAK
            frames may arrive on any await; they are relayed inline."""
            shard = handle.shard
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.worker_timeout
            task = asyncio.ensure_future(handle.recv())
            try:
                while True:
                    done, _ = await asyncio.wait({task}, timeout=_CRASH_POLL_S)
                    if done:
                        try:
                            message = task.result()
                        except (
                            asyncio.IncompleteReadError,
                            ConnectionResetError,
                        ):
                            raise crash_error(shard, phase, round_no) from None
                        if message[0] == "nak":
                            _, nak_from, peer, nak_round = message
                            await relay_nak(nak_from, peer, nak_round)
                            task = asyncio.ensure_future(handle.recv())
                            continue
                        if message[0] == "error":
                            raise SimulationError(
                                f"cluster worker shard {shard} failed:\n"
                                f"{message[1]}"
                            )
                        if message[0] != expected:
                            raise SimulationError(
                                "cluster worker protocol error: expected "
                                f"{expected!r}, got {message[0]!r}"
                            )
                        return message
                    popen = procs.get(shard)
                    if popen is not None and popen.poll() is not None:
                        raise crash_error(shard, phase, round_no)
                    if loop.time() > deadline:
                        raise SimulationError(
                            f"cluster worker shard {shard} sent no "
                            f"{expected!r} within {self.worker_timeout:.0f}s"
                        )
            finally:
                if not task.done():
                    task.cancel()

        async def guarded(awaitable, *, phase: str):
            """Run a registry await with the same Popen crash polling."""
            task = asyncio.ensure_future(awaitable)
            try:
                while True:
                    done, _ = await asyncio.wait({task}, timeout=_CRASH_POLL_S)
                    if done:
                        return task.result()
                    dead = first_dead()
                    if dead is not None:
                        raise crash_error(dead, phase)
            finally:
                if not task.done():
                    task.cancel()

        async def recover(crashed_shard: int, crash: WorkerCrashed) -> int | None:
            """Respawn a crashed shard and replay it back to the barrier.

            Collects the survivors' logged ships *for* the dead shard,
            respawns it without its crash fault, rewires the survivors to
            the replacement's fresh peer server, and sends a replay spec:
            the replacement rebuilds its engine from (seed, spec), seeds
            its dedup set and event heap with the logged inputs, and
            re-executes the same advance targets the first incarnation
            saw — deterministically, so its re-ships are byte-identical
            and survivors absorb them as duplicates (except the crashed
            round's, which are new).  Returns the replacement's driver
            done-tick through the replayed rounds.
            """
            nonlocal respawns, replayed_rounds_total
            recoverable = (
                self.recover
                and self.sync == "windowed"
                and self.listen is None
                and respawns < self.max_respawns
                and not recovering
            )
            if not recoverable:
                raise crash
            recovering.add(crashed_shard)
            t0 = wall() if chaos_spans is not None else 0.0
            respawns += 1
            old = handles.pop(crashed_shard, None)
            if old is not None:
                old.close()
            dead_proc = procs.pop(crashed_shard, None)
            if dead_proc is not None:
                with contextlib.suppress(Exception):
                    dead_proc.wait(timeout=5)
            replay_ships: list[tuple[int, tuple]] = []
            for shard in sorted(handles):
                handle = handles[shard]
                await handle.send(("ship-log", crashed_shard))
                _, entries = await recv(handle, "ship-log", phase="recovery")
                replay_ships.extend(entries)
            registry.expect_rejoin(crashed_shard)
            spawn(crashed_shard, chaos=False)
            new_handle = await guarded(
                registry.rejoin(self.worker_timeout), phase="respawn"
            )
            handles[crashed_shard] = new_handle
            for shard in sorted(handles):
                if shard == crashed_shard:
                    continue
                if crashed_shard not in self.partition.peer_shards(shard):
                    # No topology edge between these shards (e.g. opposite
                    # sides of a wan ring): the survivor never ships to the
                    # replacement, and dialing it anyway would plant a
                    # barrier-round entry the replacement waits on forever.
                    continue
                handle = handles[shard]
                await handle.send(
                    ("peer-update", crashed_shard, new_handle.host, new_handle.port)
                )
                await recv(handle, "peer-ok", phase="recovery")
            await new_handle.send((
                "spec",
                {
                    **spec,
                    "faults": None,
                    "replay": {"targets": list(targets), "ships": replay_ships},
                },
            ))
            _, injected, done_tick = await recv(
                new_handle, "ready", phase="recovery"
            )
            recovering.discard(crashed_shard)
            replayed_rounds_total += len(targets)
            count("recovery.respawns")
            if targets:
                count("recovery.replayed_rounds", len(targets))
            injected_by_shard[crashed_shard] = injected
            if chaos_spans is not None:
                chaos_spans.record(
                    "recovery", "chaos", t0, wall(),
                    args={
                        "shard": crashed_shard,
                        "replayed_rounds": len(targets),
                        "round": crash.round,
                        "phase": crash.phase,
                    },
                )
            return done_tick

        try:
            await registry.start()
            if self.listen is None:
                for shard in range(self.n_shards):
                    spawn(shard)
            rendezvous_wall = wall() if obs is not None else 0.0
            handle_list = await guarded(
                registry.rendezvous(self.worker_timeout), phase="rendezvous"
            )
            handles = {handle.shard: handle for handle in handle_list}
            if obs is not None:
                obs.spans.record(
                    "rendezvous", "phase", rendezvous_wall, wall(),
                    args={"workers": self.n_shards},
                )
                obs.metrics.observe(
                    "registry.rendezvous_wall_s", registry.rendezvous_wall_s
                )
            spec = {
                "topology": self.topology,
                "shards": self.partition.shards,
                "protocol": self.protocol,
                "sync": self.sync,
                "scramble_seed": scramble_seed,
                "fill_channels": fill_channels,
                "driver": driver_cfg,
                "timeout": self.worker_timeout,
                "obs": obs is not None,
                **self._sim_kwargs,
            }
            shard_of = self.partition.shard_of
            for shard in sorted(handles):
                worker_faults = (
                    plan.worker_slice(shard, shard_of) if plan is not None else None
                )
                await handles[shard].send(
                    ("spec", {**spec, "faults": worker_faults})
                )

            crash: WorkerCrashed | None = None
            for shard in sorted(handles):
                try:
                    message = await recv(
                        handles[shard], "ready", phase="startup"
                    )
                except WorkerCrashed as exc:
                    if crash is not None:
                        raise
                    crash = exc
                    continue
                injected_by_shard[shard] = message[1]
            if crash is not None:
                await recover(crash.shard, crash)
            injected = sum(injected_by_shard.values())

            completed = False
            done_at: int | None = None
            final_target: int | None = None
            barriers = 0
            sync_wall = 0.0
            worker_wall: dict[int, float] = {shard: 0.0 for shard in handles}
            t = -1
            while final_target is None or t < final_target:
                cap = horizon if final_target is None else final_target
                target = min(t + self.window, cap)
                targets.append(target)
                round_no = len(targets)
                round_wall = wall() if obs is not None else 0.0
                round_start = time.perf_counter()
                send_dead: list[int] = []
                for shard in sorted(handles):
                    try:
                        await handles[shard].send(("adv", target))
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        send_dead.append(shard)
                done_ticks: dict[int, int | None] = {}
                slowest = 0.0
                crash = None
                for shard in sorted(handles):
                    if shard in send_dead:
                        continue
                    try:
                        _, worker_done, compute_s = await recv(
                            handles[shard], "adv-ok",
                            phase="barrier", round_no=round_no,
                        )
                    except WorkerCrashed as exc:
                        if crash is not None:
                            raise
                        crash = exc
                        continue
                    done_ticks[shard] = worker_done
                    worker_wall[shard] = worker_wall.get(shard, 0.0) + compute_s
                    if compute_s > slowest:
                        slowest = compute_s
                for shard in send_dead:
                    exc = crash_error(shard, "barrier", round_no)
                    if crash is not None:
                        raise exc
                    crash = exc
                if crash is not None:
                    # Every survivor has acked this round (the dead shard
                    # acked all earlier rounds, and acks follow ship
                    # drains, so survivors held every barrier they
                    # needed).  Safe point: recover now.
                    done_ticks[crash.shard] = await recover(crash.shard, crash)
                barriers += 1
                round_wait = max(
                    0.0, time.perf_counter() - round_start - slowest
                )
                sync_wall += round_wait
                if obs is not None:
                    obs.record_round(
                        "round", round_wall, wall(),
                        round=barriers - 1, target=target,
                    )
                    obs.metrics.observe("sync.round_wait_s", round_wait)
                t = target
                if final_target is None:
                    if driver_cfg is not None and len(
                        done_ticks
                    ) == self.n_shards and all(
                        d is not None for d in done_ticks.values()
                    ):
                        done_at = max(done_ticks.values(), default=0)
                        completed = True
                        final_target = done_at + drain
                    elif t >= horizon:
                        final_target = horizon + drain

            payloads = []
            for shard in sorted(handles):
                handle = handles[shard]
                await handle.send(("result",))
                _, payload = await recv(handle, "result", phase="result")
                payloads.append(payload)
            for handle in handles.values():
                with contextlib.suppress(
                    ConnectionResetError, BrokenPipeError, OSError
                ):
                    await handle.send(("stop",))
            for proc in procs.values():
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.terminate()
        finally:
            await registry.close()
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs.values():
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            for path in stderr_paths.values():
                with contextlib.suppress(OSError):
                    os.unlink(path)

        trace = merge_worker_traces(
            payloads, scramble_seed is not None, fill_channels, injected
        )
        stats = SimStats()
        finals: dict[int, RequestState] = {}
        for payload in payloads:
            stats.merge(payload["stats"])
            finals.update(payload["finals"])
        fault_counts = dict(coord_counts)
        for payload in payloads:
            for name, n in (payload.get("fault_counts") or {}).items():
                fault_counts[name] = fault_counts.get(name, 0) + n
        if obs is not None:
            for payload in payloads:
                if payload.get("obs") is not None:
                    obs.merge_worker(payload["obs"])
            obs.metrics.inc("sync.barriers", barriers)
            obs.metrics.gauge_max("sync.window", self.window)
            obs.metrics.observe("sync.wall_s", sync_wall)
            obs.metrics.inc("registry.round_trips", registry.round_trips)
            for name, n in coord_counts.items():
                obs.metrics.inc(name, n)
            if chaos_spans is not None:
                chaos_payload = chaos_spans.payload()
                if chaos_payload:
                    obs.spans.extend(chaos_payload)
                    obs.process_names[self.n_shards + 1] = "chaos"
        assert final_target is not None
        return ClusterRunResult(
            trace=trace,
            stats=stats,
            finals=finals,
            completions=merge_completions(payloads),
            completed=completed,
            done_at=done_at,
            final_time=final_target,
            partition=self.partition,
            sync=self.sync,
            window=self.window,
            barriers=barriers,
            sync_wall_s=sync_wall,
            worker_wall_s=worker_wall,
            registry_round_trips=registry.round_trips,
            fault_counts=fault_counts,
            recoveries=respawns,
            replayed_rounds=replayed_rounds_total,
        )


# -- the worker interpreter ------------------------------------------------


class _ClusterWorker:
    """One shard's interpreter: an AsyncSimulator slice behind the fabric.

    Fault machinery riding the fabric:

    * Every outbound ship is logged per (peer shard, round) before any
      fault or link state can eat it — the log feeds NAK resends and
      crash-recovery replay.
    * BARRIER frames carry the round's ship count; receivers tally unique
      decodable ships per (peer, round) and NAK a shortfall over CONTROL.
    * ``cut link`` buffers a link's frames in order (ships *and*
      barriers) and flushes them after a wall-clock hold — pure delay.
    * ``--chaos`` argv names a crash point; the worker ``os._exit``\\ s
      there after one stderr line (the coordinator's diagnosis).
    """

    def __init__(
        self,
        shard: int,
        registry_host: str,
        registry_port: int,
        advertise_host: str,
        chaos: str | None = None,
    ) -> None:
        self.shard = shard
        self.client = RegistryClient(registry_host, registry_port)
        self.advertise_host = advertise_host
        self.engine: AsyncSimulator | None = None
        self.sync = "windowed"
        self.timeout = 120.0
        self.peers: tuple[int, ...] = ()
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._peer_server: asyncio.Server | None = None
        self._pumps: list[asyncio.Task] = []
        #: Latest barrier round seen per in-peer (-1 = none yet).
        self._barrier_round: dict[int, int] = {}
        self._barrier_event = asyncio.Event()
        #: Inbound frames wait on this: a fast peer can ship round 0
        #: while this worker is still building its engine, and a BARRIER
        #: processed before ``_connect_peers`` seeds ``_barrier_round``
        #: would be overwritten (a lost barrier deadlocks the round
        #: loop).  TCP buffers the frames until the trial state exists.
        self._frames_ready = asyncio.Event()
        self._errors: list[BaseException] = []
        # Crash fault ("phase" or "phase:round", from --chaos argv).
        phase, _, round_s = (chaos or "").partition(":")
        self._crash_phase = phase or None
        self._crash_round = int(round_s) if round_s else 0
        #: Outbound ship log: peer shard -> round -> ships in send order.
        self._ship_log: dict[int, dict[int, list[tuple]]] = {}
        self._last_ship_round = -1
        #: Ships already delivered locally, by (src, dst, entry_seq) —
        #: entry seqs are monotone per channel, so the key is unique and
        #: replayed/duplicated frames are absorbed exactly once.
        self._seen: set[tuple[int, int, int]] = set()
        #: Unique decodable ships received per (peer shard, round).
        self._recv_counts: dict[tuple[int, int], int] = {}
        #: Counted barriers whose ships have not all arrived yet.
        self._pending_barriers: dict[int, deque] = {}
        self._nakked: set[tuple[int, int]] = set()
        #: Peers whose link is down (dead worker); recovery rewires them.
        self._broken_links: set[int] = set()
        #: peer shard -> (start round, hold seconds) for planned cuts.
        self._cut_plan: dict[int, tuple[int, float]] = {}
        #: Active cut buffers (frames withheld, in order).
        self._cut_buffers: dict[int, list[bytes]] = {}
        self._cut_tasks: list[asyncio.Task] = []
        self._ship_faults: list[dict[str, Any]] = []
        self._stalls: dict[int, float] = {}
        self._fault_counts: dict[str, int] = {}

    def _count(self, name: str, n: int = 1) -> None:
        self._fault_counts[name] = self._fault_counts.get(name, 0) + n

    def _maybe_crash(self, phase: str, round_no: int = 0) -> None:
        if self._crash_phase != phase:
            return
        if phase in ("barrier", "round") and round_no != self._crash_round:
            return
        at = f"{phase} {round_no}" if round_no else phase
        print(
            f"chaos: injected crash at {at} (shard {self.shard})",
            file=sys.stderr,
            flush=True,
        )
        os._exit(_CHAOS_EXIT)

    async def run(self) -> None:
        # The peer server opens before registration: the PEERS broadcast
        # must only ever name live, dialable endpoints.
        local = self.advertise_host in ("127.0.0.1", "localhost")
        self._peer_server = await asyncio.start_server(
            self._accept_peer,
            host="127.0.0.1" if local else None,
            port=0,
        )
        port = self._peer_server.sockets[0].getsockname()[1]
        try:
            self._maybe_crash("rendezvous")
            peers = await self.client.register(
                self.shard, self.advertise_host, port, timeout=self.timeout
            )
            op, spec = await asyncio.wait_for(
                self.client.recv(), timeout=self.timeout
            )
            if op != "spec":
                raise SimulationError(f"expected the trial spec, got {op!r}")
            await self._trial(spec, peers)
        finally:
            await self._teardown()

    # -- fabric ----------------------------------------------------------

    async def _dial_peer(
        self, peer: int, host: str, port: int, *, timeout: float
    ) -> None:
        async def dial() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            return await asyncio.open_connection(host, port)

        _reader, writer = await retry_async(
            dial,
            backoff=Backoff(initial=0.05, cap=0.5),
            timeout=timeout,
            describe=f"peer dial shard {self.shard}->{peer}",
            on_retry=lambda _delay: self._count("backoff.retries"),
        )
        writer.write(wire.encode_hello(self.shard))
        await writer.drain()
        self._peer_writers[peer] = writer

    async def _connect_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        for peer in self.peers:
            self._barrier_round.setdefault(peer, -1)
            host, port = peers[peer]
            try:
                await self._dial_peer(peer, host, port, timeout=2.0)
            except (SimulationError, OSError):
                # The peer died between registering and opening for
                # business (a peering-phase crash).  Mark the link broken
                # and carry on: crash recovery rewires it via peer-update
                # once the replacement is up, and the trial cannot pass
                # its ready phase until the coordinator has dealt with
                # the death anyway.
                self._broken_links.add(peer)

    async def _rewire_peer(self, peer: int, host: str, port: int) -> None:
        """Point this worker's outbound link at a respawned peer.

        The re-announcement barrier (:data:`wire.BARRIER_SKIP_COUNT`)
        tells the replacement which rounds this shard already finished,
        so its replay never waits on barriers that predate it.
        """
        old = self._peer_writers.pop(peer, None)
        if old is not None:
            old.close()
        self._broken_links.discard(peer)
        self._cut_buffers.pop(peer, None)
        await self._dial_peer(peer, host, port, timeout=self.timeout)
        writer = self._peer_writers[peer]
        writer.write(
            wire.encode_barrier(
                self.shard, self._last_ship_round, wire.BARRIER_SKIP_COUNT
            )
        )
        await writer.drain()

    async def _accept_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._pumps.append(task)
        try:
            kind, payload = await wire.read_frame(reader)
            if kind != wire.HELLO:
                raise wire.WireError("peer link did not open with a HELLO frame")
            src_shard = wire.decode_hello(payload)
            await self._frames_ready.wait()
            while True:
                kind, payload = await wire.read_frame(reader)
                if kind == wire.SHIP:
                    try:
                        src, dst, msg, when, entry_seq, round_no = (
                            wire.decode_ship(payload)
                        )
                    except wire.WireError:
                        # An injected corruption keeps the framing intact
                        # but kills the pickle.  Count it and move on:
                        # the round's barrier count will come up short
                        # and the NAK path re-ships the message.
                        self._count("ship.corrupt_received")
                        continue
                    key = (src, dst, entry_seq)
                    if key in self._seen:
                        self._count("ship.duplicate_dropped")
                        continue
                    self._seen.add(key)
                    self._recv_counts[(src_shard, round_no)] = (
                        self._recv_counts.get((src_shard, round_no), 0) + 1
                    )
                    self._on_ship(src, dst, msg, when, entry_seq)
                    self._drain_barriers(src_shard)
                elif kind == wire.BARRIER:
                    shard, round_no, ships = wire.decode_barrier(payload)
                    if shard != src_shard:
                        raise wire.WireError(
                            f"barrier names shard {shard} on shard "
                            f"{src_shard}'s link"
                        )
                    self._on_barrier(shard, round_no, ships)
                else:
                    raise wire.WireError(
                        f"unexpected frame kind 0x{kind:02x} on a peer link"
                    )
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            return  # peer closed (or died — recovery rewires), or teardown
        except Exception as exc:  # noqa: BLE001 - surfaced at the next barrier
            self._errors.append(exc)
            self._barrier_event.set()
        finally:
            writer.close()

    def _on_barrier(self, peer: int, round_no: int, ships: int) -> None:
        if ships == wire.BARRIER_SKIP_COUNT:
            # Link re-announcement after a crash rewire: trust the round
            # outright and drop any per-round accounting it obsoletes.
            self._pending_barriers.pop(peer, None)
            for key in [
                k for k in self._recv_counts
                if k[0] == peer and k[1] <= round_no
            ]:
                del self._recv_counts[key]
            if round_no > self._barrier_round.get(peer, -1):
                self._barrier_round[peer] = round_no
            self._barrier_event.set()
            return
        if round_no <= self._barrier_round.get(peer, -1):
            # Stale: a replacement re-announcing rounds it replayed (its
            # re-ships were deduped, so the count would never be met).
            self._recv_counts.pop((peer, round_no), None)
            return
        self._pending_barriers.setdefault(peer, deque()).append(
            (round_no, ships)
        )
        self._drain_barriers(peer)

    def _drain_barriers(self, peer: int) -> None:
        """Accept pending counted barriers whose ships have all arrived;
        NAK (once) the first that has not."""
        pending = self._pending_barriers.get(peer)
        while pending:
            round_no, ships = pending[0]
            if self._recv_counts.get((peer, round_no), 0) < ships:
                if (peer, round_no) not in self._nakked:
                    self._nakked.add((peer, round_no))
                    self._count("ship.nak_sent")
                    asyncio.ensure_future(
                        self.client.send(("nak", self.shard, peer, round_no))
                    )
                return
            pending.popleft()
            self._recv_counts.pop((peer, round_no), None)
            if round_no > self._barrier_round.get(peer, -1):
                self._barrier_round[peer] = round_no
            self._barrier_event.set()

    def _on_ship(
        self, src: int, dst: int, msg: Any, when: int, entry_seq: int
    ) -> None:
        engine = self.engine
        assert engine is not None
        if self.sync == "freerun":
            # Best-effort: a late frame lands in the receiver's local
            # future instead of violating the clock.  TCP keeps each
            # link FIFO and the clamp is monotone, so per-channel
            # delivery order still holds.
            when = max(when, engine.now + 1)
        # In windowed mode the protocol guarantees `when` lies beyond the
        # current window; Scheduler.post_at's past-time check stays active
        # as a causality assertion.
        engine.schedule_remote_arrival(src, dst, msg, when, entry_seq)

    # -- outbound faults --------------------------------------------------

    def _frames_for_ship(self, ship: tuple, round_no: int) -> list[bytes]:
        """Encode one ship, applying the first matching budgeted fault."""
        src, dst, msg, when, entry_seq = ship
        frame = wire.encode_ship(src, dst, msg, when, entry_seq, round_no)
        for fault in self._ship_faults:
            if fault["left"] <= 0:
                continue
            if fault["src"] is not None and src != fault["src"]:
                continue
            if fault["dst"] is not None and dst != fault["dst"]:
                continue
            rounds = fault["rounds"]
            if rounds is not None and not rounds[0] <= round_no <= rounds[1]:
                continue
            fault["left"] -= 1
            action = fault["action"]
            self._count(f"fault.injected.{action}")
            if action == "drop":
                return []
            if action == "duplicate":
                return [frame, frame]
            return [wire.truncate_frame(frame)]
        return [frame]

    def _outbound_sink(self, peer: int, round_no: int) -> list[bytes] | None:
        """The link's cut buffer, activating a planned cut on first use."""
        plan = self._cut_plan.get(peer)
        if plan is not None and round_no >= plan[0]:
            del self._cut_plan[peer]
            buffer: list[bytes] = []
            self._cut_buffers[peer] = buffer
            self._count("fault.injected.cut")
            self._cut_tasks.append(
                asyncio.ensure_future(self._heal_cut(peer, plan[1]))
            )
            return buffer
        return self._cut_buffers.get(peer)

    async def _heal_cut(self, peer: int, seconds: float) -> None:
        await asyncio.sleep(seconds)
        # Pop before the first await below so concurrent writes go direct.
        buffer = self._cut_buffers.pop(peer, None)
        if not buffer or peer in self._broken_links:
            return
        writer = self._peer_writers.get(peer)
        if writer is None:
            return
        try:
            for frame in buffer:
                writer.write(frame)
            await writer.drain()
        except (ConnectionResetError, OSError):
            self._broken_links.add(peer)

    def _write_frames(
        self, peer: int, frames: list[bytes], round_no: int
    ) -> None:
        if not frames or peer in self._broken_links:
            return
        sink = self._outbound_sink(peer, round_no)
        if sink is not None:
            sink.extend(frames)
            return
        writer = self._peer_writers.get(peer)
        if writer is None:
            self._broken_links.add(peer)
            return
        try:
            for frame in frames:
                writer.write(frame)
        except (ConnectionResetError, OSError):
            self._broken_links.add(peer)

    async def _drain_peers(self) -> None:
        for peer, writer in list(self._peer_writers.items()):
            if peer in self._broken_links:
                continue
            try:
                await writer.drain()
            except (ConnectionResetError, OSError):
                self._broken_links.add(peer)

    async def _ship_round(self, round_no: int) -> None:
        """Ship the round's outbox, then a counted barrier per peer link.

        Every ship is logged *before* faults or link state apply — the
        log is the ground truth NAK resends and crash replay draw from,
        and the barrier count states what the log holds, not what the
        wire saw.
        """
        engine = self.engine
        assert engine is not None
        shard_of = self.partition.shard_of
        counts: dict[int, int] = {}
        for ship in engine.drain_outbox():
            peer = shard_of[ship[1]]
            self._ship_log.setdefault(peer, {}).setdefault(
                round_no, []
            ).append(ship)
            counts[peer] = counts.get(peer, 0) + 1
            self._write_frames(
                peer, self._frames_for_ship(ship, round_no), round_no
            )
        for peer in self.peers:
            self._write_frames(
                peer,
                [wire.encode_barrier(self.shard, round_no, counts.get(peer, 0))],
                round_no,
            )
        self._last_ship_round = round_no
        await self._drain_peers()

    async def _resend_round(self, dst_shard: int, round_no: int) -> None:
        """Re-ship a logged round verbatim (NAK response).  No faults
        apply — their budgets were spent on the first pass — and the
        receiver's dedup absorbs whatever did arrive the first time."""
        entries = self._ship_log.get(dst_shard, {}).get(round_no, [])
        frames = [
            wire.encode_ship(src, dst, msg, when, entry_seq, round_no)
            for src, dst, msg, when, entry_seq in entries
        ]
        if frames:
            self._count("ship.resent", len(frames))
        self._write_frames(dst_shard, frames, round_no)
        await self._drain_peers()

    async def _await_barriers(self, round_no: int) -> None:
        """Block until every in-peer has announced ``round_no``."""
        while True:
            if self._errors:
                raise SimulationError(
                    f"peer link failed: {self._errors[0]}"
                ) from self._errors[0]
            if all(r >= round_no for r in self._barrier_round.values()):
                return
            self._barrier_event.clear()
            try:
                await asyncio.wait_for(
                    self._barrier_event.wait(), timeout=self.timeout
                )
            except asyncio.TimeoutError:
                lagging = sorted(
                    peer
                    for peer, r in self._barrier_round.items()
                    if r < round_no
                )
                raise SimulationError(
                    f"shard {self.shard} waited {self.timeout:.0f}s for "
                    f"barrier {round_no} from peers {lagging}"
                ) from None

    # -- the trial -------------------------------------------------------

    def _load_faults(self, faults: dict[str, Any] | None) -> None:
        if not faults:
            return
        for dst, start, seconds in faults.get("cuts", ()):
            self._cut_plan[dst] = (start, seconds)
        for action, src, dst, rounds, count in faults.get("ships", ()):
            self._ship_faults.append(
                {
                    "action": action,
                    "src": src,
                    "dst": dst,
                    "rounds": rounds,
                    "left": count,
                }
            )
        for round_no, seconds in faults.get("stalls", ()):
            self._stalls[round_no] = self._stalls.get(round_no, 0.0) + seconds

    async def _trial(
        self, spec: dict[str, Any], peers: dict[int, tuple[str, int]]
    ) -> None:
        self.sync = spec["sync"]
        self.timeout = spec.get("timeout", self.timeout)
        self._load_faults(spec.get("faults"))
        replay = spec.get("replay")
        shards = spec["shards"]
        shard_pids = shards[self.shard]
        self.partition = Partition(topology=spec["topology"], shards=shards)
        self.peers = self.partition.peer_shards(self.shard)
        engine = AsyncSimulator(
            build=build_protocol(spec["protocol"]),
            topology=spec["topology"],
            hosts_for=shard_pids,
            transport="loopback",
            seed=spec["seed"],
            capacity=spec["capacity"],
            latency=spec["latency"],
            loss=spec["loss"],
            activation_period=spec["activation_period"],
            activation_jitter=spec["activation_jitter"],
        )
        trace = _KeyedTrace(engine.scheduler)
        engine.trace = trace
        self.engine = engine
        self._maybe_crash("peering")
        await self._connect_peers(peers)
        self._frames_ready.set()
        engine.start_actors()
        try:
            injected, proc_len, chan_len = scramble_shard(
                engine, trace, spec["scramble_seed"], spec["fill_channels"]
            )
            driver_cfg = spec["driver"]
            driver: RequestDriver | None = None
            if driver_cfg is not None:
                cfg = dict(driver_cfg)
                fmt = cfg.pop("payload_fmt", None)
                if fmt is not None:
                    cfg["payload"] = payload_from_fmt(fmt)
                driver = RequestDriver(engine, pids=shard_pids, **cfg)
            clock = engine.scheduler
            round_no = 0
            if replay is not None:
                # Crash-recovery replay: the first incarnation's
                # cross-shard inputs arrive via the spec (the survivors'
                # ship logs), not the wire — its own dead sockets took
                # the live copies with it.  Seed the dedup set so any
                # frames that *do* straggle in are dropped, inject the
                # logged ships, then re-execute the same advance targets.
                # Determinism (per-entity RNG streams, canonical
                # scheduler keys, sender-computed delivery times) makes
                # the re-execution — including its outbound ships —
                # byte-identical to the lost one.
                for _rnd, ship in replay["ships"]:
                    src, dst, msg, when, entry_seq = ship
                    key = (src, dst, entry_seq)
                    if key in self._seen:
                        continue
                    self._seen.add(key)
                    engine.schedule_remote_arrival(src, dst, msg, when, entry_seq)
                await self._ship_round(0)
                for target in replay["targets"]:
                    round_no += 1
                    if self.sync == "windowed":
                        await self._await_barriers(round_no - 1)
                    await clock.drive(target, engine._route)
                    engine._raise_net_errors()
                    await self._ship_round(round_no)
                done_at = driver.done_at if driver is not None else 0
                await self.client.send(("ready", injected, done_at))
            else:
                # Round 0: the scramble's cross-shard injections ship
                # before the coordinator ever advances anyone — by the
                # time a peer passes its round-0 barrier wait, these are
                # in its heap.
                await self._ship_round(0)
                await self.client.send(("ready", injected))
            obs: ObsRecorder | None = None
            if spec.get("obs"):
                # Coordinator lane is pid 0; worker lanes follow shard order.
                obs = ObsRecorder(
                    pid=self.shard + 1, name=f"shard{self.shard}"
                )
            while True:
                message = await asyncio.wait_for(
                    self.client.recv(), timeout=self.timeout
                )
                op = message[0]
                if op == "adv":
                    _, target = message
                    round_no += 1
                    self._maybe_crash("barrier", round_no)
                    if self.sync == "windowed":
                        if obs is not None:
                            w0 = wall()
                            await self._await_barriers(round_no - 1)
                            w1 = wall()
                            obs.spans.record(
                                "barrier_wait", "round", w0, w1,
                                args={"round": round_no - 1},
                            )
                            obs.metrics.observe(
                                "sync.barrier_wait_s", w1 - w0
                            )
                        else:
                            await self._await_barriers(round_no - 1)
                    w0 = wall() if obs is not None else 0.0
                    t0 = time.perf_counter()
                    await clock.drive(target, engine._route)
                    compute_s = time.perf_counter() - t0
                    if obs is not None:
                        obs.record_round(
                            "compute", w0, wall(),
                            round=round_no, target=target,
                        )
                    engine._raise_net_errors()
                    if self._errors:
                        raise SimulationError(
                            f"peer link failed: {self._errors[0]}"
                        ) from self._errors[0]
                    self._maybe_crash("round", round_no)
                    await self._ship_round(round_no)
                    stall = self._stalls.pop(round_no, None)
                    if stall:
                        self._count("fault.injected.stall")
                        await asyncio.sleep(stall)
                    done_at = driver.done_at if driver is not None else 0
                    await self.client.send(("adv-ok", done_at, compute_s))
                elif op == "resend":
                    _, nak_from, nak_round = message
                    await self._resend_round(nak_from, nak_round)
                elif op == "peer-update":
                    _, peer, host, port = message
                    await self._rewire_peer(peer, host, port)
                    await self.client.send(("peer-ok",))
                elif op == "ship-log":
                    _, target_shard = message
                    log = self._ship_log.get(target_shard, {})
                    entries = [
                        (rnd, ship)
                        for rnd in sorted(log)
                        for ship in log[rnd]
                    ]
                    await self.client.send(("ship-log", entries))
                elif op == "result":
                    if self.client.dial_retries:
                        self._count("backoff.retries", self.client.dial_retries)
                    if obs is not None:
                        # Fresh interpreter: absolute wire counts are this
                        # trial's (no baseline needed).
                        obs.collect_wire()
                        for name, n in self._fault_counts.items():
                            obs.metrics.inc(name, n)
                    tag = driver_cfg["tag"] if driver_cfg else None
                    payload = shard_result_payload(
                        engine, trace, proc_len, chan_len,
                        shard_pids, driver, tag, obs=obs,
                    )
                    if self._fault_counts:
                        payload["fault_counts"] = dict(self._fault_counts)
                    await self.client.send(("result", payload))
                elif op == "stop":
                    return
                else:
                    raise SimulationError(
                        f"unknown coordinator op {op!r}"
                    )
        finally:
            await engine._teardown()

    async def _teardown(self) -> None:
        for task in self._cut_tasks:
            task.cancel()
        if self._cut_tasks:
            await asyncio.gather(*self._cut_tasks, return_exceptions=True)
        for writer in self._peer_writers.values():
            writer.close()
        for pump in self._pumps:
            pump.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps, return_exceptions=True)
        if self._peer_server is not None:
            self._peer_server.close()
            await self._peer_server.wait_closed()
        self.client.close()


async def _worker_async(
    shard: int,
    registry_host: str,
    registry_port: int,
    advertise_host: str,
    chaos: str | None,
) -> int:
    worker = _ClusterWorker(
        shard, registry_host, registry_port, advertise_host, chaos
    )
    try:
        await worker.run()
        return 0
    except Exception:  # noqa: BLE001 - forwarded to the coordinator
        import traceback

        tb = traceback.format_exc()
        try:
            await worker.client.send(("error", tb))
        except Exception:  # noqa: BLE001 - coordinator may be gone
            print(tb, file=sys.stderr)
        return 1


def run_cluster_worker(
    registry: str,
    shard: int,
    advertise_host: str = "127.0.0.1",
    chaos: str | None = None,
) -> int:
    """Entry point of ``repro cluster-worker``: serve one shard.

    ``registry`` is the coordinator's rendezvous address (``host:port``);
    ``advertise_host`` is the address *peers* should dial this worker on —
    set it to this machine's reachable address when launching on a remote
    host.  ``chaos`` is an injected crash-fault token (``phase`` or
    ``phase:round``) the coordinator threads through argv.  Returns a
    process exit code.
    """
    host, port = parse_hostport(registry)
    if shard < 0:
        raise SimulationError(f"shard must be >= 0, got {shard}")
    return asyncio.run(_worker_async(shard, host, port, advertise_host, chaos))
