"""The asyncio runtime: protocol layers, unmodified, over real transports.

:class:`AsyncSimulator` runs the same build/scramble/drive trial shape as
the serial and sharded engines, but executes it on an asyncio event loop:

* **each process is a coroutine** (:class:`ProcessActor`) — every event a
  process owns (its activations, its timers, the dispatch of messages
  addressed to it) executes inside that process's coroutine, fed through
  its inbox queue;
* **each channel is a transport** (:mod:`repro.net.transport`) — loopback
  asyncio queues or real localhost TCP sockets carrying the
  length-prefixed wire format of :mod:`repro.net.wire`;
* **specs run online** — the engine's trace is a
  :class:`~repro.net.monitors.LiveTrace`; attached monitor automata advance
  at every emission.

Protocol layers need no changes: :class:`~repro.sim.process.ProcessHost`
is reused as the adapter between the layers' guarded-action /
``on_message`` / timer API and the coroutine world — the host's sends,
timers and busy windows land on the engine exactly as they do on the
serial simulator, and the engine turns them into transport traffic and
clock events.

The medium itself comes from the transport registry
(:mod:`repro.net.transport`): the engine reads the resolved
:class:`~repro.net.transport.TransportKind`'s declared flags — never a
transport name — to pick its clock, build per-channel transports and
start/stop the trial-scoped fabric.  Under a deterministic, unpaced
medium (``loopback``) the engine is driven by a
:class:`~repro.net.clock.VirtualClock` and inherits the serial engine's
entire decision surface — per-entity RNG streams, canonical event keys,
sender-owned channel accounting (:mod:`repro.sim.determinism`).  The drive
loop awaits each routed event before popping the next, so the execution
order is the serial order and a loopback run is **bit-identical** to
``engine=serial`` for the same seed (asserted by ``tests/test_net.py`` and
the ``async-equivalence`` CI gate).  On a wall-clock-paced medium (``tcp``,
``udp``) timing is best-effort — socket scheduling is not reproducible —
and the online monitors carry the correctness claim instead.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Coroutine, Sequence

from repro.chaos.plan import FaultPlan
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import SimulationError
from repro.net import wire
from repro.net.clock import PacedClock, VirtualClock
from repro.net.monitors import LiveTrace, MonitorReport, OnlineMonitor
from repro.net.transport import Transport, resolve_transport, transport_names
from repro.sim.adversary import scramble_system
from repro.sim.channel import ChannelBase
from repro.sim.determinism import key_owner
from repro.sim.runtime import BuildFn, Simulator
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace
from repro.types import RequestState

__all__ = ["AsyncSimulator", "NetRunResult", "ProcessActor", "TRANSPORTS"]

#: Registered transport names (importing repro.net.transport registered
#: the built-in media).  Kept as a module attribute for backward compat;
#: new media registered later naturally appear via transport_names().
TRANSPORTS = transport_names()

#: Default wall-clock tick length for the paced transports: 1 ms, so the
#: default (1, 3)-tick latency band emulates a 1-3 ms link — an order of
#: magnitude above localhost socket jitter, keeping tick timestamps meaningful.
DEFAULT_TICK_SECONDS = 0.001


@dataclass
class NetRunResult:
    """Everything a trial needs back from an async run."""

    trace: Trace
    stats: Any
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    #: Tick at which the request driver went idle (None if it never did).
    done_at: int | None
    final_time: int
    transport: str
    monitor_reports: list[MonitorReport] = field(default_factory=list)

    @property
    def monitors_ok(self) -> bool:
        return all(r.ok for r in self.monitor_reports)


class ProcessActor:
    """One process as a coroutine: executes every event its pid owns.

    The inbox is an asyncio queue of ``(callback, future)`` pairs.  Clock-
    routed events carry a future the drive loop awaits (sequential, which
    is what preserves determinism under the virtual clock); transport
    arrivals over tcp are fire-and-forget (``future=None``) — their
    failures are reported to the engine's error sink instead of a waiter.
    """

    __slots__ = ("pid", "inbox", "task", "_error_sink")

    def __init__(self, pid: int, error_sink: list[BaseException]) -> None:
        self.pid = pid
        self.inbox: asyncio.Queue[
            tuple[Callable[[], None] | None, asyncio.Future | None]
        ] = asyncio.Queue()
        self.task: asyncio.Task | None = None
        self._error_sink = error_sink

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"proc-{self.pid}"
        )

    async def _run(self) -> None:
        while True:
            fn, fut = await self.inbox.get()
            if fn is None:
                if fut is not None:
                    fut.set_result(None)
                return
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiter/sink
                if fut is not None and not fut.cancelled():
                    fut.set_exception(exc)
                else:
                    self._error_sink.append(exc)
            else:
                if fut is not None and not fut.cancelled():
                    fut.set_result(None)

    async def execute(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` inside this process's coroutine and await completion."""
        fut = asyncio.get_running_loop().create_future()
        self.inbox.put_nowait((fn, fut))
        await fut

    def post(self, fn: Callable[[], None]) -> None:
        """Queue ``fn`` without waiting (transport arrival path)."""
        self.inbox.put_nowait((fn, None))

    async def stop(self) -> None:
        fut = asyncio.get_running_loop().create_future()
        self.inbox.put_nowait((None, fut))
        await fut
        if self.task is not None:
            await self.task


class AsyncSimulator(Simulator):
    """Asyncio-driven runtime behind the ``engine=async`` axis.

    Constructor arguments mirror :class:`~repro.sim.runtime.Simulator`;
    ``transport`` names a registered channel medium (:data:`TRANSPORTS`)
    and ``tick`` the wall-clock tick length for the paced media.
    ``monitors`` attach online spec automata to the live trace.
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        build: BuildFn = lambda host: None,
        *,
        transport: str = "loopback",
        tick: float = DEFAULT_TICK_SECONDS,
        monitors: Sequence[OnlineMonitor] | None = None,
        fault_plan: "FaultPlan | str | None" = None,
        **sim_kwargs: Any,
    ) -> None:
        self._kind = resolve_transport(transport)
        if "auto" in sim_kwargs:
            raise SimulationError(
                "'auto' is not configurable on the async engine"
            )
        # ``hosts_for`` *is* allowed: a cluster worker (repro.net.cluster)
        # hosts one shard's slice of the system on this engine — sends to
        # non-hosted pids fall through to the base engine's cross-shard
        # outbox, which the worker ships over the socket fabric.
        self.transport = transport
        self.tick = tick
        # Read by _make_scheduler/_make_trace during super().__init__.
        self._transports: dict[tuple[int, int], Transport] = {}
        self._actors: dict[int, ProcessActor] = {}
        self._net_errors: list[BaseException] = []
        self._tasks: set[asyncio.Task] = set()
        self._fabric: Any | None = None
        self._fabric_obs: dict[str, int] = {}
        self._consumed = False
        # Passive obs counters (harvested by collect_obs): actor handoffs
        # the router paid vs elided via the empty-inbox fast path.
        self._handoffs_taken = 0
        self._handoffs_elided = 0
        # Chaos fault injection (repro.chaos): only pid-keyed ship faults
        # apply here — they rewrite MESSAGE frames at the frame boundary of
        # a framed transport.  Crash/cut/stall faults need the cluster
        # runtime.
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        if fault_plan is not None:
            fault_plan.validate_for_async(transport)
        self._plan = fault_plan
        self._faults_active = bool(fault_plan)
        self._ship_faults: list[dict[str, Any]] = [
            {"action": f.action, "src": f.src, "dst": f.dst, "left": f.count}
            for f in (fault_plan.ship_faults() if fault_plan else [])
        ]
        self.fault_counts: dict[str, int] = {}
        super().__init__(pids, build, **sim_kwargs)
        self.monitors: list[OnlineMonitor] = list(monitors or ())
        for monitor in self.monitors:
            self.trace.attach(monitor)

    # -- engine extension points (see Simulator) ---------------------------

    def _make_scheduler(self) -> Scheduler:
        if self._kind.paced:
            return PacedClock(self.tick)
        return VirtualClock()

    def _make_trace(self) -> LiveTrace:
        return LiveTrace()

    def attach_monitor(self, monitor: OnlineMonitor) -> None:
        self.monitors.append(monitor)
        self.trace.attach(monitor)

    # -- transport plumbing ------------------------------------------------

    def _schedule_delivery(self, channel: ChannelBase, entry) -> None:
        pair = (channel.src, channel.dst)
        transport = self._transports.get(pair)
        if transport is None:
            transport = self._kind.channel_factory(self, channel)
            self._transports[pair] = transport
        transport.send(entry)

    def require_fabric(self) -> Any:
        """The trial-scoped medium (sockets/endpoints); channel factories
        of fabric-backed transports call this at first send."""
        if self._fabric is None:
            raise SimulationError(
                f"{self.transport} transport used outside run_trial "
                "(no socket fabric)"
            )
        return self._fabric

    def _spawn(self, coro: Coroutine, *, name: str) -> asyncio.Task:
        """Track a transport I/O task; its failure fails the trial."""
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._task_done)
        return task

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self._net_errors.append(exc)

    def _net_error(self, exc: BaseException) -> None:
        self._net_errors.append(exc)

    # -- chaos fault injection (repro.chaos) -------------------------------

    def _count_fault(self, name: str) -> None:
        self.fault_counts[name] = self.fault_counts.get(name, 0) + 1

    def _fault_frames(self, src: int, dst: int, frame: bytes) -> list[bytes]:
        """Apply the first matching budgeted ship fault to one encoded
        MESSAGE frame; the identity list when no fault (or no plan)
        matches."""
        for fault in self._ship_faults:
            if fault["left"] <= 0:
                continue
            if fault["src"] is not None and src != fault["src"]:
                continue
            if fault["dst"] is not None and dst != fault["dst"]:
                continue
            fault["left"] -= 1
            action = fault["action"]
            self._count_fault(f"fault.injected.{action}")
            if action == "drop":
                return []
            if action == "duplicate":
                return [frame, frame]
            return [wire.truncate_frame(frame)]
        return [frame]

    def _socket_arrival(self, src: int, dst: int, msg, entry_seq: int) -> None:
        """A frame arrived for ``dst``: dispatch inside its coroutine."""
        self.scheduler.touch()  # arrival timestamps/busy checks read wall time
        actor = self._actors[dst]
        actor.post(lambda: self._dispatch_arrival(src, dst, msg, entry_seq))

    def start_actors(self) -> None:
        """Spawn one :class:`ProcessActor` per hosted pid (needs a running
        event loop).  ``run_trial`` does this itself; external drivers —
        the cluster worker loop, which owns its own advance protocol —
        call it before the first ``drive`` and :meth:`_teardown` after
        the last."""
        self._actors = {
            pid: ProcessActor(pid, self._net_errors) for pid in self.hosts
        }
        for actor in self._actors.values():
            actor.start()

    async def _route(self, key: int, fn: Callable[[], None]) -> None:
        """Execute one clock event (or batched run) at its owner.

        Events whose canonical key names no process (drivers, harness
        posts) run inline.  Owned events run inline too when the owner's
        inbox is empty: callbacks are synchronous, so the actor coroutine
        is never mid-item while the drive loop runs, and an empty inbox
        means the actor's serialization guarantee holds vacuously — the
        handoff future round-trip (two event-loop hops per run) would buy
        nothing.  Only contended events — a tcp frame arrival already
        queued at the owner — pay the actor queue, which is exactly when
        the serialization matters.  Loopback transports never post to
        inboxes, so under the virtual clock this fast path, together with
        the clock's same-owner run batching, is what closes the
        loopback-vs-serial hot-path gap.
        """
        actor = self._actors.get(key_owner(key))
        if actor is None or not actor.inbox.qsize():
            self._handoffs_elided += 1
            fn()
        else:
            self._handoffs_taken += 1
            await actor.execute(fn)

    def _raise_net_errors(self) -> None:
        if self._net_errors:
            first = self._net_errors[0]
            raise SimulationError(
                f"{len(self._net_errors)} transport failure(s); first: "
                f"{type(first).__name__}: {first}"
            ) from first

    # -- the trial loop ----------------------------------------------------

    def run_trial(
        self,
        *,
        horizon: int,
        scramble_seed: int | None = None,
        fill_channels: bool = True,
        driver: dict[str, Any] | None = None,
        drain: int = 200,
    ) -> NetRunResult:
        """Scramble, serve the request driver, drain — on the event loop.

        Matches the serial trial shape tick for tick: run until the driver
        is done (or ``horizon``), then run ``drain`` more ticks.  Must be
        called from synchronous code (it owns the event loop for the run).

        Single-use: teardown closes the transports (and, over tcp, the
        socket fabric), so a second call on the same engine would send
        into dead channels — build a fresh engine per trial.
        """
        if self._consumed:
            raise SimulationError(
                "AsyncSimulator.run_trial is single-use (transports are torn "
                "down at trial end); build a new engine per trial"
            )
        self._consumed = True
        return asyncio.run(
            self._run_trial(horizon, scramble_seed, fill_channels, driver, drain)
        )

    async def _run_trial(
        self,
        horizon: int,
        scramble_seed: int | None,
        fill_channels: bool,
        driver: dict[str, Any] | None,
        drain: int,
    ) -> NetRunResult:
        self.start_actors()
        clock = self.scheduler
        try:
            if self._kind.fabric_factory is not None:
                self._fabric = self._kind.fabric_factory(self)
                await self._fabric.start()
            if self._kind.paced:
                assert isinstance(clock, PacedClock)
                clock.start()  # tick 0 excludes fabric setup
            if scramble_seed is not None:
                scramble_system(self, scramble_seed, fill_channels=fill_channels)
            drv = RequestDriver(self, **driver) if driver is not None else None
            # The stop predicate also watches the transport error sink, so a
            # dead pump/writer fails the trial at the next event instead of
            # silently idling out the (wall-clock-paced, over tcp) horizon.
            # Loopback never populates the sink mid-run, so the extra term
            # cannot perturb bit-identity with the serial engine.
            errors = self._net_errors
            if drv is not None:
                stop = lambda: drv.done or bool(errors)  # noqa: E731
            else:
                stop = lambda: bool(errors)  # noqa: E731
            completed = await clock.drive(horizon, self._route, stop=stop)
            self._raise_net_errors()
            completed = completed and (drv is None or drv.done)
            done_at = self.now if completed else None
            await clock.drive(self.now + drain, self._route)
            self._raise_net_errors()
            tag = driver["tag"] if driver is not None else None
            finals = (
                {pid: self.layer(pid, tag).request for pid in self.pids}
                if tag is not None
                else {}
            )
            return NetRunResult(
                trace=self.trace,
                stats=self.stats,
                finals=finals,
                completions=drv.completed() if drv is not None else [],
                completed=completed,
                done_at=done_at,
                final_time=self.now,
                transport=self.transport,
                monitor_reports=[m.report() for m in self.monitors],
            )
        finally:
            await self._teardown()

    def collect_obs(self, metrics) -> None:
        """Serial-engine counters plus the async engine's own: actor
        handoffs and per-transport traffic (see :mod:`repro.obs`)."""
        super().collect_obs(metrics)
        metrics.inc("actor.handoffs_taken", self._handoffs_taken)
        metrics.inc("actor.handoffs_elided", self._handoffs_elided)
        metrics.inc("clock.runs", getattr(self.scheduler, "runs", 0))
        for name, value in sorted(self.fault_counts.items()):
            metrics.inc(name, value)
        frames = sum(
            transport.frames_sent for transport in self._transports.values()
        )
        metrics.inc("transport.channel_frames", frames)
        for name, value in sorted(self._fabric_obs.items()):
            metrics.inc(name, value)

    async def _teardown(self) -> None:
        for transport in self._transports.values():
            transport.close()
        for actor in self._actors.values():
            try:
                await asyncio.wait_for(actor.stop(), timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                if actor.task is not None:
                    actor.task.cancel()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._fabric is not None:
            # Harvest the medium's own counters before the sockets go away
            # (collect_obs runs after run_trial, when the fabric is gone).
            stats = getattr(self._fabric, "obs_stats", None)
            if stats is not None:
                self._fabric_obs = stats()
            await self._fabric.close()
            self._fabric = None
