"""Rendezvous / port-registry service for the multi-host runtime.

The single-interpreter tcp fabric (:class:`repro.net.transport.TcpFabric`)
could wire its mesh directly — every endpoint lived in one process that
knew every port.  Across OS processes (and machines) nobody knows anyone's
port up front, so the HELLO handshake generalizes into a small rendezvous
service:

1. The coordinator opens a :class:`RegistryServer` on a well-known
   address (an ephemeral localhost port when it spawns the workers itself;
   a ``--cluster-listen host:port`` address for hand-launched remote
   workers).
2. Each worker opens its *peer server* first (the socket other shards
   will ship cross-shard messages to), then connects to the registry and
   sends one ``REGISTER (shard_id, host, port)`` frame.
3. When every expected shard has registered, the registry answers each
   worker with a ``PEERS`` frame carrying the full ``{shard: (host,
   port)}`` map.  Workers then dial their peer shards directly (a
   ``HELLO`` frame identifying the source shard opens each directed
   link); the registry connection stays open as the coordinator's
   control channel (pickled ``CONTROL`` frames — spec, advance rounds,
   results).

The registration exchange is counted (:attr:`RegistryServer.round_trips`)
and reported in trial provenance.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.chaos.backoff import Backoff, retry_async
from repro.errors import SimulationError
from repro.net import wire

__all__ = ["RegistryServer", "RegistryClient", "read_control", "send_control"]


async def read_control(reader: asyncio.StreamReader) -> Any:
    """Read one CONTROL frame (large frame bound — results carry traces)."""
    kind, payload = await wire.read_frame(
        reader, max_frame=wire.CONTROL_MAX_FRAME
    )
    if kind != wire.CONTROL:
        raise wire.WireError(
            f"expected a CONTROL frame on the registry channel, got 0x{kind:02x}"
        )
    return wire.decode_control(payload)


async def send_control(writer: asyncio.StreamWriter, message: Any) -> None:
    writer.write(wire.encode_control(message))
    await writer.drain()


class _WorkerHandle:
    """The coordinator's end of one registered worker's control channel."""

    __slots__ = ("shard", "host", "port", "reader", "writer")

    def __init__(
        self,
        shard: int,
        host: str,
        port: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.shard = shard
        self.host = host
        self.port = port
        self.reader = reader
        self.writer = writer

    async def send(self, message: Any) -> None:
        await send_control(self.writer, message)

    async def recv(self) -> Any:
        return await read_control(self.reader)

    def close(self) -> None:
        self.writer.close()


class RegistryServer:
    """Coordinator-side rendezvous: collect registrations, broadcast peers.

    ``expected`` is the shard count; :meth:`rendezvous` resolves once every
    shard 0..expected-1 has registered, returning the worker handles in
    shard order with the PEERS map already delivered.
    """

    def __init__(
        self, expected: int, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.expected = expected
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        #: REGISTER/PEERS exchanges served (one per worker on a clean run;
        #: rejected duplicates count too — they cost a round trip).
        self.round_trips = 0
        #: Wall seconds :meth:`rendezvous` spent from wait to PEERS
        #: broadcast complete (repro.obs provenance).
        self.rendezvous_wall_s = 0.0
        self._server: asyncio.Server | None = None
        self._handles: dict[int, _WorkerHandle] = {}
        self._complete: asyncio.Event = asyncio.Event()
        self._error: BaseException | None = None
        self._rejoin_shard: int | None = None
        self._rejoin_future: asyncio.Future[_WorkerHandle] | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            kind, payload = await wire.read_frame(reader)
            if kind != wire.REGISTER:
                raise wire.WireError(
                    f"registry connection did not open with REGISTER "
                    f"(got 0x{kind:02x})"
                )
            shard, host, port = wire.decode_register(payload)
            self.round_trips += 1
            if not 0 <= shard < self.expected:
                raise wire.WireError(
                    f"shard {shard} out of range 0..{self.expected - 1}"
                )
            if shard in self._handles and not self._rejoin_expected(shard):
                raise wire.WireError(f"shard {shard} registered twice")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            writer.close()
            return
        except wire.WireError as exc:
            # A malformed registration fails the whole rendezvous loudly:
            # a worker that cannot register can never reach its barrier,
            # and a silent drop would hang the run until the timeout.
            if self._rejoin_future is not None and not self._rejoin_future.done():
                self._rejoin_future.set_exception(exc)
            else:
                self._error = exc
                self._complete.set()
            writer.close()
            return
        handle = _WorkerHandle(shard, host, port, reader, writer)
        if self._rejoin_expected(shard):
            # A replacement worker re-registering after crash recovery:
            # answer its PEERS frame right away (the rendezvous broadcast
            # already happened) and hand it to the awaiting coordinator.
            old = self._handles.pop(shard, None)
            if old is not None:
                old.close()
            self._handles[shard] = handle
            writer.write(wire.encode_peers(self._peer_map()))
            await writer.drain()
            self.round_trips += 1
            assert self._rejoin_future is not None
            self._rejoin_future.set_result(handle)
            return
        self._handles[shard] = handle
        if len(self._handles) == self.expected:
            self._complete.set()

    def _rejoin_expected(self, shard: int) -> bool:
        return (
            self._rejoin_shard == shard
            and self._rejoin_future is not None
            and not self._rejoin_future.done()
        )

    def _peer_map(self) -> dict[int, tuple[str, int]]:
        return {
            shard: (handle.host, handle.port)
            for shard, handle in self._handles.items()
        }

    def expect_rejoin(self, shard: int) -> None:
        """Arm a one-shot re-registration slot for ``shard`` (crash
        recovery respawns it); without this, a duplicate REGISTER is an
        error.  Await the replacement's handle with :meth:`rejoin`."""
        if not self._complete.is_set():
            raise SimulationError(
                "expect_rejoin before the initial rendezvous completed"
            )
        self._rejoin_shard = shard
        self._rejoin_future = asyncio.get_running_loop().create_future()

    async def rejoin(self, timeout: float) -> _WorkerHandle:
        """Wait for the re-registration armed by :meth:`expect_rejoin`."""
        if self._rejoin_future is None:
            raise SimulationError("rejoin without expect_rejoin")
        try:
            handle = await asyncio.wait_for(
                asyncio.shield(self._rejoin_future), timeout=timeout
            )
        except asyncio.TimeoutError:
            raise SimulationError(
                f"shard {self._rejoin_shard} did not re-register within "
                f"{timeout:.0f}s of its respawn"
            ) from None
        finally:
            if self._rejoin_future.done():
                self._rejoin_shard = None
                self._rejoin_future = None
        return handle

    async def rendezvous(self, timeout: float) -> list[_WorkerHandle]:
        """Wait for every shard, then broadcast the PEERS map.

        Returns the handles in shard order.  Raises on duplicate or
        malformed registrations and on timeout.
        """
        started = asyncio.get_running_loop().time()
        try:
            await asyncio.wait_for(self._complete.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            missing = sorted(set(range(self.expected)) - set(self._handles))
            raise SimulationError(
                f"registry rendezvous timed out after {timeout:.0f}s; "
                f"missing shards {missing} (expected {self.expected})"
            ) from None
        if self._error is not None:
            raise SimulationError(
                f"registry rendezvous failed: {self._error}"
            ) from self._error
        peers = {
            shard: (handle.host, handle.port)
            for shard, handle in self._handles.items()
        }
        frame = wire.encode_peers(peers)
        for shard in sorted(self._handles):
            handle = self._handles[shard]
            handle.writer.write(frame)
            await handle.writer.drain()
            self.round_trips += 1
        self.rendezvous_wall_s = asyncio.get_running_loop().time() - started
        return [self._handles[shard] for shard in sorted(self._handles)]

    async def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class RegistryClient:
    """Worker-side rendezvous: register, learn the peer map, keep the
    connection as the coordinator control channel."""

    def __init__(self, registry_host: str, registry_port: int) -> None:
        self.registry_host = registry_host
        self.registry_port = registry_port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.peers: dict[int, tuple[str, int]] = {}
        #: Dial attempts that had to back off and retry (repro.obs).
        self.dial_retries = 0

    def _count_retry(self, _delay: float) -> None:
        self.dial_retries += 1

    async def register(
        self,
        shard: int,
        advertise_host: str,
        port: int,
        *,
        timeout: float = 30.0,
        backoff: Backoff = Backoff(),
    ) -> dict[int, tuple[str, int]]:
        """Connect (with exponential-backoff retries — the coordinator may
        still be binding), send REGISTER, await the PEERS broadcast."""

        async def dial() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            return await asyncio.open_connection(
                self.registry_host, self.registry_port
            )

        self.reader, self.writer = await retry_async(
            dial,
            backoff=backoff,
            timeout=timeout,
            describe=(
                f"registry dial to {self.registry_host}:{self.registry_port}"
            ),
            on_retry=self._count_retry,
        )
        self.writer.write(wire.encode_register(shard, advertise_host, port))
        await self.writer.drain()
        kind, payload = await asyncio.wait_for(
            wire.read_frame(self.reader), timeout=timeout
        )
        if kind != wire.PEERS:
            raise wire.WireError(
                f"expected a PEERS frame after registering, got 0x{kind:02x}"
            )
        self.peers = wire.decode_peers(payload)
        return self.peers

    async def recv(self) -> Any:
        assert self.reader is not None
        return await read_control(self.reader)

    async def send(self, message: Any) -> None:
        assert self.writer is not None
        await send_control(self.writer, message)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
