"""Length-prefixed wire format for the socket transport.

Every frame on a channel connection is::

    +--------+--------+----------------+-----------------+
    | kind   | version| length (be32)  | payload bytes   |
    | 1 byte | 1 byte | 4 bytes        | `length` bytes  |
    +--------+--------+----------------+-----------------+

Two frame kinds:

* ``HELLO`` — sent once by the connecting side right after ``connect``;
  the payload identifies the *directed* channel (source pid), so the
  accepting process can route every later frame of the connection.
* ``MESSAGE`` — one in-flight protocol message.  The payload carries the
  channel admission sequence number (the canonical delivery rank — see
  :func:`repro.sim.determinism.delivery_key`) and the message object.

Message objects are serialized with :mod:`pickle`.  The transport only
ever connects process coroutines of the *same* trial on the loopback
interface — both endpoints are spawned by one :class:`AsyncSimulator` —
so the classic pickle trust caveat does not extend the threat model; do
not point this wire format at untrusted peers.
"""

from __future__ import annotations

import asyncio
import pickle
import struct

from repro.errors import SimulationError

__all__ = [
    "PROTOCOL_VERSION",
    "HELLO",
    "MESSAGE",
    "WireError",
    "pack_frame",
    "read_frame",
    "encode_hello",
    "decode_hello",
    "encode_message",
    "decode_message",
]

#: Bump on any incompatible frame-layout change.
PROTOCOL_VERSION = 1

HELLO = 0x01
MESSAGE = 0x02

_HEADER = struct.Struct(">BBI")
#: Sanity bound on a single frame (a protocol message is a few hundred
#: bytes; anything near this is a corrupt or hostile length prefix).
MAX_FRAME = 1 << 20


class WireError(SimulationError):
    """A malformed or incompatible frame arrived on a channel connection."""


def pack_frame(kind: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(kind, PROTOCOL_VERSION, len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame; raises ``IncompleteReadError`` on clean EOF mid-frame.

    Returns ``(kind, payload)``.  EOF exactly on a frame boundary raises
    ``IncompleteReadError`` with an empty partial read — callers treat that
    as connection shutdown.
    """
    header = await reader.readexactly(_HEADER.size)
    kind, version, length = _HEADER.unpack(header)
    if version != PROTOCOL_VERSION:
        raise WireError(f"peer speaks wire version {version}, expected {PROTOCOL_VERSION}")
    if kind not in (HELLO, MESSAGE):
        raise WireError(f"unknown frame kind 0x{kind:02x}")
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME}")
    payload = await reader.readexactly(length) if length else b""
    return kind, payload


def encode_hello(src: int) -> bytes:
    return pack_frame(HELLO, struct.Struct(">q").pack(src))


def decode_hello(payload: bytes) -> int:
    if len(payload) != 8:
        raise WireError(f"hello payload of {len(payload)} bytes, expected 8")
    return struct.Struct(">q").unpack(payload)[0]


def encode_message(seq: int, msg: object) -> bytes:
    return pack_frame(MESSAGE, pickle.dumps((seq, msg), protocol=pickle.HIGHEST_PROTOCOL))


def decode_message(payload: bytes) -> tuple[int, object]:
    try:
        seq, msg = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalized for callers
        raise WireError(f"undecodable message frame: {exc}") from exc
    return seq, msg
