"""Length-prefixed wire format for the socket transports.

Every frame on a connection is::

    +--------+--------+----------------+-----------------+
    | kind   | version| length (be32)  | payload bytes   |
    | 1 byte | 1 byte | 4 bytes        | `length` bytes  |
    +--------+--------+----------------+-----------------+

Frame kinds:

* ``HELLO`` — sent once by the connecting side right after ``connect``;
  the payload identifies the *directed* channel (source pid, or source
  shard on a cluster peer link), so the accepting side can route every
  later frame of the connection.
* ``MESSAGE`` — one in-flight protocol message on a single-interpreter
  tcp channel.  The payload carries the channel admission sequence number
  (the canonical delivery rank — see
  :func:`repro.sim.determinism.delivery_key`) and the message object.
* ``REGISTER`` / ``PEERS`` — the rendezvous handshake of the multi-host
  runtime (:mod:`repro.net.registry`): a worker announces
  ``(shard_id, host, port)``, the coordinator answers with the full peer
  map once every expected worker has registered.
* ``SHIP`` — one cross-shard message on a cluster peer link, carrying the
  *sender-computed* delivery time, channel entry seq (the conservative
  window protocol of :mod:`repro.sim.sharded`, over sockets), and the
  sender's barrier round (so receivers can account ships per round and
  crash recovery can replay them).
* ``BARRIER`` — a shard announces it finished advance round ``round`` and
  how many SHIP frames it sent that round on this link; per-connection
  FIFO means every SHIP of that round precedes it, so a count mismatch at
  the receiver is proof of an injected (or real) frame fault and triggers
  the NAK/resend path of :mod:`repro.net.cluster`.  A count of
  :data:`BARRIER_SKIP_COUNT` re-announces a round without a count check
  (crash-recovery rewiring).
* ``CONTROL`` — a pickled coordinator<->worker control message
  (spec/ready/adv/adv-ok/result/stop) on the registry connection.  Result
  payloads carry whole shard traces, so control channels read frames with
  the larger :data:`CONTROL_MAX_FRAME` bound.

Message objects are serialized with :mod:`pickle`.  The transports only
ever connect endpoints of the *same* trial — every worker is launched by
(or pointed at) one coordinator — so the classic pickle trust caveat does
not extend the threat model; do not point this wire format at untrusted
peers.
"""

from __future__ import annotations

import asyncio
import pickle
import struct

from repro.errors import SimulationError

__all__ = [
    "PROTOCOL_VERSION",
    "BARRIER_SKIP_COUNT",
    "HELLO",
    "MESSAGE",
    "BARRIER",
    "SHIP",
    "REGISTER",
    "PEERS",
    "CONTROL",
    "KINDS",
    "KIND_NAMES",
    "MAX_FRAME",
    "CONTROL_MAX_FRAME",
    "STATS",
    "WireError",
    "WireStats",
    "pack_frame",
    "read_frame",
    "split_frame",
    "encode_hello",
    "decode_hello",
    "encode_message",
    "decode_message",
    "encode_barrier",
    "decode_barrier",
    "encode_ship",
    "decode_ship",
    "encode_register",
    "decode_register",
    "encode_peers",
    "decode_peers",
    "encode_control",
    "decode_control",
    "truncate_frame",
]

#: Bump on any incompatible frame-layout change.  Version 2: SHIP frames
#: carry the sender's barrier round; BARRIER frames carry a per-round
#: ship count (the fault-detection/recovery protocol of repro.chaos).
PROTOCOL_VERSION = 2

#: BARRIER ``ships`` value meaning "no count check" — used when a link is
#: rewired after a crash recovery and the sender re-announces its last
#: finished round to the replacement worker.
BARRIER_SKIP_COUNT = -1

HELLO = 0x01
MESSAGE = 0x02
BARRIER = 0x03
SHIP = 0x04
REGISTER = 0x05
PEERS = 0x06
CONTROL = 0x07

#: Every frame kind this protocol version understands.
KINDS = frozenset((HELLO, MESSAGE, BARRIER, SHIP, REGISTER, PEERS, CONTROL))

#: Human names for metric/diagnostic labels.
KIND_NAMES = {
    HELLO: "hello",
    MESSAGE: "message",
    BARRIER: "barrier",
    SHIP: "ship",
    REGISTER: "register",
    PEERS: "peers",
    CONTROL: "control",
}

_HEADER = struct.Struct(">BBI")
#: Sanity bound on a single channel frame (a protocol message is a few
#: hundred bytes; anything near this is a corrupt or hostile length prefix).
MAX_FRAME = 1 << 20
#: Bound for control/result frames: a shard's result payload carries its
#: whole keyed trace, which dwarfs any single protocol message.
CONTROL_MAX_FRAME = 1 << 28

_I64 = struct.Struct(">q")
_BARRIER = struct.Struct(">qqq")
_REGISTER = struct.Struct(">qI")


class WireError(SimulationError):
    """A malformed or incompatible frame arrived on a connection."""


class WireStats:
    """Process-wide frame/byte counters per frame kind (repro.obs).

    ``pack_frame`` / ``read_frame`` are the two choke points every frame
    passes through, so two dict probes per frame here cover every
    transport.  Cumulative for the life of the process: trial-scoped
    consumers snapshot at trial start and diff at the end (worker
    interpreters are born fresh, so their absolute counts *are* the
    trial's).
    """

    __slots__ = ("frames_out", "bytes_out", "frames_in", "bytes_in")

    def __init__(self) -> None:
        self.frames_out: dict[int, int] = {}
        self.bytes_out: dict[int, int] = {}
        self.frames_in: dict[int, int] = {}
        self.bytes_in: dict[int, int] = {}

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Kind-named copy, JSON/pickle friendly."""
        def named(counts: dict[int, int]) -> dict[str, int]:
            return {KIND_NAMES.get(kind, f"0x{kind:02x}"): value
                    for kind, value in counts.items()}

        return {
            "frames_out": named(self.frames_out),
            "bytes_out": named(self.bytes_out),
            "frames_in": named(self.frames_in),
            "bytes_in": named(self.bytes_in),
        }


#: The process-wide counters (one interpreter = one trial participant).
STATS = WireStats()


def pack_frame(kind: int, payload: bytes, *, max_frame: int = MAX_FRAME) -> bytes:
    if len(payload) > max_frame:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds {max_frame}")
    frames = STATS.frames_out
    frames[kind] = frames.get(kind, 0) + 1
    size = _HEADER.size + len(payload)
    out_bytes = STATS.bytes_out
    out_bytes[kind] = out_bytes.get(kind, 0) + size
    return _HEADER.pack(kind, PROTOCOL_VERSION, len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME
) -> tuple[int, bytes]:
    """Read one frame; raises ``IncompleteReadError`` on clean EOF mid-frame.

    Returns ``(kind, payload)``.  EOF exactly on a frame boundary raises
    ``IncompleteReadError`` with an empty partial read — callers treat that
    as connection shutdown.
    """
    header = await reader.readexactly(_HEADER.size)
    kind, version, length = _HEADER.unpack(header)
    if version != PROTOCOL_VERSION:
        raise WireError(f"peer speaks wire version {version}, expected {PROTOCOL_VERSION}")
    if kind not in KINDS:
        raise WireError(f"unknown frame kind 0x{kind:02x}")
    if length > max_frame:
        raise WireError(f"frame length {length} exceeds {max_frame}")
    payload = await reader.readexactly(length) if length else b""
    frames = STATS.frames_in
    frames[kind] = frames.get(kind, 0) + 1
    in_bytes = STATS.bytes_in
    in_bytes[kind] = in_bytes.get(kind, 0) + _HEADER.size + length
    return kind, payload


def split_frame(
    data: bytes, *, max_frame: int = MAX_FRAME
) -> tuple[int, bytes, bytes]:
    """Split one frame off the front of an in-memory buffer.

    The datagram-side counterpart of :func:`read_frame`: a UDP datagram
    arrives whole, so framing is a buffer walk, not a stream read.
    Returns ``(kind, payload, rest)`` where ``rest`` is everything after
    the frame (a datagram packs HELLO + MESSAGE back to back).  Raises
    :class:`WireError` on a short buffer, version or kind mismatch, or a
    length prefix that overruns ``max_frame`` or the buffer itself.
    """
    if len(data) < _HEADER.size:
        raise WireError(f"buffer of {len(data)} bytes is shorter than a frame header")
    kind, version, length = _HEADER.unpack_from(data)
    if version != PROTOCOL_VERSION:
        raise WireError(f"peer speaks wire version {version}, expected {PROTOCOL_VERSION}")
    if kind not in KINDS:
        raise WireError(f"unknown frame kind 0x{kind:02x}")
    if length > max_frame:
        raise WireError(f"frame length {length} exceeds {max_frame}")
    end = _HEADER.size + length
    if len(data) < end:
        raise WireError(f"frame length {length} overruns a {len(data)}-byte buffer")
    frames = STATS.frames_in
    frames[kind] = frames.get(kind, 0) + 1
    in_bytes = STATS.bytes_in
    in_bytes[kind] = in_bytes.get(kind, 0) + end
    return kind, data[_HEADER.size:end], data[end:]


def encode_hello(src: int) -> bytes:
    return pack_frame(HELLO, _I64.pack(src))


def decode_hello(payload: bytes) -> int:
    if len(payload) != 8:
        raise WireError(f"hello payload of {len(payload)} bytes, expected 8")
    return _I64.unpack(payload)[0]


def encode_message(seq: int, msg: object) -> bytes:
    return pack_frame(MESSAGE, pickle.dumps((seq, msg), protocol=pickle.HIGHEST_PROTOCOL))


def decode_message(payload: bytes) -> tuple[int, object]:
    try:
        seq, msg = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalized for callers
        raise WireError(f"undecodable message frame: {exc}") from exc
    return seq, msg


def encode_barrier(shard: int, round_no: int, ships: int) -> bytes:
    """``ships`` = SHIP frames sent on this link for ``round_no`` (or
    :data:`BARRIER_SKIP_COUNT` for a no-check re-announcement)."""
    return pack_frame(BARRIER, _BARRIER.pack(shard, round_no, ships))


def decode_barrier(payload: bytes) -> tuple[int, int, int]:
    if len(payload) != _BARRIER.size:
        raise WireError(
            f"barrier payload of {len(payload)} bytes, expected {_BARRIER.size}"
        )
    shard, round_no, ships = _BARRIER.unpack(payload)
    return shard, round_no, ships


def encode_ship(
    src: int, dst: int, msg: object, when: int, entry_seq: int, round_no: int
) -> bytes:
    return pack_frame(
        SHIP,
        pickle.dumps(
            (src, dst, msg, when, entry_seq, round_no),
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )


def decode_ship(payload: bytes) -> tuple[int, int, object, int, int, int]:
    try:
        src, dst, msg, when, entry_seq, round_no = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalized for callers
        raise WireError(f"undecodable ship frame: {exc}") from exc
    return src, dst, msg, when, entry_seq, round_no


def truncate_frame(frame: bytes) -> bytes:
    """Deterministically corrupt an encoded frame (``corrupt ship``).

    Shaves the final payload byte and restates the header length, so the
    receiver still reads a *well-framed* unit — the stream never
    desynchronizes — but the pickle payload is undecodable and raises
    :class:`WireError` at decode.  The receiver counts it as a corrupt
    arrival and relies on the ship-count NAK path to recover the message.
    """
    kind, version, length = _HEADER.unpack(frame[: _HEADER.size])
    if length == 0:
        return frame
    return _HEADER.pack(kind, version, length - 1) + frame[_HEADER.size:-1]


def encode_register(shard: int, host: str, port: int) -> bytes:
    return pack_frame(REGISTER, _REGISTER.pack(shard, port) + host.encode("utf-8"))


def decode_register(payload: bytes) -> tuple[int, str, int]:
    if len(payload) < _REGISTER.size:
        raise WireError(
            f"register payload of {len(payload)} bytes, expected >= {_REGISTER.size}"
        )
    shard, port = _REGISTER.unpack(payload[: _REGISTER.size])
    try:
        host = payload[_REGISTER.size:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"register host is not utf-8: {exc}") from exc
    if not host:
        raise WireError("register frame names no host")
    return shard, host, port


def encode_peers(peers: dict[int, tuple[str, int]]) -> bytes:
    return pack_frame(PEERS, pickle.dumps(peers, protocol=pickle.HIGHEST_PROTOCOL))


def decode_peers(payload: bytes) -> dict[int, tuple[str, int]]:
    try:
        peers = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalized for callers
        raise WireError(f"undecodable peers frame: {exc}") from exc
    if not isinstance(peers, dict) or not all(
        isinstance(shard, int)
        and isinstance(addr, tuple)
        and len(addr) == 2
        and isinstance(addr[0], str)
        and isinstance(addr[1], int)
        for shard, addr in peers.items()
    ):
        raise WireError("peers frame is not a {shard: (host, port)} map")
    return peers


def encode_control(message: object) -> bytes:
    return pack_frame(
        CONTROL,
        pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL),
        max_frame=CONTROL_MAX_FRAME,
    )


def decode_control(payload: bytes) -> object:
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalized for callers
        raise WireError(f"undecodable control frame: {exc}") from exc
