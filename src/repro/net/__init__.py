"""repro.net — the asyncio socket-backed runtime.

Runs the paper's protocol layers, unmodified, over real transports:

* :mod:`repro.net.engine` — :class:`AsyncSimulator`: one coroutine per
  process, one transport per channel, trial loop on an asyncio event loop.
* :mod:`repro.net.clock` — the deterministic :class:`VirtualClock`
  (loopback bit-identity with ``engine=serial``) and the wall-clock
  :class:`PacedClock` (tcp best-effort pacing).
* :mod:`repro.net.transport` — the channel-medium registry: loopback
  queues, the localhost TCP fabric and the UDP datagram fabric, all
  under sender-owned channel accounting.
* :mod:`repro.net.wire` — the length-prefixed frame format.
* :mod:`repro.net.cluster` — the multi-host runtime: per-shard worker
  interpreters (own OS processes) behind the TCP fabric, coordinated
  through BARRIER frames in ``windowed`` mode or free-running under the
  online monitors.
* :mod:`repro.net.registry` — the rendezvous / port-registry service
  workers use to find each other's peer servers.
* :mod:`repro.net.monitors` — online specification monitors over the
  live trace.

See ``docs/async.md`` for the transport protocol and the determinism
argument.
"""

from repro.net.clock import PacedClock, VirtualClock
from repro.net.cluster import (
    ClusterRunResult,
    ClusterSimulator,
    SYNC_MODES,
    run_cluster_worker,
)
from repro.net.engine import (
    DEFAULT_TICK_SECONDS,
    AsyncSimulator,
    NetRunResult,
    ProcessActor,
    TRANSPORTS,
)
from repro.net.monitors import (
    LiveTrace,
    MonitorReport,
    MutexExclusionMonitor,
    OnlineMonitor,
    PifWaveMonitor,
    RequestLivenessMonitor,
    default_monitors,
)
from repro.net.registry import RegistryClient, RegistryServer
from repro.net.transport import (
    LoopbackTransport,
    TcpFabric,
    TcpTransport,
    Transport,
    TransportKind,
    UdpFabric,
    UdpTransport,
    register_transport,
    resolve_transport,
    transport_names,
)

__all__ = [
    "AsyncSimulator",
    "ClusterSimulator",
    "ClusterRunResult",
    "SYNC_MODES",
    "run_cluster_worker",
    "RegistryServer",
    "RegistryClient",
    "NetRunResult",
    "ProcessActor",
    "TRANSPORTS",
    "DEFAULT_TICK_SECONDS",
    "VirtualClock",
    "PacedClock",
    "Transport",
    "TransportKind",
    "register_transport",
    "resolve_transport",
    "transport_names",
    "LoopbackTransport",
    "TcpTransport",
    "TcpFabric",
    "UdpTransport",
    "UdpFabric",
    "LiveTrace",
    "OnlineMonitor",
    "MonitorReport",
    "RequestLivenessMonitor",
    "PifWaveMonitor",
    "MutexExclusionMonitor",
    "default_monitors",
]
