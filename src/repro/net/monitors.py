"""Online specification monitors over a live trace.

The offline checkers in :mod:`repro.spec` evaluate a *finished* trace.  Over
a real transport the trace materializes as the system runs, so the async
runtime follows the automata-as-monitor approach instead: a
:class:`LiveTrace` notifies a set of :class:`OnlineMonitor` automata at
every emission, each monitor advances its state machine per event, and
safety violations are recorded *at the event that commits them* (a decide
with a missing acknowledgment, a second concurrent critical section).
Liveness residues — a request never answered, a started wave never decided
— are judged at :meth:`OnlineMonitor.report` time, once the trial's drain
window has closed.

The monitors mirror the offline Specifications (1 and 3) on purpose; for
deterministic transports the offline checkers remain the authority (the
trial runners still invoke them), and the monitor verdicts ride along as
provenance.  Over ``tcp`` — where timing is best-effort and a run is not
reproducible — the monitors *are* the correctness instrument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Collection, Mapping, Sequence

from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = [
    "MonitorReport",
    "OnlineMonitor",
    "LiveTrace",
    "RequestLivenessMonitor",
    "PifWaveMonitor",
    "MutexExclusionMonitor",
    "default_monitors",
]


@dataclass
class MonitorReport:
    """Final verdict of one online monitor."""

    name: str
    ok: bool
    violations: list[str]
    info: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.name}: {state}"


class OnlineMonitor(abc.ABC):
    """One property automaton fed every trace event as it is emitted."""

    name: str = "monitor"

    @abc.abstractmethod
    def observe(self, event: TraceEvent) -> None:
        """Advance on one event (called synchronously from ``Trace.emit``)."""

    @abc.abstractmethod
    def report(self) -> MonitorReport:
        """Final verdict, including end-of-run liveness residues."""


class LiveTrace(Trace):
    """A trace that feeds every emitted event to the attached monitors.

    Emission content and order are identical to the base :class:`Trace`
    (observers only *read* events), so substituting a ``LiveTrace`` never
    perturbs bit-identity with the serial engine.
    """

    def __init__(self) -> None:
        super().__init__()
        self.observers: list[OnlineMonitor] = []

    def attach(self, monitor: OnlineMonitor) -> None:
        self.observers.append(monitor)

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> TraceEvent:
        event = super().emit(time, kind, process, **data)
        for observer in self.observers:
            observer.observe(event)
        return event


class RequestLivenessMonitor(OnlineMonitor):
    """Start/Termination residue: every request is eventually decided.

    Applies to all three protocol instances (their request variables share
    the REQUEST/DECIDE lifecycle); violations can only be judged once the
    run is over, so they surface in :meth:`report`.
    """

    def __init__(self, tag: str) -> None:
        self.name = f"liveness[{tag}]"
        self.tag = tag
        self._pending: dict[int, int] = {}
        self._served = 0

    def observe(self, event: TraceEvent) -> None:
        if event.get("tag") != self.tag or event.process is None:
            return
        if event.kind == EventKind.REQUEST:
            self._pending.setdefault(event.process, event.time)
        elif event.kind == EventKind.DECIDE:
            if self._pending.pop(event.process, None) is not None:
                self._served += 1

    def report(self) -> MonitorReport:
        violations = [
            f"request at p{pid} (t={t}) never decided"
            for pid, t in sorted(self._pending.items())
        ]
        return MonitorReport(
            self.name, not violations, violations, {"served": self._served}
        )


class _WaveState:
    __slots__ = ("initiator", "payload", "start_time", "decided", "brd_ok",
                 "bad_payloads", "fck_counts")

    def __init__(self, initiator: int, payload: Any, start_time: int) -> None:
        self.initiator = initiator
        self.payload = payload
        self.start_time = start_time
        self.decided = False
        self.brd_ok: set[int] = set()
        self.bad_payloads: list[str] = []
        self.fck_counts: dict[int, int] = {}


class PifWaveMonitor(OnlineMonitor):
    """Specification 1 (Correctness/Decision) as an online automaton.

    Tracks every started wave; at its DECIDE event checks that every
    reachable peer generated receive-brd with the broadcast payload and
    that the initiator counted exactly one acknowledgment per peer.
    Receive events outside the wave's [start, decide] window — stale
    acknowledgments of an already-decided wave — are violations the moment
    they happen.
    """

    def __init__(
        self,
        tag: str,
        pids: Sequence[int],
        neighbors: Mapping[int, Sequence[int]] | None = None,
    ) -> None:
        self.name = f"pif[{tag}]"
        self.tag = tag
        self.pids = tuple(pids)
        self.neighbors = neighbors
        self.violations: list[str] = []
        self._waves: dict[tuple[int, int], _WaveState] = {}
        self._decided = 0

    def _others(self, initiator: int) -> tuple[int, ...]:
        if self.neighbors is not None:
            return tuple(self.neighbors[initiator])
        return tuple(q for q in self.pids if q != initiator)

    def observe(self, event: TraceEvent) -> None:
        if event.get("tag") != self.tag:
            return
        kind = event.kind
        if kind == EventKind.START and "wave" in event.data:
            self._waves[event["wave"]] = _WaveState(
                event.process, event.get("payload"), event.time  # type: ignore[arg-type]
            )
        elif kind == EventKind.RECEIVE_BRD:
            wave = self._waves.get(event.get("wave"))
            if wave is None or wave.decided or event.get("sender") != wave.initiator:
                return  # garbage or out-of-window broadcast: never counts
            if event.get("payload") == wave.payload:
                wave.brd_ok.add(event.process)  # type: ignore[arg-type]
            else:
                wave.bad_payloads.append(
                    f"p{event.process} received corrupted payload "
                    f"{event.get('payload')!r} != {wave.payload!r}"
                )
        elif kind == EventKind.RECEIVE_FCK:
            wid = event.get("wave")
            wave = self._waves.get(wid)
            if wave is None:
                return
            if wave.decided:
                self.violations.append(
                    f"acknowledgment from {event.get('sender')} at t={event.time} "
                    f"arrived after wave {wid} decided"
                )
                return
            sender = event.get("sender")
            count = wave.fck_counts.get(sender, 0) + 1
            wave.fck_counts[sender] = count
            if count > 1:
                self.violations.append(
                    f"{count} acknowledgments from {sender} counted for wave {wid}"
                )
        elif kind == EventKind.DECIDE and "wave" in event.data:
            wave = self._waves.get(event["wave"])
            if wave is None or wave.decided:
                return
            wave.decided = True
            self._decided += 1
            others = self._others(wave.initiator)
            self.violations.extend(wave.bad_payloads)
            for q in others:
                if q not in wave.brd_ok:
                    self.violations.append(
                        f"p{q} never received broadcast of wave {event['wave']} "
                        f"(payload {wave.payload!r})"
                    )
                if wave.fck_counts.get(q, 0) == 0:
                    self.violations.append(
                        f"initiator never received acknowledgment from {q} "
                        f"for wave {event['wave']}"
                    )

    def report(self) -> MonitorReport:
        violations = list(self.violations)
        for wid, wave in sorted(self._waves.items()):
            if not wave.decided:
                violations.append(
                    f"wave {wid} started at t={wave.start_time} never decided"
                )
        return MonitorReport(
            self.name,
            not violations,
            violations,
            {"waves_started": len(self._waves), "waves_decided": self._decided},
        )


class MutexExclusionMonitor(OnlineMonitor):
    """Specification 3 Correctness: requested critical sections are alone.

    Maintains the set of current occupants; a CS entry that overlaps a
    conflicting occupancy (same arbitration cluster, at least one side a
    genuinely requested CS — the footnote-1 reading) is flagged at the
    moment of entry.
    """

    def __init__(
        self, tag: str, clusters: Sequence[Collection[int]] | None = None
    ) -> None:
        self.name = f"mutex[{tag}]"
        self.tag = tag
        self._cluster_sets = (
            None if clusters is None else [frozenset(c) for c in clusters]
        )
        self._occupants: dict[int, tuple[int, bool]] = {}
        self.violations: list[str] = []
        self._cs_count = 0

    def _conflict(self, p: int, q: int) -> bool:
        if self._cluster_sets is None:
            return True
        return any(p in c and q in c for c in self._cluster_sets)

    def observe(self, event: TraceEvent) -> None:
        if event.get("tag") != self.tag or event.process is None:
            return
        pid = event.process
        if event.kind == EventKind.CS_ENTER:
            requested = bool(event.get("requested", True))
            for other, (enter, other_requested) in self._occupants.items():
                if (
                    other != pid
                    and (requested or other_requested)
                    and self._conflict(pid, other)
                ):
                    self.violations.append(
                        f"critical sections overlap at t={event.time}: "
                        f"p{pid} (requested={requested}) entered while "
                        f"p{other} (requested={other_requested}, since t={enter}) "
                        f"is inside"
                    )
            self._occupants[pid] = (event.time, requested)
            self._cs_count += 1
        elif event.kind == EventKind.CS_EXIT:
            self._occupants.pop(pid, None)

    def report(self) -> MonitorReport:
        return MonitorReport(
            self.name,
            not self.violations,
            list(self.violations),
            {"cs_count": self._cs_count},
        )


def default_monitors(tag: str, topology) -> list[OnlineMonitor]:
    """The monitor suite for a driver tag on a given topology.

    Keyed on the conventional instance tags used throughout the trials
    (``pif``, ``idl``, ``me``); unknown tags get the generic request
    liveness automaton only.
    """
    monitors: list[OnlineMonitor] = [RequestLivenessMonitor(tag)]
    if tag == "pif":
        neighbors = (
            None
            if topology.is_complete
            else {p: topology.neighbors(p) for p in topology.pids}
        )
        monitors.append(PifWaveMonitor(tag, topology.pids, neighbors))
    elif tag == "me":
        from repro.sim.topology import arbitration_clusters

        clusters = (
            None
            if topology.is_complete
            else list(arbitration_clusters(topology).values())
        )
        monitors.append(MutexExclusionMonitor(tag, clusters))
    return monitors
