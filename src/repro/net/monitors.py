"""Online specification monitors over a live trace.

The offline checkers in :mod:`repro.spec` evaluate a *finished* trace.  Over
a real transport the trace materializes as the system runs, so the async
runtime follows the automata-as-monitor approach instead: a
:class:`LiveTrace` notifies a set of :class:`OnlineMonitor` automata at
every emission, each monitor advances its state machine per event, and
safety violations are recorded *at the event that commits them* (a decide
with a missing acknowledgment, a second concurrent critical section).
Liveness residues — a request never answered, a started wave never decided
— are judged at :meth:`OnlineMonitor.report` time, once the trial's drain
window has closed.

Monitors consume the trace's *streaming* representation: ``observe`` is fed
the raw ``(time, kind, process, data)`` columns of each emission, so the
trace store never has to materialize a :class:`~repro.sim.trace.TraceEvent`
view on the emission hot path — the loopback engine emits exactly as
cheaply as the serial engine.

The monitors mirror the offline Specifications (1 and 3) on purpose; for
deterministic transports the offline checkers remain the authority (the
trial runners still invoke them), and the monitor verdicts ride along as
provenance.  Over ``tcp`` — where timing is best-effort and a run is not
reproducible — the monitors *are* the correctness instrument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Collection, Mapping, Sequence

from repro.sim.trace import EventKind, Trace

__all__ = [
    "MonitorReport",
    "OnlineMonitor",
    "LiveTrace",
    "RequestLivenessMonitor",
    "PifWaveMonitor",
    "MutexExclusionMonitor",
    "default_monitors",
]


@dataclass
class MonitorReport:
    """Final verdict of one online monitor.

    ``events_observed`` counts the emissions the automaton actually
    consumed (after its tag filter) and ``first_violation_time`` is the
    tick that committed the earliest violation (for liveness residues:
    the tick the unanswered request / undecided wave started) — the two
    numbers that make a freerun verdict diagnosable rather than a bare
    pass/fail.
    """

    name: str
    ok: bool
    violations: list[str]
    info: dict[str, Any] = field(default_factory=dict)
    events_observed: int = 0
    first_violation_time: int | None = None

    def summary(self) -> str:
        events = f"{self.events_observed} event(s) observed"
        if self.ok:
            return f"{self.name}: ok ({events})"
        state = f"{len(self.violations)} violation(s)"
        if self.first_violation_time is not None:
            state += f", first at t={self.first_violation_time}"
        return f"{self.name}: {state} ({events})"


class OnlineMonitor(abc.ABC):
    """One property automaton fed every trace emission as it happens."""

    name: str = "monitor"

    @abc.abstractmethod
    def observe(
        self, time: int, kind: str, process: int | None, data: Mapping[str, Any]
    ) -> None:
        """Advance on one event (called synchronously from ``Trace.emit``)."""

    @abc.abstractmethod
    def report(self) -> MonitorReport:
        """Final verdict, including end-of-run liveness residues."""


class LiveTrace(Trace):
    """A trace that feeds every emitted event to the attached monitors.

    Emission content and order are identical to the base :class:`Trace`
    (observers only *read* events), so substituting a ``LiveTrace`` never
    perturbs bit-identity with the serial engine.
    """

    __slots__ = ("observers",)

    def __init__(self) -> None:
        super().__init__()
        self.observers: list[OnlineMonitor] = []

    def attach(self, monitor: OnlineMonitor) -> None:
        self.observers.append(monitor)

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> None:
        self._append(time, kind, process, data, None)
        for observer in self.observers:
            observer.observe(time, kind, process, data)


class RequestLivenessMonitor(OnlineMonitor):
    """Start/Termination residue: every request is eventually decided.

    Applies to all three protocol instances (their request variables share
    the REQUEST/DECIDE lifecycle); violations can only be judged once the
    run is over, so they surface in :meth:`report`.
    """

    def __init__(self, tag: str) -> None:
        self.name = f"liveness[{tag}]"
        self.tag = tag
        self._pending: dict[int, int] = {}
        self._served = 0
        self._observed = 0

    def observe(
        self, time: int, kind: str, process: int | None, data: Mapping[str, Any]
    ) -> None:
        if data.get("tag") != self.tag or process is None:
            return
        self._observed += 1
        if kind == EventKind.REQUEST:
            self._pending.setdefault(process, time)
        elif kind == EventKind.DECIDE:
            if self._pending.pop(process, None) is not None:
                self._served += 1

    def report(self) -> MonitorReport:
        violations = [
            f"request at p{pid} (t={t}) never decided"
            for pid, t in sorted(self._pending.items())
        ]
        return MonitorReport(
            self.name, not violations, violations, {"served": self._served},
            events_observed=self._observed,
            first_violation_time=(
                min(self._pending.values()) if self._pending else None
            ),
        )


class _WaveState:
    __slots__ = ("initiator", "payload", "start_time", "decided", "brd_ok",
                 "bad_payloads", "fck_counts")

    def __init__(self, initiator: int, payload: Any, start_time: int) -> None:
        self.initiator = initiator
        self.payload = payload
        self.start_time = start_time
        self.decided = False
        self.brd_ok: set[int] = set()
        self.bad_payloads: list[str] = []
        self.fck_counts: dict[int, int] = {}


class PifWaveMonitor(OnlineMonitor):
    """Specification 1 (Correctness/Decision) as an online automaton.

    Tracks every started wave; at its DECIDE event checks that every
    reachable peer generated receive-brd with the broadcast payload and
    that the initiator counted exactly one acknowledgment per peer.
    Receive events outside the wave's [start, decide] window — stale
    acknowledgments of an already-decided wave — are violations the moment
    they happen.
    """

    def __init__(
        self,
        tag: str,
        pids: Sequence[int],
        neighbors: Mapping[int, Sequence[int]] | None = None,
    ) -> None:
        self.name = f"pif[{tag}]"
        self.tag = tag
        self.pids = tuple(pids)
        self.neighbors = neighbors
        self.violations: list[str] = []
        self._waves: dict[tuple[int, int], _WaveState] = {}
        self._decided = 0
        self._observed = 0
        self._first_violation_at: int | None = None

    def _others(self, initiator: int) -> tuple[int, ...]:
        if self.neighbors is not None:
            return tuple(self.neighbors[initiator])
        return tuple(q for q in self.pids if q != initiator)

    def _flag(self, time: int, message: str) -> None:
        if self._first_violation_at is None:
            self._first_violation_at = time
        self.violations.append(message)

    def observe(
        self, time: int, kind: str, process: int | None, data: Mapping[str, Any]
    ) -> None:
        if data.get("tag") != self.tag:
            return
        self._observed += 1
        if kind == EventKind.START and "wave" in data:
            self._waves[data["wave"]] = _WaveState(
                process, data.get("payload"), time  # type: ignore[arg-type]
            )
        elif kind == EventKind.RECEIVE_BRD:
            wave = self._waves.get(data.get("wave"))
            if wave is None or wave.decided or data.get("sender") != wave.initiator:
                return  # garbage or out-of-window broadcast: never counts
            if data.get("payload") == wave.payload:
                wave.brd_ok.add(process)  # type: ignore[arg-type]
            else:
                wave.bad_payloads.append(
                    f"p{process} received corrupted payload "
                    f"{data.get('payload')!r} != {wave.payload!r}"
                )
        elif kind == EventKind.RECEIVE_FCK:
            wid = data.get("wave")
            wave = self._waves.get(wid)
            if wave is None:
                return
            if wave.decided:
                self._flag(
                    time,
                    f"acknowledgment from {data.get('sender')} at t={time} "
                    f"arrived after wave {wid} decided",
                )
                return
            sender = data.get("sender")
            count = wave.fck_counts.get(sender, 0) + 1
            wave.fck_counts[sender] = count
            if count > 1:
                self._flag(
                    time,
                    f"{count} acknowledgments from {sender} counted for wave {wid}",
                )
        elif kind == EventKind.DECIDE and "wave" in data:
            wave = self._waves.get(data["wave"])
            if wave is None or wave.decided:
                return
            wave.decided = True
            self._decided += 1
            others = self._others(wave.initiator)
            for bad in wave.bad_payloads:
                self._flag(time, bad)
            for q in others:
                if q not in wave.brd_ok:
                    self._flag(
                        time,
                        f"p{q} never received broadcast of wave {data['wave']} "
                        f"(payload {wave.payload!r})",
                    )
                if wave.fck_counts.get(q, 0) == 0:
                    self._flag(
                        time,
                        f"initiator never received acknowledgment from {q} "
                        f"for wave {data['wave']}",
                    )

    def report(self) -> MonitorReport:
        violations = list(self.violations)
        first = self._first_violation_at
        for wid, wave in sorted(self._waves.items()):
            if not wave.decided:
                violations.append(
                    f"wave {wid} started at t={wave.start_time} never decided"
                )
                if first is None or wave.start_time < first:
                    first = wave.start_time
        return MonitorReport(
            self.name,
            not violations,
            violations,
            {"waves_started": len(self._waves), "waves_decided": self._decided},
            events_observed=self._observed,
            first_violation_time=first,
        )


class MutexExclusionMonitor(OnlineMonitor):
    """Specification 3 Correctness: requested critical sections are alone.

    Maintains the set of current occupants; a CS entry that overlaps a
    conflicting occupancy (same arbitration cluster, at least one side a
    genuinely requested CS — the footnote-1 reading) is flagged at the
    moment of entry.
    """

    def __init__(
        self, tag: str, clusters: Sequence[Collection[int]] | None = None
    ) -> None:
        self.name = f"mutex[{tag}]"
        self.tag = tag
        self._cluster_sets = (
            None if clusters is None else [frozenset(c) for c in clusters]
        )
        self._occupants: dict[int, tuple[int, bool]] = {}
        self.violations: list[str] = []
        self._cs_count = 0
        self._observed = 0
        self._first_violation_at: int | None = None

    def _conflict(self, p: int, q: int) -> bool:
        if self._cluster_sets is None:
            return True
        return any(p in c and q in c for c in self._cluster_sets)

    def observe(
        self, time: int, kind: str, process: int | None, data: Mapping[str, Any]
    ) -> None:
        if data.get("tag") != self.tag or process is None:
            return
        self._observed += 1
        pid = process
        if kind == EventKind.CS_ENTER:
            requested = bool(data.get("requested", True))
            for other, (enter, other_requested) in self._occupants.items():
                if (
                    other != pid
                    and (requested or other_requested)
                    and self._conflict(pid, other)
                ):
                    if self._first_violation_at is None:
                        self._first_violation_at = time
                    self.violations.append(
                        f"critical sections overlap at t={time}: "
                        f"p{pid} (requested={requested}) entered while "
                        f"p{other} (requested={other_requested}, since t={enter}) "
                        f"is inside"
                    )
            self._occupants[pid] = (time, requested)
            self._cs_count += 1
        elif kind == EventKind.CS_EXIT:
            self._occupants.pop(pid, None)

    def report(self) -> MonitorReport:
        return MonitorReport(
            self.name,
            not self.violations,
            list(self.violations),
            {"cs_count": self._cs_count},
            events_observed=self._observed,
            first_violation_time=self._first_violation_at,
        )


def default_monitors(tag: str, topology) -> list[OnlineMonitor]:
    """The monitor suite for a driver tag on a given topology.

    Keyed on the conventional instance tags used throughout the trials
    (``pif``, ``idl``, ``me``); unknown tags get the generic request
    liveness automaton only.
    """
    monitors: list[OnlineMonitor] = [RequestLivenessMonitor(tag)]
    if tag == "pif":
        neighbors = (
            None
            if topology.is_complete
            else {p: topology.neighbors(p) for p in topology.pids}
        )
        monitors.append(PifWaveMonitor(tag, topology.pids, neighbors))
    elif tag == "me":
        from repro.sim.topology import arbitration_clusters

        clusters = (
            None
            if topology.is_complete
            else list(arbitration_clusters(topology).values())
        )
        monitors.append(MutexExclusionMonitor(tag, clusters))
    return monitors
