"""Clocks driving the asyncio runtime (:mod:`repro.net.engine`).

Both clocks keep the simulator's event-queue discipline — a heap of
``(time, key, seq, item)`` with canonical content-derived keys
(:mod:`repro.sim.determinism`) — but instead of executing callbacks inline
like :class:`~repro.sim.scheduler.Scheduler.run_until`, their ``drive``
coroutine *routes* popped events to the coroutine of the process that owns
them — in batched same-owner runs under the :class:`VirtualClock` — and
completes each event before popping the next.

* :class:`VirtualClock` — deterministic virtual time.  Events run as fast
  as the machine allows in exactly the (time, key, seq) order the serial
  engine would execute them, which is what makes a loopback run
  bit-identical to ``engine=serial`` for the same seed.
* :class:`PacedClock` — best-effort wall-clock pacing for real transports.
  A tick lasts ``tick_seconds``; an event scheduled for tick ``T`` fires no
  earlier than ``T * tick_seconds`` after :meth:`PacedClock.start`.  Time
  read off the clock is the wall tick, so trace timestamps approximate real
  elapsed time (and are *not* reproducible — the spec monitors, not the
  timeline, carry the correctness claim over real transports).
"""

from __future__ import annotations

import asyncio
import heapq
from functools import partial
from typing import Awaitable, Callable

from repro.sim.determinism import key_owner
from repro.sim.scheduler import EventHandle, Scheduler

__all__ = ["RouteFn", "VirtualClock", "PacedClock"]

#: Routes one popped event (or a same-tick same-owner batch thunk):
#: ``await route(key, callback)`` must execute ``callback`` (inline or
#: inside the owning process coroutine) and return only when it has
#: completed.
RouteFn = Callable[[int, Callable[[], None]], Awaitable[None]]


class VirtualClock(Scheduler):
    """Deterministic virtual-time clock: the serial scheduler, driveable.

    :meth:`drive` mirrors :meth:`Scheduler.run_until` — same same-tick batch
    draining, same lazy-cancellation handling, same trailing advance of
    ``_now`` to the horizon — with one difference: events execute inside
    process coroutines, reached through ``route``.

    **Batched handoff**: awaiting one future round-trip per event made
    loopback pay ~2x serial, so ``drive`` routes a *run* of events per
    handoff instead.  The routed thunk executes the popped event and then
    keeps draining the heap while the top event has the same owning pid
    (``key_owner``) and lies within the horizon.  Because the thunk pops
    strictly *after* each callback completes, it always executes the
    current heap minimum next — which is exactly the event the serial
    engine would run — so bit-identity is preserved while a burst of
    same-process deliveries costs one actor round-trip instead of one per
    message.  Runs owned by no process (canonical class 0: request
    drivers, harness posts) execute inline in the drive coroutine without
    touching the event loop at all, so idle polling stretches cost what
    they cost the serial engine.
    """

    #: Passive obs counter: same-owner runs dispatched by drive (inline
    #: or routed) — the unit the batched-handoff optimization amortizes
    #: over.  Accumulated once per drive call, not per run.
    runs = 0

    async def drive(
        self,
        max_time: int,
        route: RouteFn,
        stop: Callable[[], bool] | None = None,
    ) -> bool:
        """Advance virtual time to ``max_time`` (or until ``stop()``).

        Mirrors ``Simulator.run``'s contract: the stop predicate is
        evaluated up front and after every event; returns True iff it was
        satisfied (always False when no predicate is given).
        """
        if stop is not None and stop():
            return True
        halted = False
        runs = 0
        queue = self._queue
        heappop = heapq.heappop
        owner_of = key_owner  # called twice per event; bind once

        def drain(first_fn: Callable[[], None], first_key: int) -> None:
            """Execute one event, then the rest of its same-owner run —
            called inside the owning process's coroutine (or inline for
            ownerless runs).  ``self._now`` already sits on the run's
            first tick."""
            nonlocal halted
            owner = owner_of(first_key)
            self.current_key = first_key
            first_fn()
            if stop is not None and stop():
                halted = True
                return
            while (
                queue
                and queue[0][0] <= max_time
                and owner_of(queue[0][1]) == owner
            ):
                time, key, _seq, item = heappop(queue)
                if item.__class__ is EventHandle:
                    if item.cancelled:
                        self._cancelled -= 1
                        continue
                    item.fired = True
                    fn = item.callback
                else:
                    fn = item
                self._now = time
                self.current_key = key
                fn()
                if stop is not None and stop():
                    halted = True
                    return

        while queue:
            tick = queue[0][0]
            if tick > max_time:
                break
            _time, key, _seq, item = heappop(queue)
            if item.__class__ is EventHandle:
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                item.fired = True
                fn = item.callback
            else:
                fn = item
            self._now = tick
            runs += 1
            if owner_of(key) == 0:
                drain(fn, key)
            else:
                await route(key, partial(drain, fn, key))
            if halted:
                break
        self.current_key = 0
        self.runs += runs
        if self._now < max_time and (not queue or queue[0][0] > max_time):
            self._now = max_time
        return halted


class PacedClock(Scheduler):
    """Wall-clock-paced event queue for real (socket) transports.

    Scheduling in the past cannot raise here: real transports hand events
    to the clock from I/O tasks that may observe a wall tick slightly ahead
    of the event's nominal time (e.g. a parked dispatch whose busy window
    expired while a frame was in the socket buffer), so ``post_at`` /
    ``schedule_at`` clamp to the current tick instead.
    """

    def __init__(self, tick_seconds: float) -> None:
        super().__init__()
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be > 0, got {tick_seconds}")
        self.tick_seconds = tick_seconds
        #: Passive obs counter: events routed by drive (tcp is wall-clock
        #: paced, so one increment per event is noise).
        self.runs = 0
        self._t0: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def start(self) -> None:
        """Anchor tick 0 at the current wall time (idempotent)."""
        if self._t0 is None:
            self._loop = asyncio.get_running_loop()
            self._t0 = self._loop.time()

    def wall_tick(self) -> int:
        """Elapsed wall time since :meth:`start`, in ticks."""
        if self._t0 is None or self._loop is None:
            return 0
        return int((self._loop.time() - self._t0) / self.tick_seconds)

    def touch(self) -> None:
        """Pull ``_now`` up to the wall tick.

        The drive loop does this once per iteration, but transport I/O
        (frame arrivals, sends issued while the loop is busy) must also
        see current time: latency draws are anchored at ``_now``, so a
        stale clock would propose delivery ticks already in the past and
        collapse the emulated link latency to zero — turning protocol
        request/reply cycles into an unthrottled message storm.
        """
        wall = self.wall_tick()
        if wall > self._now:
            self._now = wall

    # Best-effort clamping (see class docstring).
    def post_at(self, time: int, callback, key: int = 0) -> None:
        super().post_at(max(time, self._now), callback, key)

    def schedule_at(self, time: int, callback, key: int = 0) -> EventHandle:
        return super().schedule_at(max(time, self._now), callback, key)

    async def drive(
        self,
        max_time: int,
        route: RouteFn,
        stop: Callable[[], bool] | None = None,
    ) -> bool:
        """Run due events, paced by the wall clock, until ``max_time`` ticks.

        An event scheduled for tick ``T`` executes once the wall tick has
        reached ``T``; between due events the coroutine sleeps, letting
        transport I/O tasks run.  The stop predicate is polled every
        iteration.  ``_now`` tracks the wall tick (monotonically), so
        ``host.busy`` windows and trace timestamps read elapsed real time.
        """
        self.start()
        queue = self._queue
        heappop = heapq.heappop
        while True:
            wall = self.wall_tick()
            if wall > self._now:
                self._now = wall
            if stop is not None and stop():
                return True
            # Due-ness is capped at max_time: if the wall clock overtook the
            # horizon (scheduling stall, loaded runner), events scheduled
            # past the budget must stay queued for the next drive call, not
            # ride the overshoot into this one.
            limit = wall if wall < max_time else max_time
            due = bool(queue) and queue[0][0] <= limit
            if due:
                tick, key, _seq, item = heappop(queue)
                if item.__class__ is EventHandle:
                    if item.cancelled:
                        self._cancelled -= 1
                        continue
                    if tick > self._now:
                        self._now = tick
                    self.current_key = key
                    item.fired = True
                    await route(key, item.callback)
                else:
                    if tick > self._now:
                        self._now = tick
                    self.current_key = key
                    await route(key, item)
                self.current_key = 0
                self.runs += 1
                # Yield so transport I/O interleaves even under bursts.
                await asyncio.sleep(0)
                continue
            if wall >= max_time:
                if self._now < max_time:
                    self._now = max_time
                return False
            # Nothing due: sleep to the next event (capped at one tick so
            # the stop predicate and freshly shipped frames stay responsive).
            horizon = queue[0][0] if queue else max_time
            delay = min(max(horizon - wall, 0), 1) or 1
            await asyncio.sleep(delay * self.tick_seconds)
