"""The transport plugin surface: :class:`Transport` and its registry.

A *transport* carries one directed channel ``src -> dst``.  Whatever the
medium, the paper's Section 4 channel semantics are enforced on the
**sender's side** — the invariant inherited from the sharded engine's
sender-owned accounting (:mod:`repro.sim.sharded`):

* *admission* — the sender's :class:`~repro.sim.channel.BoundedChannel`
  copy holds the capacity slots; a send into a full channel is dropped
  before it ever reaches the medium (``AsyncSimulator.transmit``, shared
  with the serial engine);
* *loss / corruption* — drawn from the channel's own random stream at the
  transport boundary, also before the medium;
* *latency* — drawn from the same stream at send time; the slot frees
  when the message leaves the channel, and busy receivers defer only the
  dispatch.

Each medium registers a :class:`TransportKind` — its name, its
determinism/pacing/framing contract, and the factories the engine calls —
so the :class:`~repro.net.engine.AsyncSimulator` (and the chaos plan
validator, and the async backend's capability set) never name a medium:
they read the declared flags.  Adding a transport is one leaf module that
calls :func:`register_transport`; see :mod:`repro.net.transport.udp` for
the worked example.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SpecError
from repro.sim.channel import ChannelBase, _Entry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.engine import AsyncSimulator

__all__ = [
    "Transport",
    "TransportKind",
    "register_transport",
    "resolve_transport",
    "transport_names",
]


class Transport(abc.ABC):
    """Delivery mechanism of one directed channel."""

    #: Frames this transport put on a real medium (repro.obs; loopback
    #: never frames anything, so the base value stands).
    frames_sent = 0

    def __init__(self, engine: "AsyncSimulator", channel: ChannelBase) -> None:
        self.engine = engine
        self.channel = channel

    @abc.abstractmethod
    def send(self, entry: _Entry) -> None:
        """Carry an admitted channel entry toward the destination."""

    def close(self) -> None:
        """Release transport resources (called at trial teardown)."""


@dataclass(frozen=True)
class TransportKind:
    """One registered channel medium and its contract.

    ``deterministic`` — a run reproduces the serial engine bit for bit
    (drives the engine's clock choice: deterministic media run on the
    :class:`~repro.net.clock.VirtualClock`).  ``paced`` — events are
    paced against wall time (:class:`~repro.net.clock.PacedClock`; the
    ``tick`` axis applies).  ``frame_boundary`` — messages cross the
    medium as wire frames, giving chaos ship faults an injection point.
    ``channel_factory(engine, channel)`` builds the per-channel
    transport; ``fabric_factory(engine)``, when set, builds the
    trial-scoped medium (sockets, endpoints) the engine starts before
    tick 0 and closes at teardown.
    """

    name: str
    deterministic: bool
    paced: bool
    frame_boundary: bool
    channel_factory: Callable[["AsyncSimulator", ChannelBase], Transport]
    fabric_factory: Callable[["AsyncSimulator"], Any] | None = None
    summary: str = ""


_KINDS: dict[str, TransportKind] = {}


def register_transport(kind: TransportKind) -> TransportKind:
    """Register a channel medium under its name (flat namespace; a
    collision is an error — two media answering ``transport=x`` would
    make provenance ambiguous)."""
    if not kind.name:
        raise SpecError("transport declares no name", field="transport")
    if kind.name in _KINDS:
        raise SpecError(
            f"transport name {kind.name!r} is already registered",
            field="transport")
    _KINDS[kind.name] = kind
    return kind


def resolve_transport(name: str) -> TransportKind:
    """The medium answering ``transport=name``; :class:`SpecError` if
    none is registered under that name."""
    try:
        return _KINDS[name]
    except KeyError:
        raise SpecError(
            f"unknown transport {name!r}; expected one of "
            f"{transport_names()}", field="transport") from None


def transport_names() -> tuple[str, ...]:
    """Registered transport names, sorted (CLI choices, capability sets)."""
    return tuple(sorted(_KINDS))
