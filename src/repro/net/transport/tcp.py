"""The tcp medium: frames cross real localhost TCP sockets.

The message crosses a :class:`TcpFabric` connection as a length-prefixed
frame (:mod:`repro.net.wire`).  A per-channel writer coroutine ships
frames in admission order, each no earlier than its drawn delivery tick,
so per-tag FIFO survives on the wire; the receiving fabric dispatches
frames into the destination coroutine as they arrive.  Timing is
wall-clock best-effort — the online monitors carry the correctness
claim.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.net import wire
from repro.sim.channel import ChannelBase, _Entry
from repro.net.transport.base import (
    Transport,
    TransportKind,
    register_transport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.engine import AsyncSimulator

__all__ = ["TcpTransport", "TcpFabric"]


class TcpTransport(Transport):
    """Socket transport: frames cross a real localhost TCP connection."""

    def __init__(
        self, engine: "AsyncSimulator", channel: ChannelBase, fabric: "TcpFabric"
    ) -> None:
        super().__init__(engine, channel)
        self.fabric = fabric
        # The channel's own stream, bound once (the same caching the
        # serial engine keeps in ``Simulator._chan_fast``): the emulated
        # link latency comes from the same per-channel draws.
        self._randint = engine.chan_rng(channel.src, channel.dst).randint
        self.frames_sent = 0
        self._outbox: asyncio.Queue[_Entry | None] = asyncio.Queue()
        self._writer_task = engine._spawn(
            self._writer_loop(), name=f"ship-{channel.src}-{channel.dst}"
        )

    def send(self, entry: _Entry) -> None:
        # Anchor the latency draw at the *wall* tick: sends triggered by
        # frame arrivals can run while the drive loop is behind on clock
        # events, and a stale ``_now`` would propose delivery times in the
        # past (zero effective link latency — see PacedClock.touch).
        self.engine.scheduler.touch()
        self.engine.draw_delivery_time(self.channel, entry, self._randint)
        self._outbox.put_nowait(entry)

    async def _writer_loop(self) -> None:
        """Ship admitted entries in admission order, each no earlier than
        its drawn delivery tick (a cross-tag head-of-line wait can push a
        frame past its own tick); the slot frees when the frame is on the
        wire."""
        clock = self.engine.scheduler
        writer = self.fabric.writer(self.channel.src, self.channel.dst)
        while True:
            entry = await self._outbox.get()
            if entry is None:
                return
            assert entry.delivery_time is not None
            delay = (entry.delivery_time - clock.wall_tick()) * clock.tick_seconds
            if delay > 0:
                await asyncio.sleep(delay)
            frame = wire.encode_message(entry.seq, entry.msg)
            # Chaos fault plans rewrite the frame list at this boundary:
            # [] (drop), [frame, frame] (duplicate), [truncated] (corrupt).
            # The slot release below is unconditional — a chaos-dropped
            # message behaves like channel loss, not like back-pressure.
            for out in self.engine._fault_frames(
                self.channel.src, self.channel.dst, frame
            ):
                writer.write(out)
                self.frames_sent += 1
                await writer.drain()
            # Sender-owned slot release, same guarded rule as the serial
            # engine's cross-shard path (ship time stands in for the
            # scheduled delivery time).
            self.engine._release_slot(self.channel, entry)

    def close(self) -> None:
        self._outbox.put_nowait(None)


class TcpFabric:
    """The socket mesh of one trial: one server per process, one connection
    per directed channel, all on the loopback interface.

    Connection setup happens before the trial clock starts; each accepted
    connection identifies its source via a HELLO frame, after which a pump
    coroutine decodes MESSAGE frames and hands them to the engine for
    dispatch into the destination process coroutine.
    """

    def __init__(self, engine: "AsyncSimulator") -> None:
        self.engine = engine
        self.ports: dict[int, int] = {}
        self._servers: list[asyncio.Server] = []
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._pumps: list[asyncio.Task] = []

    async def start(self) -> None:
        for pid in self.engine.hosts:
            server = await asyncio.start_server(
                partial(self._accept, pid), host="127.0.0.1", port=0
            )
            self._servers.append(server)
            self.ports[pid] = server.sockets[0].getsockname()[1]
        for src in self.engine.hosts:
            for dst in self.engine.network.peers_of(src):
                _reader, writer = await asyncio.open_connection(
                    "127.0.0.1", self.ports[dst]
                )
                writer.write(wire.encode_hello(src))
                await writer.drain()
                self._writers[(src, dst)] = writer

    def writer(self, src: int, dst: int) -> asyncio.StreamWriter:
        try:
            return self._writers[(src, dst)]
        except KeyError:
            raise SimulationError(
                f"no connection for channel {src}->{dst} (not a topology edge?)"
            ) from None

    async def _accept(
        self, dst: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._pumps.append(task)
        # Receiver-side fault tolerance is armed only when a fault plan is
        # active: a corrupt or duplicate frame on a fault-free run is a
        # real protocol violation and must still fail the trial loudly.
        tolerant = self.engine._faults_active
        seen: set[int] = set()
        try:
            kind, payload = await wire.read_frame(reader)
            if kind != wire.HELLO:
                raise wire.WireError("connection did not open with a HELLO frame")
            src = wire.decode_hello(payload)
            while True:
                kind, payload = await wire.read_frame(reader)
                if kind != wire.MESSAGE:
                    raise wire.WireError(f"unexpected frame kind 0x{kind:02x}")
                try:
                    seq, msg = wire.decode_message(payload)
                except wire.WireError:
                    if not tolerant:
                        raise
                    self.engine._count_fault("ship.corrupt_received")
                    continue
                if tolerant:
                    # seq is the channel admission sequence — unique per
                    # connection, so a repeat can only be a chaos duplicate.
                    if seq in seen:
                        self.engine._count_fault("ship.duplicate_dropped")
                        continue
                    seen.add(seq)
                self.engine._socket_arrival(src, dst, msg, seq)
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.CancelledError):
            return  # peer closed or trial teardown
        except Exception as exc:  # noqa: BLE001 - any other pump death must
            # reach the error sink: the drive loop's stop predicate watches
            # it, so the trial fails at the next event instead of idling
            # out the wall-clock horizon with a silently dead channel.
            self.engine._net_error(exc)
        finally:
            writer.close()

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        for pump in self._pumps:
            pump.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps, return_exceptions=True)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()


def _tcp_channel(engine: "AsyncSimulator", channel: ChannelBase) -> TcpTransport:
    return TcpTransport(engine, channel, engine.require_fabric())


register_transport(TransportKind(
    name="tcp",
    deterministic=False,
    paced=True,
    frame_boundary=True,
    channel_factory=_tcp_channel,
    fabric_factory=TcpFabric,
    summary="real localhost TCP sockets, wall-clock best-effort",
))
