"""The loopback medium: in-process delivery through asyncio queues.

The message never leaves the process: its delivery is posted to the
engine's clock under the canonical delivery key and travels through the
receiving coroutine's asyncio queue.  Under the
:class:`~repro.net.clock.VirtualClock` this reproduces the serial
engine's delivery schedule *exactly* (same stream, same draw, same FIFO
clamp, same key), which is the transport half of the loopback
bit-identity guarantee.
"""

from __future__ import annotations

from repro.sim.channel import _Entry
from repro.sim.runtime import Simulator
from repro.net.transport.base import (
    Transport,
    TransportKind,
    register_transport,
)

__all__ = ["LoopbackTransport"]


class LoopbackTransport(Transport):
    """In-process transport: deliveries travel through asyncio queues."""

    def send(self, entry: _Entry) -> None:
        # Delegate to the serial engine's scheduling — the latency draw,
        # FIFO clamp and canonical delivery key are determinism-critical
        # and must stay single-sourced (the explicit base-class call is
        # what breaks the override recursion; every pid is hosted here, so
        # the cross-shard branch is dead).  The clock then routes the
        # posted delivery into the destination coroutine's inbox queue —
        # the "loopback medium" — at the canonical position.
        Simulator._schedule_delivery(self.engine, self.channel, entry)


register_transport(TransportKind(
    name="loopback",
    deterministic=True,
    paced=False,
    frame_boundary=False,
    channel_factory=LoopbackTransport,
    summary="in-process asyncio queues, bit-identical to serial",
))
