"""The udp medium: datagrams on the loopback interface, the real network
as the adversary.

The paper's channel model — finite capacity, loss, reordering — is
UDP's native behaviour, so this transport lets the medium itself play
the adversary instead of emulating one: every admitted entry leaves as
one datagram (``HELLO frame + MESSAGE frame``, so each datagram is
self-identifying), and whatever the network drops, reorders or
duplicates is simply what the protocol layers must stabilize against.
Like ``tcp`` (and the cluster engine's ``freerun`` mode) a udp run is
wall-clock best-effort: the online spec monitors carry the correctness
claim.  Sender-side semantics are unchanged — admission, the loss-model
draw and the latency draw still happen at the channel, so observed udp
loss *adds to* the modelled loss rather than replacing its accounting.

This module is also the registry's worked example: it registers purely
through :func:`~repro.net.transport.base.register_transport` — no
engine, runner or CLI edits — and docs/architecture.md walks through it
line by line.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.net import wire
from repro.sim.channel import ChannelBase, _Entry
from repro.net.transport.base import (
    Transport,
    TransportKind,
    register_transport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.engine import AsyncSimulator

__all__ = ["UdpTransport", "UdpFabric"]


class UdpTransport(Transport):
    """Datagram transport: one datagram per admitted channel entry."""

    def __init__(
        self, engine: "AsyncSimulator", channel: ChannelBase, fabric: "UdpFabric"
    ) -> None:
        super().__init__(engine, channel)
        self.fabric = fabric
        self._randint = engine.chan_rng(channel.src, channel.dst).randint
        self.frames_sent = 0
        self._outbox: asyncio.Queue[_Entry | None] = asyncio.Queue()
        self._writer_task = engine._spawn(
            self._writer_loop(), name=f"dgram-{channel.src}-{channel.dst}"
        )

    def send(self, entry: _Entry) -> None:
        # Same anchoring as the tcp transport: the latency draw must read
        # the wall tick, not the drive loop's possibly-stale ``_now``.
        self.engine.scheduler.touch()
        self.engine.draw_delivery_time(self.channel, entry, self._randint)
        self._outbox.put_nowait(entry)

    async def _writer_loop(self) -> None:
        """Ship admitted entries in admission order, each no earlier than
        its drawn delivery tick.  The network may still reorder them —
        that is the point — and the slot frees when the datagram leaves,
        so an in-flight drop behaves like channel loss, never like
        back-pressure."""
        clock = self.engine.scheduler
        src, dst = self.channel.src, self.channel.dst
        while True:
            entry = await self._outbox.get()
            if entry is None:
                return
            assert entry.delivery_time is not None
            delay = (entry.delivery_time - clock.wall_tick()) * clock.tick_seconds
            if delay > 0:
                await asyncio.sleep(delay)
            frame = wire.encode_message(entry.seq, entry.msg)
            # Chaos ship faults rewrite the frame list here exactly as on
            # tcp: [] (drop), [frame, frame] (duplicate), [truncated].
            for out in self.engine._fault_frames(src, dst, frame):
                self.fabric.send_datagram(src, dst, out)
                self.frames_sent += 1
            self.engine._release_slot(self.channel, entry)

    def close(self) -> None:
        self._outbox.put_nowait(None)


class _UdpEndpoint(asyncio.DatagramProtocol):
    """One pid's receive socket: hands every datagram to the fabric."""

    def __init__(self, fabric: "UdpFabric", pid: int) -> None:
        self.fabric = fabric
        self.pid = pid

    def datagram_received(self, data: bytes, addr) -> None:
        self.fabric._on_datagram(self.pid, data)

    def error_received(self, exc: Exception) -> None:
        self.fabric.engine._net_error(exc)


class UdpFabric:
    """The datagram mesh of one trial: one socket per process, no
    connections — every datagram carries its own HELLO frame, so the
    receiving endpoint can attribute it to a directed channel."""

    def __init__(self, engine: "AsyncSimulator") -> None:
        self.engine = engine
        self.ports: dict[int, int] = {}
        self._endpoints: dict[int, asyncio.DatagramTransport] = {}
        #: Channel-admission seqs already dispatched per directed channel:
        #: UDP may duplicate natively (and chaos faults do on purpose), and
        #: a replayed dispatch would double-deliver a protocol message.
        self._seen: dict[int, set[tuple[int, int]]] = {}
        self._counters: dict[str, int] = {}

    def _count(self, name: str) -> None:
        self._counters[name] = self._counters.get(name, 0) + 1

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for pid in self.engine.hosts:
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda pid=pid: _UdpEndpoint(self, pid),
                local_addr=("127.0.0.1", 0),
            )
            self._endpoints[pid] = transport
            self.ports[pid] = transport.get_extra_info("sockname")[1]
            self._seen[pid] = set()

    def send_datagram(self, src: int, dst: int, message_frame: bytes) -> None:
        """One self-identifying datagram: HELLO(src) + MESSAGE frame."""
        self._count("udp.datagrams_sent")
        self._endpoints[src].sendto(
            wire.encode_hello(src) + message_frame,
            ("127.0.0.1", self.ports[dst]),
        )

    def _on_datagram(self, dst: int, data: bytes) -> None:
        self._count("udp.datagrams_received")
        tolerant = self.engine._faults_active
        try:
            kind, payload, rest = wire.split_frame(data)
            if kind != wire.HELLO:
                raise wire.WireError(
                    f"datagram did not open with a HELLO frame (0x{kind:02x})")
            src = wire.decode_hello(payload)
            kind, payload, rest = wire.split_frame(rest)
            if kind != wire.MESSAGE or rest:
                raise wire.WireError("datagram is not HELLO + one MESSAGE")
            seq, msg = wire.decode_message(payload)
        except wire.WireError:
            # The medium is the adversary: an undecodable datagram is a
            # corrupt arrival, counted and dropped — never a trial error.
            self._count("udp.undecodable_dropped")
            if tolerant:
                self.engine._count_fault("ship.corrupt_received")
            return
        if (src, seq) in self._seen[dst]:
            self._count("udp.duplicate_dropped")
            if tolerant:
                self.engine._count_fault("ship.duplicate_dropped")
            return
        self._seen[dst].add((src, seq))
        self.engine._socket_arrival(src, dst, msg, seq)

    def obs_stats(self) -> dict[str, int]:
        """Datagram counters for :meth:`AsyncSimulator.collect_obs`."""
        return dict(self._counters)

    async def close(self) -> None:
        for transport in self._endpoints.values():
            transport.close()


def _udp_channel(engine: "AsyncSimulator", channel: ChannelBase) -> UdpTransport:
    return UdpTransport(engine, channel, engine.require_fabric())


register_transport(TransportKind(
    name="udp",
    deterministic=False,
    paced=True,
    frame_boundary=True,
    channel_factory=_udp_channel,
    fabric_factory=UdpFabric,
    summary="loopback datagrams; the real network is the adversary",
))
