"""Channel transports for the async engine, one module per medium.

Importing this package registers every built-in medium: ``loopback``
(deterministic, bit-identical to serial), ``tcp`` (real localhost
sockets, wall-clock best-effort) and ``udp`` (loopback datagrams, the
real network as the adversary).  Third-party media register the same
way — a leaf module calling :func:`register_transport`; nothing in the
engine, runner or CLI names a medium.
"""

from repro.net.transport.base import (
    Transport,
    TransportKind,
    register_transport,
    resolve_transport,
    transport_names,
)
from repro.net.transport.loopback import LoopbackTransport
from repro.net.transport.tcp import TcpFabric, TcpTransport
from repro.net.transport.udp import UdpFabric, UdpTransport

__all__ = [
    "Transport",
    "TransportKind",
    "register_transport",
    "resolve_transport",
    "transport_names",
    "LoopbackTransport",
    "TcpTransport",
    "TcpFabric",
    "UdpTransport",
    "UdpFabric",
]
