"""Protocol ME — Algorithm 3 of the paper (snap-stabilizing mutual exclusion).

The process with the smallest identity (the *leader*) arbitrates access to
the critical section through its ``Value`` variable: ``Value = 0`` favours
the leader itself, ``Value = k`` favours the process on the leader's local
channel ``k``.  Each process cycles through five phases:

* **Phase 0** — start an IDL computation; take a pending external request
  into account (``Request ← In``; the *start* of Specification 3).
* **Phase 1** — once IDL decided (IDs and leader known), broadcast ``ASK``
  via PIF: every process feeds back ``YES`` iff its ``Value`` favours the
  asker.  Only the leader's answer will matter.
* **Phase 2** — once the ASK wave decided, evaluate ``Winner``; a winner
  broadcasts ``EXIT``, forcing every other process back to phase 0, which
  guarantees nobody else still believes it may enter the critical section.
* **Phase 3** — once the EXIT wave decided, a winner executes the critical
  section (if it has a request in), then releases: the leader advances its
  own ``Value``; a non-leader broadcasts ``EXITCS`` so the leader advances
  ``Value`` on its behalf.
* **Phase 4** — once the EXITCS wave decided, return to phase 0.

Deviations from the paper, documented in DESIGN.md:

* A7 increments ``Value`` modulo ``deg(p) + 1`` (= ``n`` on the paper's
  complete graph) rather than the paper's ``n + 1``: the extra value
  favours nobody and would stall the leader forever, contradicting the
  paper's own liveness lemma (Lemma 11).  Pass ``use_paper_modulus=True``
  to reproduce the stall (ablation E8b).
* The critical section takes ``cs_duration`` ticks instead of being
  instantaneous-inside-A3.  The process stays *busy* for the whole span
  (no activations, no deliveries), which preserves the paper's atomicity
  argument while making the mutual-exclusion property observable.

**Non-complete topologies.**  The paper assumes the complete graph, where
every process learns the one global leader and that leader's ``Value``
arbitrates globally.  On a pluggable topology each process learns its
*closed neighbourhood* minimum instead, so arbitration happens per *leader
cluster* (processes sharing a leader — see
:func:`repro.sim.topology.arbitration_clusters`); on the complete graph the
single cluster recovers the global guarantee.  Two extra deviations, active
only when the topology is not complete (complete-graph runs are bit-for-bit
identical to before), keep every arbiter's ``Value`` rotating:

* a releasing *leader* also broadcasts ``EXITCS`` — on the complete graph
  nobody consults another arbiter, but here a neighbour whose own arbiter
  currently favours this leader needs the release notification to advance;
* an arbiter that is not its own leader escapes ``Value = 0`` (which
  favours only the process itself — meaningful solely at self-leaders) on
  any ``EXITCS`` receipt.

Liveness of the generalized rotation: an arbiter stuck favouring ``m``
waits on ``m`` winning via ``m``'s own leader, whose identity is <= the
arbiter's — every waits-on chain descends in leader identity, cycles are
impossible, and the chain bottoms out at a self-leader that rotates itself.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.core.idl import IdlLayer
from repro.core.pif import PifClient, PifLayer
from repro.errors import ProtocolError
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["MutexLayer", "ASK", "EXIT", "EXITCS", "YES", "NO", "OK"]

# Broadcast payloads (the instance's broadcast alphabet).
ASK = "ASK"
EXIT = "EXIT"
EXITCS = "EXITCS"
# Feedback payloads (the instance's feedback alphabet).
YES = "YES"
NO = "NO"
OK = "OK"


class MutexLayer(Layer, PifClient):
    """One instance of Protocol ME (Algorithm 3)."""

    def __init__(
        self,
        tag: str = "me",
        ident: int | None = None,
        cs_duration: int = 3,
        use_paper_modulus: bool = False,
        cs_body: Callable[[], None] | None = None,
        max_state: int | None = None,
    ) -> None:
        super().__init__(tag)
        if cs_duration < 0:
            raise ProtocolError(f"cs_duration must be >= 0, got {cs_duration}")
        self.idl = IdlLayer(f"{tag}/idl", ident=ident, max_state=max_state)
        pif_kwargs = {} if max_state is None else {"max_state": max_state}
        self.pif = PifLayer(f"{tag}/pif", client=self, **pif_kwargs)
        self.cs_duration = cs_duration
        self.use_paper_modulus = use_paper_modulus
        self.cs_body = cs_body
        # Variables of Algorithm 3.
        self.request: RequestState = RequestState.DONE
        self.phase: int = 0
        self.value: int = 0
        self.privileges: dict[int, bool] = {}
        # True while this process occupies the critical section.
        self.in_cs: bool = False
        # True iff the current Request=In computation genuinely started in
        # this run (A0 witnessed Wait -> In).  A scrambled configuration can
        # fabricate Request=In out of thin air; the CS such a phantom
        # computation executes is initial-configuration occupancy (the
        # paper's footnote 1), not a *requested* CS — the guarantee covers
        # computations started after the arbitrary initial configuration.
        self._request_started: bool = False

    # -- wiring -----------------------------------------------------------------

    def sublayers(self) -> Sequence[Layer]:
        return (self.idl, self.pif)

    def on_attach(self) -> None:
        assert self.host is not None
        for q in self.host.others:
            self.privileges.setdefault(q, False)
        # Complete-graph runs keep the paper's exact behaviour; the two
        # generalization deviations (module docstring) gate on this flag.
        self._complete_topology = self.host.topology_complete

    @property
    def ident(self) -> int:
        return self.idl.ident

    @property
    def _value_modulus(self) -> int:
        assert self.host is not None
        base = self.host.degree + 1  # = n on the complete graph
        return base + 1 if self.use_paper_modulus else base

    # -- external interface ----------------------------------------------------------

    def request_cs(self) -> None:
        """External request for the critical section (``Request ← Wait``).

        Per Hypothesis 1 the application must not call this again before
        ``request`` is back to ``Done``.
        """
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_cs

    # -- the Winner predicate ------------------------------------------------------------

    def winner(self) -> bool:
        """Winner(p) of Algorithm 3."""
        assert self.host is not None
        if self.idl.min_id == self.ident and self.value == 0:
            return True
        return any(
            self.privileges[q] and self.idl.id_tab.get(q) == self.idl.min_id
            for q in self.host.others
        )

    # -- actions (Algorithm 3, A0-A4) ----------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("A0", self._guard_a0, self._action_a0),
            Action("A1", self._guard_a1, self._action_a1),
            Action("A2", self._guard_a2, self._action_a2),
            Action("A3", self._guard_a3, self._action_a3),
            Action("A4", self._guard_a4, self._action_a4),
        )

    def _set_phase(self, phase: int) -> None:
        assert self.host is not None
        self.phase = phase
        self.host.emit(EventKind.PHASE, tag=self.tag, phase=phase)

    def _guard_a0(self) -> bool:
        return self.phase == 0 and not self.in_cs

    def _action_a0(self) -> None:
        """A0 :: Phase = 0 -> start IDL; take a pending request into account."""
        assert self.host is not None
        self.idl.request_learn()
        if self.request is RequestState.WAIT:
            self.request = RequestState.IN
            self._request_started = True
            self.host.emit(EventKind.START, tag=self.tag)
        self._set_phase(1)

    def _guard_a1(self) -> bool:
        return (
            self.phase == 1
            and not self.in_cs
            and self.idl.request is RequestState.DONE
        )

    def _action_a1(self) -> None:
        """A1 :: IDL decided -> broadcast ASK."""
        self.pif.request_broadcast(ASK)
        self._set_phase(2)

    def _guard_a2(self) -> bool:
        return (
            self.phase == 2
            and not self.in_cs
            and self.pif.request is RequestState.DONE
        )

    def _action_a2(self) -> None:
        """A2 :: ASK wave decided -> a winner broadcasts EXIT."""
        if self.winner():
            self.pif.request_broadcast(EXIT)
        self._set_phase(3)

    def _guard_a3(self) -> bool:
        return (
            self.phase == 3
            and not self.in_cs
            and self.pif.request is RequestState.DONE
        )

    def _action_a3(self) -> None:
        """A3 :: EXIT wave decided -> critical section, then release."""
        assert self.host is not None
        if not self.winner():
            self._set_phase(4)
            return
        if self.request is RequestState.IN:
            self._enter_cs()
            # The release and the phase switch run at CS exit; the process
            # is busy until then, preserving A3's atomicity.
            return
        self._release()
        self._set_phase(4)

    def _enter_cs(self) -> None:
        assert self.host is not None
        self.in_cs = True
        self.host.emit(
            EventKind.CS_ENTER, tag=self.tag, requested=self._request_started
        )
        if self.cs_body is not None:
            self.cs_body()
        self.host.set_busy_for(self.cs_duration)
        self.host.call_later(self.cs_duration, self._exit_cs)

    def _exit_cs(self) -> None:
        assert self.host is not None
        if not self.in_cs:
            return  # defensive: already exited (e.g. state restored)
        self.in_cs = False
        self.host.emit(EventKind.CS_EXIT, tag=self.tag)
        self.request = RequestState.DONE
        self._request_started = False
        self.host.emit(EventKind.DECIDE, tag=self.tag)
        self._release()
        self._set_phase(4)

    def _release(self) -> None:
        """Tail of A3: notify the leader that the CS is free again."""
        if self.idl.min_id == self.ident:
            self.value = 1
            if not self._complete_topology:
                # Generalization deviation: a neighbour arbiter whose Value
                # currently favours this leader advances only on EXITCS.
                self.pif.request_broadcast(EXITCS)
        else:
            self.pif.request_broadcast(EXITCS)

    def _guard_a4(self) -> bool:
        return (
            self.phase == 4
            and not self.in_cs
            and self.pif.request is RequestState.DONE
        )

    def _action_a4(self) -> None:
        """A4 :: last wave decided -> back to phase 0."""
        self._set_phase(0)

    # -- PIF upcalls (A5-A10) ------------------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        assert self.host is not None
        if payload == ASK:
            # A5: YES iff Value favours the asker.
            if self.value == self.host.chan_num(sender):
                return YES
            return NO
        if payload == EXIT:
            # A6: restart from phase 0.
            self._set_phase(0)
            return OK
        if payload == EXITCS:
            # A7: the favoured process released; favour the next one.
            if self.value == self.host.chan_num(sender):
                self.value = (self.value + 1) % self._value_modulus
            elif (
                not self._complete_topology
                and self.value == 0
                and self.idl.min_id != self.ident
            ):
                # Generalization deviation: Value = 0 favours only the
                # process itself, which is meaningful solely at a
                # self-leader; any other arbiter escapes it.
                self.value = 1
            return OK
        return None  # garbage payload outside the alphabet

    def on_feedback(self, sender: int, payload: Any) -> None:
        if payload == YES:
            self.privileges[sender] = True  # A8
        elif payload == NO:
            self.privileges[sender] = False  # A9
        # A10 (OK): do nothing.

    # -- message alphabet (for the adversary) ------------------------------------------------------

    def broadcast_domain(self) -> Sequence[Any]:
        return (ASK, EXIT, EXITCS)

    def feedback_domain(self) -> Sequence[Any]:
        return (YES, NO, OK)

    # -- adversary / configuration interface ----------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self._request_started = False
        self.phase = rng.randint(0, 4)
        self.value = rng.randrange(self._value_modulus)
        for q in self.host.others:
            self.privileges[q] = rng.random() < 0.5
        # The arbitrary initial configuration may place a (non-requesting)
        # process inside the critical section (the paper's footnote 1);
        # such an occupant leaves after the normal CS duration.
        if rng.random() < 0.15:
            self.in_cs = True
            self.host.emit(EventKind.CS_ENTER, tag=self.tag, requested=False)
            self.host.set_busy_for(self.cs_duration)
            self.host.call_later(self.cs_duration, self._scramble_exit_cs)

    def _scramble_exit_cs(self) -> None:
        if not self.in_cs:
            return
        self.in_cs = False
        assert self.host is not None
        self.host.emit(EventKind.CS_EXIT, tag=self.tag)

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "request_started": self._request_started,
            "phase": self.phase,
            "value": self.value,
            "privileges": dict(self.privileges),
            "in_cs": self.in_cs,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self._request_started = state.get("request_started", False)
        self.phase = state["phase"]
        self.value = state["value"]
        self.privileges = dict(state["privileges"])
        self.in_cs = state["in_cs"]
