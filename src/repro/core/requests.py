"""External request drivers.

The paper's protocols are *functions* invoked by an external application:
the application sets ``Request ← Wait`` and, by Hypothesis 1, never
re-requests before ``Request = Done``.  :class:`RequestDriver` mechanizes
that application for any requestable layer (PIF, IDL, ME), recording issue
and completion times so experiments can report service latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ProtocolError
from repro.sim.determinism import driver_key
from repro.types import RequestState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runtime import Simulator

__all__ = ["CompletedRequest", "RequestDriver"]


@dataclass(frozen=True)
class CompletedRequest:
    """One serviced request, for latency accounting."""

    pid: int
    issued_at: int
    completed_at: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at


@dataclass
class _PerProcess:
    remaining: int
    next_issue_at: int
    issued_at: int | None = None  # time of the outstanding request, if any
    completed: list[CompletedRequest] = field(default_factory=list)


class RequestDriver:
    """Issues up to ``requests_per_process`` requests at each process.

    The driver polls every ``poll`` ticks.  It issues a request only when the
    layer's ``request`` variable is ``Done`` (Hypothesis 1) — in particular,
    from an arbitrary initial configuration it first waits out any
    never-started computation the scramble left behind (the Termination
    property guarantees that wait is finite).
    """

    def __init__(
        self,
        sim: "Simulator",
        tag: str,
        *,
        pids: Sequence[int] | None = None,
        requests_per_process: int = 1,
        first_at: int = 0,
        think_time: int = 2,
        poll: int = 1,
        payload: Callable[[int, int], Any] | None = None,
    ) -> None:
        if requests_per_process < 0:
            raise ProtocolError(
                f"requests_per_process must be >= 0, got {requests_per_process}"
            )
        self.sim = sim
        self.tag = tag
        self.think_time = think_time
        self.poll = max(1, poll)
        self.payload = payload
        self._per_process: dict[int, _PerProcess] = {
            pid: _PerProcess(remaining=requests_per_process, next_issue_at=first_at)
            for pid in sorted(pids if pids is not None else sim.pids)
        }
        self._issue_counter: dict[int, int] = {pid: 0 for pid in self._per_process}
        # The driven layers never change; look them up once, not per poll.
        self._layers = {pid: sim.layer(pid, tag) for pid in self._per_process}
        # Number of slots still unfinished (requests left to issue or an
        # outstanding one).  ``done`` sits in the engines' stop predicates —
        # evaluated after *every* event — so it must be O(1), not a scan.
        self._open = sum(
            1 for s in self._per_process.values() if s.remaining > 0
        )
        #: Tick at which the driver observed its last request serviced (None
        #: while unfinished) — the sharded engine's global stop time is the
        #: max of this over all shard drivers.
        self.done_at: int | None = None
        # Driver ticks run first within their tick (canonical class 0) —
        # identically in the serial engine and in every shard worker.
        sim.scheduler.post_at(first_at, self._tick, driver_key())

    # -- polling --------------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        layers = self._layers
        for pid, slot in self._per_process.items():
            if slot.issued_at is not None:
                # Outstanding request: complete it when the layer decides.
                if layers[pid].request is RequestState.DONE:
                    slot.completed.append(
                        CompletedRequest(pid, slot.issued_at, now)
                    )
                    slot.issued_at = None
                    slot.next_issue_at = now + self.think_time
                    if slot.remaining <= 0:
                        self._open -= 1
                continue
            if slot.remaining <= 0 or now < slot.next_issue_at:
                continue
            layer = layers[pid]
            if layer.request is not RequestState.DONE:
                continue  # Hypothesis 1: never re-request before Done
            self._issue(pid, layer)
            slot.remaining -= 1
            slot.issued_at = now
        if self._open:
            self.sim.scheduler.post_in(self.poll, self._tick, driver_key())
        elif self.done_at is None:
            self.done_at = now

    def _issue(self, pid: int, layer: Any) -> None:
        count = self._issue_counter[pid]
        self._issue_counter[pid] = count + 1
        if self.payload is not None:
            layer.external_request(self.payload(pid, count))
        else:
            layer.external_request()

    def _unfinished(self) -> bool:
        return self._open > 0

    # -- results ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every planned request has been issued and serviced."""
        return not self._open

    def completed(self, pid: int | None = None) -> list[CompletedRequest]:
        if pid is not None:
            return list(self._per_process[pid].completed)
        result: list[CompletedRequest] = []
        for slot in self._per_process.values():
            result.extend(slot.completed)
        result.sort(key=lambda r: r.completed_at)
        return result

    def total_completed(self) -> int:
        return sum(len(s.completed) for s in self._per_process.values())

    def total_planned(self) -> int:
        """Total requests this driver will issue over its lifetime
        (completed + outstanding + not yet issued)."""
        return sum(
            len(s.completed) + s.remaining + (1 if s.issued_at is not None else 0)
            for s in self._per_process.values()
        )

    def latencies(self) -> list[int]:
        return [r.latency for r in self.completed()]
