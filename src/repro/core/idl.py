"""Protocol IDL — Algorithm 2 of the paper (IDs-Learning).

A direct application of Protocol PIF: the initiator broadcasts the constant
payload ``IDL``; every process feeds back its identity; at decision time the
initiator knows every peer's ID (``ID-Tab``) and the minimum ID of the
system (``minID``).  Snap-stabilizing for Specification 2 (Theorem 3).

On a non-complete topology the wave spans the initiator's neighbourhood, so
``ID-Tab`` covers the neighbours and ``minID`` is the *closed neighbourhood*
minimum — the quantity ME's per-cluster arbitration consumes.  On the
paper's complete graph this is the global minimum, as in the paper.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["IdlLayer", "IDL_PAYLOAD"]

#: The only broadcast payload of the IDL instance.
IDL_PAYLOAD = "IDL"


class IdlLayer(Layer, PifClient):
    """One instance of Protocol IDL (Algorithm 2)."""

    def __init__(
        self,
        tag: str,
        ident: int | None = None,
        max_state: int | None = None,
    ) -> None:
        super().__init__(tag)
        pif_kwargs = {} if max_state is None else {"max_state": max_state}
        self.pif = PifLayer(f"{tag}/pif", client=self, **pif_kwargs)
        self._ident = ident
        # Variables of Algorithm 2.
        self.request: RequestState = RequestState.DONE
        self.min_id: int = 0
        self.id_tab: dict[int, int] = {}

    # -- wiring ----------------------------------------------------------------

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    def on_attach(self) -> None:
        assert self.host is not None
        if self._ident is None:
            self._ident = self.host.pid
        self.min_id = self._ident
        for q in self.host.others:
            self.id_tab.setdefault(q, 0)

    @property
    def ident(self) -> int:
        """This process's identity (defaults to its pid)."""
        assert self._ident is not None
        return self._ident

    # -- external interface -------------------------------------------------------

    def request_learn(self) -> None:
        """External request: learn all IDs and the minimum ID."""
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_learn

    # -- actions (Algorithm 2) -------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("A1", self._guard_a1, self._action_a1),
            Action("A2", self._guard_a2, self._action_a2),
        )

    def _guard_a1(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_a1(self) -> None:
        """A1 :: Request = Wait -> start; broadcast IDL via PIF."""
        assert self.host is not None
        self.request = RequestState.IN
        self.min_id = self.ident
        self.host.emit(EventKind.START, tag=self.tag)
        self.pif.request_broadcast(IDL_PAYLOAD)

    def _guard_a2(self) -> bool:
        return (
            self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
        )

    def _action_a2(self) -> None:
        """A2 :: computation done -> decide."""
        assert self.host is not None
        self.request = RequestState.DONE
        self.host.emit(
            EventKind.DECIDE, tag=self.tag, min_id=self.min_id, id_tab=dict(self.id_tab)
        )

    # -- PIF upcalls (A3, A4) -----------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        """A3 :: receive-brd⟨IDL⟩ from q -> feed back own identity."""
        if payload == IDL_PAYLOAD:
            return self.ident
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        """A4 :: receive-fck⟨qID⟩ from q -> record it, update the minimum.

        Feedback payloads are identities (integers); anything else is
        initial-configuration garbage outside the instance's alphabet and is
        ignored.
        """
        if isinstance(payload, int):
            self.id_tab[sender] = payload
            self.min_id = min(self.min_id, payload)

    # -- message alphabet (for the adversary) ----------------------------------------------

    def broadcast_domain(self) -> Sequence[Any]:
        return (IDL_PAYLOAD,)

    def feedback_domain(self) -> Sequence[Any]:
        assert self.host is not None
        return tuple(self.host.sim.pids)

    # -- adversary / configuration interface --------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        candidates = list(self.host.sim.pids) + [rng.randint(-10, 10**6)]
        self.min_id = rng.choice(candidates)
        for q in self.host.others:
            self.id_tab[q] = rng.choice(candidates)

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "min_id": self.min_id,
            "id_tab": dict(self.id_tab),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.min_id = state["min_id"]
        self.id_tab = dict(state["id_tab"])
