"""Protocol PIF — Algorithm 1 of the paper.

Snap-stabilizing Propagation of Information with Feedback for
fully-connected message-passing systems with known bounded channel capacity.

The handshake: for every peer ``q``, the initiator ``p`` drives a flag
``State_p[q]`` from 0 to ``max_state`` (4 for single-message-capacity
channels).  ``p`` repeatedly sends
``⟨PIF, B-Mes_p, F-Mes_p[q], State_p[q], NeigState_p[q]⟩`` and increments
``State_p[q]`` only on receiving a message echoing exactly its current flag.
Because at most one stale message per direction can exist initially (plus one
stale ``NeigState`` at the peer), at most three increments can be spurious:
the 3 → 4 step is guaranteed causal (Lemma 4), which makes the protocol
snap-stabilizing (Theorem 2).

The five-valued flag domain is configurable via ``max_state``:

* ``max_state = capacity + 3`` is the safe choice for capacity-``c`` channels
  (the paper's "extension to an arbitrary but known bounded message capacity
  is straightforward");
* smaller domains are accepted so the E8a ablation can demonstrate how
  safety breaks without enough flag values.

Clients receive the paper's events as synchronous upcalls:
``on_broadcast`` (receive-brd; the return value becomes ``F-Mes``),
``on_feedback`` (receive-fck) and ``on_decide``.

The layer consumes its peer set through the host's local channel numbering
(``host.others``), never through an ``n - 1`` assumption: on a pluggable
non-complete topology a wave spans exactly the initiator's neighbourhood
(the handshake argument is per-channel, so snap-stabilization is preserved
edge by edge); on the paper's complete graph that is all other processes.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.messages import PifMessage
from repro.errors import ProtocolError
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["PifClient", "PifLayer", "DEFAULT_MAX_STATE"]

#: Flag domain upper bound for single-message-capacity channels: {0..4}.
DEFAULT_MAX_STATE = 4


class PifClient:
    """Base class / interface for applications layered over Protocol PIF.

    Subclasses override the upcalls they care about.  ``broadcast_domain`` /
    ``feedback_domain`` describe the instance's message alphabet; the
    adversary draws arbitrary-but-well-typed garbage from them.
    """

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        """receive-brd⟨payload⟩ from ``sender``; return the feedback value.

        Returning ``None`` leaves ``F-Mes[sender]`` unchanged.
        """
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        """receive-fck⟨payload⟩ from ``sender``."""

    def on_decide(self) -> None:
        """The computation this process started has terminated."""

    def broadcast_domain(self) -> Sequence[Any]:
        """Possible broadcast payloads of this instance."""
        return ("m0", "m1")

    def feedback_domain(self) -> Sequence[Any]:
        """Possible feedback payloads of this instance."""
        return ("f0", "f1")


class PifLayer(Layer):
    """One instance of Protocol PIF (Algorithm 1)."""

    def __init__(
        self,
        tag: str,
        client: PifClient | None = None,
        max_state: int = DEFAULT_MAX_STATE,
    ) -> None:
        super().__init__(tag)
        if max_state < 1:
            raise ProtocolError(f"max_state must be >= 1, got {max_state}")
        self.client = client if client is not None else PifClient()
        self.max_state = max_state
        # Variables of Algorithm 1 (initial values form the quiescent
        # configuration; snap-stabilization holds from *any* values).
        self.request: RequestState = RequestState.DONE
        self.b_mes: Any = None
        self.f_mes: dict[int, Any] = {}
        self.state: dict[int, int] = {}
        self.neig_state: dict[int, int] = {}
        # Verification-only: identifies started computations in the trace.
        self.wave_seq = 0

    # -- wiring ---------------------------------------------------------------

    def on_attach(self) -> None:
        assert self.host is not None
        # Comprehensions instead of per-key setdefault: attach runs for
        # every layer of every host, so this is simulator-construction cost.
        others = self.host.others
        f_mes, state, neig = self.f_mes, self.state, self.neig_state
        self.f_mes = {q: f_mes.get(q) for q in others}
        self.state = {q: state.get(q, self.max_state) for q in others}
        self.neig_state = {q: neig.get(q, 0) for q in others}

    # -- external interface -----------------------------------------------------

    def request_broadcast(self, payload: Any) -> None:
        """External request: broadcast ``payload`` with feedback.

        Sets ``B-Mes`` and switches ``Request`` to Wait; the computation
        starts at the next activation (action A1).
        """
        self.b_mes = payload
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag, payload=payload)

    # Unified name used by the request driver.
    external_request = request_broadcast

    @property
    def wave_id(self) -> tuple[int, int]:
        """Identifier of the current/last started computation (debug only)."""
        assert self.host is not None
        return (self.host.pid, self.wave_seq)

    # -- actions (Algorithm 1) -----------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("A1", self._guard_a1, self._action_a1),
            Action("A2", self._guard_a2, self._action_a2),
        )

    def _guard_a1(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_a1(self) -> None:
        """A1 :: Request = Wait -> start the computation."""
        assert self.host is not None
        self.request = RequestState.IN
        self.wave_seq += 1
        for q in self.host.others:
            self.state[q] = 0
        self.host.emit(
            EventKind.START, tag=self.tag, wave=self.wave_id, payload=self.b_mes
        )

    def _guard_a2(self) -> bool:
        return self.request is RequestState.IN

    def _action_a2(self) -> None:
        """A2 :: Request = In -> terminate or (re)send to laggards."""
        assert self.host is not None
        if all(self.state[q] == self.max_state for q in self.host.others):
            self.request = RequestState.DONE
            self.host.emit(EventKind.DECIDE, tag=self.tag, wave=self.wave_id)
            self.client.on_decide()
            return
        for q in self.host.others:
            if self.state[q] != self.max_state:
                self._send_to(q)

    def _send_to(self, q: int) -> None:
        assert self.host is not None
        self.host.send(
            q,
            PifMessage(
                tag=self.tag,
                broadcast=self.b_mes,
                feedback=self.f_mes[q],
                state=self.state[q],
                echo=self.neig_state[q],
                debug_wave=self.wave_id,
            ),
        )

    # -- receive action (A3) -----------------------------------------------------

    def on_message(self, sender: int, msg: PifMessage) -> None:
        """A3 :: receive ⟨PIF, B, F, qState, pState⟩ from q."""
        assert self.host is not None
        q = sender
        if q not in self.state:
            return  # message from an unknown process: ignore
        brd_flag = self.max_state - 1

        # Generate the receive-brd event exactly once per peer broadcast:
        # when NeigState switches to max_state - 1.
        if self.neig_state[q] != brd_flag and msg.state == brd_flag:
            self.host.emit(
                EventKind.RECEIVE_BRD,
                tag=self.tag,
                sender=q,
                payload=msg.broadcast,
                wave=msg.debug_wave,
            )
            feedback = self.client.on_broadcast(q, msg.broadcast)
            if feedback is not None:
                self.f_mes[q] = feedback

        self.neig_state[q] = msg.state

        if self.state[q] == msg.echo and self.state[q] < self.max_state:
            self.state[q] += 1
            if self.state[q] == self.max_state:
                self.host.emit(
                    EventKind.RECEIVE_FCK,
                    tag=self.tag,
                    sender=q,
                    payload=msg.feedback,
                    wave=self.wave_id,
                )
                self.client.on_feedback(q, msg.feedback)

        if msg.state < self.max_state:
            self._send_to(q)

    # -- adversary / configuration interface ----------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.b_mes = rng.choice(list(self.client.broadcast_domain()))
        for q in self.host.others:
            self.f_mes[q] = rng.choice(list(self.client.feedback_domain()))
            self.state[q] = rng.randint(0, self.max_state)
            self.neig_state[q] = rng.randint(0, self.max_state)

    def garbage_message(self, rng: random.Random) -> PifMessage:
        return PifMessage(
            tag=self.tag,
            broadcast=rng.choice(list(self.client.broadcast_domain())),
            feedback=rng.choice(list(self.client.feedback_domain())),
            state=rng.randint(0, self.max_state),
            echo=rng.randint(0, self.max_state),
            debug_wave=None,
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "b_mes": self.b_mes,
            "f_mes": dict(self.f_mes),
            "state": dict(self.state),
            "neig_state": dict(self.neig_state),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.b_mes = state["b_mes"]
        self.f_mes = dict(state["f_mes"])
        self.state = dict(state["state"])
        self.neig_state = dict(state["neig_state"])
