"""Message formats.

The paper uses a single message type ``⟨PIF, B-Mes, F-Mes, State, NeigState⟩``
to manage all PIF computations of one protocol instance
(Section 4.1).  :class:`PifMessage` mirrors it field by field:

* ``broadcast`` — the sender's broadcast payload (``B-Mes_p``),
* ``feedback`` — the sender's feedback for the receiver (``F-Mes_p[q]``),
* ``state`` — the sender's handshake flag for its own broadcast
  (``State_p[q]``),
* ``echo`` — the sender's view of the receiver's flag (``NeigState_p[q]``).

``debug_wave`` is **not part of the protocol**: it is verification-only
metadata identifying which started computation a message belongs to, so the
specification checkers can tell genuine broadcasts from initial garbage.  No
protocol action ever reads it.
"""

from __future__ import annotations

from typing import Any

__all__ = ["PifMessage"]


class PifMessage:
    """The single message type of Protocol PIF (Algorithm 1).

    A hand-rolled ``__slots__`` value class rather than a frozen dataclass:
    every protocol send allocates one of these (they are the bulk of all
    allocations in a trial), and the dataclass-generated ``__init__`` —
    six ``object.__setattr__`` calls for frozen-ness — was a top line of
    the trial profile.  Value semantics (field equality and hashing) are
    preserved; no engine or protocol code ever mutates a message after
    construction.
    """

    __slots__ = ("tag", "broadcast", "feedback", "state", "echo", "debug_wave")

    def __init__(
        self,
        tag: str,
        broadcast: Any,
        feedback: Any,
        state: int,
        echo: int,
        debug_wave: "tuple[int, int] | None" = None,
    ) -> None:
        self.tag = tag
        self.broadcast = broadcast
        self.feedback = feedback
        self.state = state
        self.echo = echo
        self.debug_wave = debug_wave

    def _fields(self) -> tuple:
        return (
            self.tag, self.broadcast, self.feedback,
            self.state, self.echo, self.debug_wave,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is PifMessage:
            return self._fields() == other._fields()  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PIF⟨{self.tag}, b={self.broadcast!r}, f={self.feedback!r}, "
            f"s={self.state}, e={self.echo}⟩"
        )
