"""Message formats.

The paper uses a single message type ``⟨PIF, B-Mes, F-Mes, State, NeigState⟩``
to manage all PIF computations of one protocol instance
(Section 4.1).  :class:`PifMessage` mirrors it field by field:

* ``broadcast`` — the sender's broadcast payload (``B-Mes_p``),
* ``feedback`` — the sender's feedback for the receiver (``F-Mes_p[q]``),
* ``state`` — the sender's handshake flag for its own broadcast
  (``State_p[q]``),
* ``echo`` — the sender's view of the receiver's flag (``NeigState_p[q]``).

``debug_wave`` is **not part of the protocol**: it is verification-only
metadata identifying which started computation a message belongs to, so the
specification checkers can tell genuine broadcasts from initial garbage.  No
protocol action ever reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["PifMessage"]


@dataclass(frozen=True, slots=True)
class PifMessage:
    """The single message type of Protocol PIF (Algorithm 1)."""

    tag: str
    broadcast: Any
    feedback: Any
    state: int
    echo: int
    debug_wave: tuple[int, int] | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PIF⟨{self.tag}, b={self.broadcast!r}, f={self.feedback!r}, "
            f"s={self.state}, e={self.echo}⟩"
        )
