"""The paper's protocols: PIF (Alg. 1), IDL (Alg. 2), ME (Alg. 3)."""

from repro.core.idl import IDL_PAYLOAD, IdlLayer
from repro.core.messages import PifMessage
from repro.core.mutex import ASK, EXIT, EXITCS, NO, OK, YES, MutexLayer
from repro.core.pif import DEFAULT_MAX_STATE, PifClient, PifLayer
from repro.core.requests import CompletedRequest, RequestDriver

__all__ = [
    "ASK",
    "CompletedRequest",
    "DEFAULT_MAX_STATE",
    "EXIT",
    "EXITCS",
    "IDL_PAYLOAD",
    "IdlLayer",
    "MutexLayer",
    "NO",
    "OK",
    "PifClient",
    "PifLayer",
    "PifMessage",
    "RequestDriver",
    "YES",
]
