"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""


class SpecError(SimulationError):
    """A :class:`~repro.engine.TrialSpec` cannot be executed as written.

    The uniform error for every axis/backend mismatch — ``--fault-plan``
    on serial, ``--sync`` on async, ``--hosts`` on sharded, an unknown
    engine or transport name, an out-of-range axis value.  Carries the
    offending ``field`` and the ``backend`` that rejected it so callers
    (and tests) never have to pattern-match free-form prose.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        field: str | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.field = field


class SchedulerError(SimulationError):
    """Misuse of the discrete-event scheduler (e.g. scheduling in the past)."""


class ChannelError(SimulationError):
    """Misuse of a communication channel."""


class ConfigurationError(SimulationError):
    """A global configuration could not be captured or restored."""


class HorizonExceeded(SimulationError):
    """A driven trial did not complete within its time budget.

    Carries the partial progress so callers (and CI logs) can tell a
    genuinely stuck system from one that merely needs a bigger budget —
    e.g. ME on large rings, whose per-round cost grows with the ring
    diameter (see docs/engine.md).
    """

    def __init__(
        self,
        message: str,
        *,
        horizon: int,
        served: int | None = None,
        requested: int | None = None,
        rounds: int | None = None,
        window: int | None = None,
    ) -> None:
        parts = [message, f"horizon={horizon}"]
        if served is not None and requested is not None:
            parts.append(f"served {served}/{requested} requests")
        if rounds is not None:
            parts.append(f"{rounds} arbitration rounds granted")
        if window is not None:
            parts.append(f"sync window={window} ticks")
        super().__init__("; ".join(parts))
        self.horizon = horizon
        self.served = served
        self.requested = requested
        self.rounds = rounds
        self.window = window


class WorkerCrashed(SimulationError):
    """A cluster worker interpreter died mid-trial.

    Raised by the coordinator's crash *detection* path (Popen polling +
    CONTROL-channel EOF, see :mod:`repro.net.cluster`) within a poll
    interval of the death — never by timing out.  Carries the shard id,
    the barrier round being advanced when the death was noticed, the
    process exit code, and a tail of the worker's captured stderr so the
    diagnosis lands in the exception message rather than a hung CI job.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        round: int | None = None,
        phase: str | None = None,
        exit_code: int | None = None,
        stderr_tail: str | None = None,
    ) -> None:
        parts = [f"{message} (shard {shard}"]
        if phase is not None:
            parts.append(f", during {phase}")
        if round is not None:
            parts.append(f", round {round}")
        if exit_code is not None:
            parts.append(f", exit code {exit_code}")
        parts.append(")")
        text = "".join(parts)
        if stderr_tail:
            text += "\n--- worker stderr tail ---\n" + stderr_tail
        super().__init__(text)
        self.shard = shard
        self.round = round
        self.phase = phase
        self.exit_code = exit_code
        self.stderr_tail = stderr_tail


class ProtocolError(ReproError):
    """A protocol layer was misused (bad wiring, bad request sequence)."""


class SpecificationViolation(ReproError):
    """A specification checker found a violated property.

    Checkers normally *return* verdict objects; this exception is raised only
    by the ``require_*`` convenience wrappers.
    """

    def __init__(self, property_name: str, detail: str) -> None:
        super().__init__(f"{property_name}: {detail}")
        self.property_name = property_name
        self.detail = detail


class ImpossibilityConstructionError(ReproError):
    """The Theorem-1 adversary construction could not be carried out.

    On bounded-capacity channels this is the *expected* outcome: the recorded
    message sequences do not fit into the channels, which is exactly the
    observation the paper uses to escape the impossibility result.
    """
