"""Barrier / phase synchronization on top of Protocol PIF.

Every process participating in barrier ``k`` broadcasts ``(BAR, k)``;
a process crosses the barrier once (a) its own wave decided — so everyone
saw it reach ``k`` — and (b) it observed every peer at phase ``>= k``
(via the peers' broadcasts or their feedback).  Related to the
neighborhood-synchronizer line of snap-stabilizing work the paper cites.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["BarrierLayer", "BAR"]

BAR = "BAR"


class BarrierLayer(Layer, PifClient):
    """All-to-all phase barrier built from per-process PIF waves."""

    def __init__(self, tag: str = "bar") -> None:
        super().__init__(tag)
        self.pif = PifLayer(f"{tag}/pif", client=self)
        self.request: RequestState = RequestState.DONE
        #: Number of barriers this process has crossed.
        self.phase = 0
        #: Highest phase observed per peer.
        self.peer_phase: dict[int, int] = {}

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    def on_attach(self) -> None:
        assert self.host is not None
        for q in self.host.others:
            self.peer_phase.setdefault(q, 0)

    # -- external interface ---------------------------------------------------------

    def request_barrier(self) -> None:
        """Arrive at the next barrier; ``request`` turns Done when crossed."""
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_barrier

    # -- actions -----------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("B1", self._guard_start, self._action_start),
            Action("B2", self._guard_cross, self._action_cross),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.host.emit(EventKind.START, tag=self.tag, phase=self.phase + 1)
        self.pif.request_broadcast((BAR, self.phase + 1))

    def _guard_cross(self) -> bool:
        assert self.host is not None
        return (
            self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
            and all(self.peer_phase[q] >= self.phase + 1 for q in self.host.others)
        )

    def _action_cross(self) -> None:
        assert self.host is not None
        self.phase += 1
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag, phase=self.phase)

    # -- PIF upcalls ----------------------------------------------------------------------

    def _observe(self, sender: int, phase: Any) -> None:
        if isinstance(phase, int):
            self.peer_phase[sender] = max(self.peer_phase.get(sender, 0), phase)

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == BAR:
            self._observe(sender, payload[1])
            # Feed back our own arrival so laggards' observations converge.
            own = self.phase + 1 if self.request is RequestState.IN else self.phase
            return (BAR, own)
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == BAR:
            self._observe(sender, payload[1])

    def broadcast_domain(self) -> Sequence[Any]:
        return ((BAR, 1), (BAR, 2))

    def feedback_domain(self) -> Sequence[Any]:
        return ((BAR, 0), (BAR, 1))

    # -- adversary interface --------------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.phase = rng.randint(0, 3)
        for q in self.host.others:
            self.peer_phase[q] = rng.randint(0, 3)

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "phase": self.phase,
            "peer_phase": dict(self.peer_phase),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.phase = state["phase"]
        self.peer_phase = dict(state["peer_phase"])
