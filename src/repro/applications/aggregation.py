"""Snap-stabilizing aggregation (reduce) on top of Protocol PIF.

One wave computes ``reduce(op, values)`` over a per-process value provider:
the initiator broadcasts an aggregation request; every process feeds back
its current value; the initiator folds the answers.  IDs-Learning
(Algorithm 2) is precisely the instance ``op = min`` over identities — this
layer generalizes it to arbitrary associative operators (sum, max, min,
...), the way PIF-based protocols are used for global function computation.

On the paper's complete graph one wave aggregates over the whole system; on
a pluggable topology it aggregates over the initiator's *closed
neighbourhood* (the wave's reach) — :func:`run_aggregation_demo` reports
both the result and the covered processes so the scope is explicit.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["AggregationLayer", "AGG", "run_aggregation_demo"]

AGG = "AGG"

ValueProvider = Callable[[], float]


class AggregationLayer(Layer, PifClient):
    """Computes a global reduction in one confirmed wave."""

    def __init__(
        self,
        tag: str = "agg",
        value_provider: ValueProvider | None = None,
        op: Callable[[float, float], float] = lambda a, b: a + b,
    ) -> None:
        super().__init__(tag)
        self.pif = PifLayer(f"{tag}/pif", client=self)
        self.value_provider: ValueProvider = (
            value_provider if value_provider is not None else (lambda: 0.0)
        )
        self.op = op
        self.request: RequestState = RequestState.DONE
        self.collected: dict[int, float] = {}
        #: Result of the last completed aggregation (None before the first).
        self.result: float | None = None

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    # -- external interface ---------------------------------------------------

    def request_aggregate(self) -> None:
        """Start a global reduction; ``result`` is valid once Done."""
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_aggregate

    # -- actions -----------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("G1", self._guard_start, self._action_start),
            Action("G2", self._guard_decide, self._action_decide),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.collected = {}
        self.host.emit(EventKind.START, tag=self.tag)
        self.pif.request_broadcast(AGG)

    def _guard_decide(self) -> bool:
        return (
            self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
        )

    def _action_decide(self) -> None:
        assert self.host is not None
        accumulator = float(self.value_provider())
        for q in sorted(self.collected):
            accumulator = self.op(accumulator, self.collected[q])
        self.result = accumulator
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag, result=accumulator)

    # -- PIF upcalls ------------------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        if payload == AGG:
            return ("VAL", float(self.value_provider()))
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "VAL"
            and isinstance(payload[1], float)
        ):
            self.collected[sender] = payload[1]

    def broadcast_domain(self) -> Sequence[Any]:
        return (AGG,)

    def feedback_domain(self) -> Sequence[Any]:
        return (("VAL", 0.0), ("VAL", 1.0), ("VAL", -3.5))

    # -- adversary interface ---------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.collected = {
            q: rng.uniform(-100, 100)
            for q in self.host.others
            if rng.random() < 0.5
        }
        self.result = rng.uniform(-100, 100) if rng.random() < 0.5 else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "collected": dict(self.collected),
            "result": self.result,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.collected = dict(state["collected"])
        self.result = state["result"]


_OPS: dict[str, Callable[[float, float], float]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


def run_aggregation_demo(
    n: int = 4,
    *,
    topology: "object | str | None" = None,
    op: str = "sum",
    seed: int = 0,
    initiator: int | None = None,
    scramble: bool = True,
    horizon: int = 500_000,
) -> dict[str, Any]:
    """One aggregation wave over ``value(p) = p * 10``; returns a result row.

    ``topology`` takes a Topology, a spec string (``"ring"``, ``"gnp:0.3"``,
    ...), or None for the complete graph.  The wave covers the initiator's
    closed neighbourhood; the row records that scope alongside the result
    and the ground-truth expectation over it.
    """
    from repro.errors import SimulationError
    from repro.sim.runtime import Simulator

    if op not in _OPS:
        raise SimulationError(f"unknown aggregation op {op!r}; one of {sorted(_OPS)}")
    fold = _OPS[op]
    sim = Simulator(
        n,
        lambda host: host.register(
            AggregationLayer(
                "agg", value_provider=lambda pid=host.pid: float(pid * 10),
                op=fold,
            )
        ),
        topology=topology,
        seed=seed,
    )
    if scramble:
        sim.scramble(seed=seed ^ 0x5EED)
    pid = initiator if initiator is not None else sim.pids[0]
    layer = sim.layer(pid, "agg")
    layer.request_aggregate()
    done = sim.run(
        horizon,
        until=lambda s: layer.request is RequestState.DONE and layer.result is not None,
    )
    if not done:
        raise SimulationError(f"aggregation wave never decided within t={horizon}")
    covered = (pid,) + sim.network.peers_of(pid)
    values = [float(q * 10) for q in covered]
    expected = values[0]
    for value in values[1:]:
        expected = fold(expected, value)
    return {
        "topology": sim.topology.name,
        "initiator": pid,
        "op": op,
        "covered": len(covered),
        "result": layer.result,
        "expected": expected,
        "correct": layer.result == expected,
        "time": sim.now,
        "messages": sim.stats.sent,
    }
