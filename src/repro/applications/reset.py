"""Snap-stabilizing distributed reset on top of Protocol PIF.

When requested, the initiator broadcasts ``RESET``; every process runs its
local reset handler on receipt; at the decision every process is known to
have reset.  A classic PIF application (the paper cites Reset first among
the protocols solvable with PIF).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["ResetLayer", "RESET"]

RESET = "RESET"

ResetHandler = Callable[[], None]


class ResetLayer(Layer, PifClient):
    """Resets every process's application state in one confirmed wave."""

    def __init__(
        self,
        tag: str = "reset",
        handler: ResetHandler | None = None,
    ) -> None:
        super().__init__(tag)
        self.pif = PifLayer(f"{tag}/pif", client=self)
        self.handler: ResetHandler = handler if handler is not None else (lambda: None)
        self.request: RequestState = RequestState.DONE
        #: Number of resets this process performed (local observability).
        self.reset_count = 0

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    # -- external interface ---------------------------------------------------------

    def request_reset(self) -> None:
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_reset

    # -- actions -----------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("R1", self._guard_start, self._action_start),
            Action("R2", self._guard_decide, self._action_decide),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.host.emit(EventKind.START, tag=self.tag)
        self.pif.request_broadcast(RESET)

    def _guard_decide(self) -> bool:
        return (
            self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
        )

    def _action_decide(self) -> None:
        assert self.host is not None
        # The initiator resets itself at the decision: by the Correctness
        # property every other process already reset during this wave.
        self._do_reset()
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag)

    def _do_reset(self) -> None:
        assert self.host is not None
        self.reset_count += 1
        self.handler()
        self.host.emit(EventKind.NOTE, tag=self.tag, what="reset")

    # -- PIF upcalls -----------------------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        if payload == RESET:
            self._do_reset()
            return "RESET-OK"
        return None

    def broadcast_domain(self) -> Sequence[Any]:
        return (RESET,)

    def feedback_domain(self) -> Sequence[Any]:
        return ("RESET-OK",)

    # -- adversary interface ------------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        self.request = rng.choice(list(RequestState))

    def snapshot(self) -> dict[str, Any]:
        return {"request": self.request, "reset_count": self.reset_count}

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.reset_count = state["reset_count"]
