"""Termination detection on top of Protocol PIF (two-wave stability test).

The detector repeatedly runs PIF waves that collect, from every process,
the triple ``(idle, sent, received)`` describing the observed application.
Termination is announced when two *consecutive* waves both report every
process idle with globally matched and unchanged message counters — the
classic double-collect stability argument: the application cannot have been
active between two identical passive global snapshots.

The observed application is abstracted by an :class:`ObservedComputation`
(idle flag + counters); tests drive a synthetic diffusing computation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["ObservedComputation", "TerminationDetectorLayer", "PROBE"]

PROBE = "TD-PROBE"


@dataclass
class ObservedComputation:
    """The application-side counters the detector samples."""

    idle: bool = True
    sent: int = 0
    received: int = 0

    def sample(self) -> tuple[bool, int, int]:
        return (self.idle, self.sent, self.received)


class TerminationDetectorLayer(Layer, PifClient):
    """Announces termination after two identical all-idle collections."""

    def __init__(
        self,
        tag: str = "td",
        computation: ObservedComputation | None = None,
    ) -> None:
        super().__init__(tag)
        self.pif = PifLayer(f"{tag}/pif", client=self)
        self.computation = computation if computation is not None else ObservedComputation()
        self.request: RequestState = RequestState.DONE
        self.detecting = False
        self.terminated = False
        self.waves_used = 0
        self._collected: dict[int, tuple[bool, int, int]] = {}
        self._previous_round: tuple[int, int] | None = None  # (sent, received)

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    # -- external interface ---------------------------------------------------------

    def request_detection(self) -> None:
        """Start probing; ``terminated`` turns True when detection concludes."""
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_detection

    # -- actions ----------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("D1", self._guard_start, self._action_start),
            Action("D2", self._guard_round_done, self._action_round_done),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.detecting = True
        self.terminated = False
        self.waves_used = 0
        self._previous_round = None
        self.host.emit(EventKind.START, tag=self.tag)
        self._launch_wave()

    def _launch_wave(self) -> None:
        self._collected = {}
        self.waves_used += 1
        self.pif.request_broadcast(PROBE)

    def _guard_round_done(self) -> bool:
        return (
            self.detecting
            and self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
        )

    def _action_round_done(self) -> None:
        assert self.host is not None
        samples = dict(self._collected)
        samples[self.host.pid] = self.computation.sample()
        all_idle = all(s[0] for s in samples.values())
        total_sent = sum(s[1] for s in samples.values())
        total_received = sum(s[2] for s in samples.values())
        stable = (
            all_idle
            and total_sent == total_received
            and self._previous_round == (total_sent, total_received)
        )
        if stable:
            self.terminated = True
            self.detecting = False
            self.request = RequestState.DONE
            self.host.emit(
                EventKind.DECIDE, tag=self.tag, waves=self.waves_used,
                sent=total_sent, received=total_received,
            )
            return
        self._previous_round = (
            (total_sent, total_received) if all_idle and total_sent == total_received
            else None
        )
        self._launch_wave()

    # -- PIF upcalls ----------------------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        if payload == PROBE:
            return ("TD", self.computation.sample())
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "TD":
            sample = payload[1]
            if isinstance(sample, tuple) and len(sample) == 3:
                self._collected[sender] = sample

    def broadcast_domain(self) -> Sequence[Any]:
        return (PROBE,)

    def feedback_domain(self) -> Sequence[Any]:
        return (("TD", (True, 0, 0)), ("TD", (False, 1, 0)))

    # -- adversary interface --------------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        self.request = rng.choice(list(RequestState))
        self.detecting = rng.random() < 0.5
        self.terminated = rng.random() < 0.5
        self._previous_round = None
        self._collected = {}

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "detecting": self.detecting,
            "terminated": self.terminated,
            "waves_used": self.waves_used,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.detecting = state["detecting"]
        self.terminated = state["terminated"]
        self.waves_used = state["waves_used"]
