"""Snap-stabilizing global snapshot on top of Protocol PIF.

When requested, the initiator broadcasts ``SNAP``; every process feeds back
its current application state; at the decision the initiator holds a
complete state map.  The snapshot is *consistent in the PIF sense*: every
collected state was read after the process received this wave's broadcast
and before the initiator decided (the paper's Correctness + Decision
properties).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.core.pif import PifClient, PifLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["SnapshotLayer", "SNAP"]

SNAP = "SNAP"

StateProvider = Callable[[], Any]


class SnapshotLayer(Layer, PifClient):
    """Collects one state per process via a single PIF wave."""

    def __init__(
        self,
        tag: str = "snap",
        state_provider: StateProvider | None = None,
    ) -> None:
        super().__init__(tag)
        self.pif = PifLayer(f"{tag}/pif", client=self)
        self.state_provider: StateProvider = (
            state_provider if state_provider is not None else lambda: None
        )
        self.request: RequestState = RequestState.DONE
        self.collected: dict[int, Any] = {}
        #: The last completed snapshot: pid -> state (including self).
        self.snapshot_result: dict[int, Any] | None = None

    def sublayers(self) -> Sequence[Layer]:
        return (self.pif,)

    # -- external interface ---------------------------------------------------------

    def request_snapshot(self) -> None:
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_snapshot

    # -- actions -----------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("S1", self._guard_start, self._action_start),
            Action("S2", self._guard_decide, self._action_decide),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.collected = {}
        self.host.emit(EventKind.START, tag=self.tag)
        self.pif.request_broadcast(SNAP)

    def _guard_decide(self) -> bool:
        return (
            self.request is RequestState.IN
            and self.pif.request is RequestState.DONE
        )

    def _action_decide(self) -> None:
        assert self.host is not None
        result = dict(self.collected)
        result[self.host.pid] = self.state_provider()
        self.snapshot_result = result
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag, snapshot=result)

    # -- PIF upcalls -----------------------------------------------------------------------

    def on_broadcast(self, sender: int, payload: Any) -> Any | None:
        if payload == SNAP:
            return ("STATE", self.state_provider())
        return None

    def on_feedback(self, sender: int, payload: Any) -> None:
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "STATE":
            self.collected[sender] = payload[1]

    def broadcast_domain(self) -> Sequence[Any]:
        return (SNAP,)

    def feedback_domain(self) -> Sequence[Any]:
        return (("STATE", 0), ("STATE", 1), ("STATE", "garbage"))

    # -- adversary interface ------------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.collected = {
            q: rng.choice([0, 1, "garbage"])
            for q in self.host.others
            if rng.random() < 0.5
        }
        self.snapshot_result = None

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "collected": dict(self.collected),
            "snapshot_result": (
                dict(self.snapshot_result) if self.snapshot_result else None
            ),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.collected = dict(state["collected"])
        result = state["snapshot_result"]
        self.snapshot_result = dict(result) if result else None
