"""Snap-stabilizing leader election on top of Protocol IDL.

The paper motivates PIF as the engine behind leader election (Section 4.1).
With IDs-Learning, election is one wave: when requested, the initiator
learns the minimum identity — the leader — and every peer's identity.
Because IDL is snap-stabilizing, any *requested* election returns the true
leader regardless of the initial configuration.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.idl import IdlLayer
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["LeaderElectionLayer"]


class LeaderElectionLayer(Layer):
    """One-wave leader election: leader = process with the minimum identity."""

    def __init__(self, tag: str = "elect", ident: int | None = None) -> None:
        super().__init__(tag)
        self.idl = IdlLayer(f"{tag}/idl", ident=ident)
        self.request: RequestState = RequestState.DONE
        self.leader: int | None = None

    def sublayers(self) -> Sequence[Layer]:
        return (self.idl,)

    # -- external interface ------------------------------------------------------

    def request_election(self) -> None:
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_election

    @property
    def is_leader(self) -> bool:
        """True iff the last completed election elected this process."""
        return self.leader == self.idl.ident

    # -- actions -------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("E1", self._guard_start, self._action_start),
            Action("E2", self._guard_decide, self._action_decide),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        assert self.host is not None
        self.request = RequestState.IN
        self.host.emit(EventKind.START, tag=self.tag)
        self.idl.request_learn()

    def _guard_decide(self) -> bool:
        return (
            self.request is RequestState.IN
            and self.idl.request is RequestState.DONE
        )

    def _action_decide(self) -> None:
        assert self.host is not None
        self.leader = self.idl.min_id
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag, leader=self.leader)

    # -- adversary interface -------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.leader = rng.choice(list(self.host.sim.pids) + [None, -1])

    def snapshot(self) -> dict[str, Any]:
        return {"request": self.request, "leader": self.leader}

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.leader = state["leader"]
