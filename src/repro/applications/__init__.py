"""PIF-based applications: the protocols the paper says PIF enables."""

from repro.applications.aggregation import AGG, AggregationLayer
from repro.applications.leader_election import LeaderElectionLayer
from repro.applications.phase_sync import BAR, BarrierLayer
from repro.applications.reset import RESET, ResetLayer
from repro.applications.snapshot import SNAP, SnapshotLayer
from repro.applications.termination_detection import (
    PROBE,
    ObservedComputation,
    TerminationDetectorLayer,
)

__all__ = [
    "AGG",
    "AggregationLayer",
    "BAR",
    "BarrierLayer",
    "LeaderElectionLayer",
    "ObservedComputation",
    "PROBE",
    "RESET",
    "ResetLayer",
    "SNAP",
    "SnapshotLayer",
    "TerminationDetectorLayer",
]
