"""Summary statistics for experiment measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "p50": self.p50,
            "p95": self.p95,
            "min": self.minimum,
            "max": self.maximum,
        }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample; raises ValueError on empty input."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 50),
        p95=_percentile(ordered, 95),
        minimum=ordered[0],
        maximum=ordered[-1],
    )
