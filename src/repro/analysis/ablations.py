"""E8 — ablations: why the paper's design choices are load-bearing.

* **E8a** (:func:`run_flag_ablation`): shrink the handshake flag domain below
  {0..4}.  A crafted adversarial initial configuration (one garbage message
  per direction plus one stale ``NeigState``) makes the initiator decide
  without the peer ever receiving its broadcast — for any ``max_state < 4``.
  With the paper's 5-valued domain the same adversary is harmless (Lemma 4).
* **E8b** (:func:`run_modulus_ablation`): keep the paper's literal
  ``Value ← (Value+1) mod (n+1)`` in action A7.  ``Value = n`` favours
  nobody, so the leader stalls and requests starve — evidence the
  ``mod (n+1)`` is a typo (it contradicts the paper's own Lemma 11); the
  corrected ``mod n`` serves every request.
* **E8c** (:func:`run_naive_ablation`): the paper's "naive attempt"
  (Section 4.1) deadlocks under loss and believes stale feedback from the
  initial configuration; Protocol PIF suffers neither under identical
  adversaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.naive_pif import NaivePifLayer
from repro.core.messages import PifMessage
from repro.core.pif import PifLayer
from repro.core.requests import RequestDriver
from repro.sim.channel import BernoulliLoss
from repro.sim.runtime import Simulator
from repro.spec.pif_spec import check_pif
from repro.types import RequestState

__all__ = [
    "FlagAblationResult",
    "run_flag_ablation",
    "run_modulus_ablation",
    "run_naive_ablation",
]


@dataclass
class FlagAblationResult:
    """Outcome of the crafted attack against one flag-domain size."""

    max_state: int
    decided: bool
    spec_ok: bool
    violations: list[str]

    def row(self) -> list[Any]:
        return [self.max_state, self.decided, self.spec_ok,
                self.violations[0] if self.violations else ""]


def run_flag_ablation(max_state: int) -> FlagAblationResult:
    """Run the crafted adversarial handshake against flag domain {0..max_state}.

    The adversary (legal in the bounded-capacity model!) uses exactly:
    one stale message per channel direction and one stale ``NeigState`` at
    the peer.  The interleaving is scripted in manual mode, so the outcome
    is deterministic.
    """
    sim = Simulator(
        2,
        lambda h: h.register(PifLayer("pif", max_state=max_state)),
        auto=False,
    )
    p, q = sim.pids
    lp: PifLayer = sim.layer(p, "pif")  # type: ignore[assignment]
    lq: PifLayer = sim.layer(q, "pif")  # type: ignore[assignment]

    # Adversarial initial configuration.
    lq.request = RequestState.IN  # a never-started computation at q
    lq.state[p] = 0
    lq.neig_state[p] = 1          # stale: q believes p is at 1
    lq.b_mes = "b-garbage"
    lq.f_mes[p] = "f-garbage"
    # One garbage message per direction (the capacity bound allows exactly that).
    sim.inject(q, p, PifMessage("pif", "b-garbage", "f-garbage", state=0, echo=0),
               schedule=False)
    if max_state >= 3:
        # A stale broadcast-flag message: triggers a spurious receive-brd.
        garbage_pq = PifMessage(
            "pif", "GARBAGE", "f?", state=max_state - 1, echo=max_state
        )
    else:
        # An inert stale message: just occupies the p->q slot so p's own
        # broadcast is lost to the full channel.
        garbage_pq = PifMessage(
            "pif", "GARBAGE", "f?", state=max_state, echo=max_state
        )
    sim.inject(p, q, garbage_pq, schedule=False)

    lp.request_broadcast("m")

    # Scripted worst-case interleaving.
    sim.activate(p)            # A1+A2: State_p[q] = 0 (send blocked by garbage)
    sim.step_deliver(q, p)     # garbage echo=0: 0 -> 1
    if max_state >= 2:
        sim.activate(q)        # q's A2 resend with stale echo=1
        sim.step_deliver(q, p) # 1 -> 2
    if max_state >= 3:
        sim.step_deliver(p, q) # garbage brd flag: spurious receive-brd at q,
        sim.step_deliver(q, p) # whose reply echoes max_state-1: 2 -> 3 iff max_state == 3
    # Generic completion: run both processes until p decides (or give up).
    for _ in range(500):
        if lp.request is RequestState.DONE:
            break
        sim.activate(p)
        sim.activate(q)
        sim.step_deliver(p, q)
        sim.step_deliver(q, p)

    verdict = check_pif(sim.trace, "pif", sim.pids, require_all_decided=True)
    return FlagAblationResult(
        max_state=max_state,
        decided=lp.request is RequestState.DONE,
        spec_ok=verdict.ok,
        violations=[str(v) for v in verdict.violations],
    )


def run_modulus_ablation(
    n: int = 3,
    *,
    requests_per_process: int = 3,
    seed: int = 0,
    horizon: int = 400_000,
) -> dict[str, Any]:
    """Paper's literal ``mod (n+1)`` vs the corrected ``mod n`` (E8b)."""
    from repro.analysis.runner import run_mutex_trial

    paper = run_mutex_trial(
        n, seed=seed, requests_per_process=requests_per_process,
        scramble=False, use_paper_modulus=True, horizon=horizon,
        require_completion=False,
    )
    fixed = run_mutex_trial(
        n, seed=seed, requests_per_process=requests_per_process,
        scramble=False, use_paper_modulus=False, horizon=horizon,
        require_completion=False,
    )
    return {
        "n": n,
        "requested": requests_per_process * n,
        "paper_mod_served": paper.measurements["served"],
        "paper_mod_completed": paper.measurements["completed"],
        "fixed_mod_served": fixed.measurements["served"],
        "fixed_mod_completed": fixed.measurements["completed"],
    }


def run_naive_ablation(
    *,
    n: int = 3,
    seeds: list[int] | None = None,
    loss: float = 0.3,
    horizon: int = 30_000,
) -> dict[str, Any]:
    """Naive PIF vs Protocol PIF under loss and arbitrary initial configs."""
    if seeds is None:
        seeds = list(range(10))
    naive_deadlocks = 0
    naive_violations = 0
    pif_deadlocks = 0
    pif_violations = 0
    for seed in seeds:
        for proto, build in (
            ("naive", lambda h: h.register(NaivePifLayer("w"))),
            ("pif", lambda h: h.register(PifLayer("w"))),
        ):
            sim = Simulator(n, build, seed=seed, loss=BernoulliLoss(loss))
            sim.scramble(seed=seed ^ 0xFADE)
            initiator = sim.pids[0]
            sim.layer(initiator, "w").request_broadcast("payload")
            layer = sim.layer(initiator, "w")
            decided = sim.run(
                horizon, until=lambda s: layer.request is RequestState.DONE
            )
            verdict = check_pif(
                sim.trace, "w", sim.pids, require_all_decided=False
            )
            bad = sum(
                1 for v in verdict.violations if v.prop in ("Correctness", "Decision")
            )
            if proto == "naive":
                naive_deadlocks += 0 if decided else 1
                naive_violations += bad
            else:
                pif_deadlocks += 0 if decided else 1
                pif_violations += bad
    return {
        "configs": len(seeds),
        "loss": loss,
        "naive_deadlocks": naive_deadlocks,
        "naive_safety_violations": naive_violations,
        "pif_deadlocks": pif_deadlocks,
        "pif_safety_violations": pif_violations,
    }
