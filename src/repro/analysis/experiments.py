"""E1, E2 and E9 — the figure/theorem experiments.

* **E1** (:func:`run_figure1`): the paper's Figure 1 worst case — how far
  the two-process handshake advances on garbage alone, and where causality
  kicks in.
* **E2** (:func:`run_impossibility_experiment`): Theorem 1 end-to-end, plus
  the bounded-capacity refutation.
* **E9** (:func:`run_property1_check`, :func:`run_capacity_sweep`):
  Property 1 (channel flushing) and the capacity-``c`` extension with flag
  domain {0..c+3}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.pif import PifLayer
from repro.errors import SimulationError
from repro.impossibility.construction import (
    ImpossibilityResult,
    attempt_on_bounded,
    demonstrate_impossibility,
)
from repro.sim.adversary import figure1_configuration
from repro.sim.runtime import Simulator
from repro.sim.trace import EventKind
from repro.spec.pif_spec import check_pif
from repro.types import RequestState

__all__ = [
    "Figure1Result",
    "run_fault_model_sweep",
    "run_figure1",
    "run_impossibility_experiment",
    "run_property1_check",
    "run_capacity_sweep",
    "run_topology_matrix",
]


@dataclass
class Figure1Result:
    """Measured worst-case handshake behaviour (Figure 1)."""

    #: State_p[q] at the moment q generated the receive-brd event — every
    #: increment up to here was driven by garbage or stale echoes.
    spurious_level: int
    #: (time, new_state) for every increment of State_p[q].
    increments: list[tuple[int, int]]
    brd_time: int
    fck_time: int
    decide_time: int
    spec_ok: bool

    def row(self) -> list[Any]:
        return [
            self.spurious_level,
            self.brd_time,
            self.fck_time,
            self.decide_time,
            self.spec_ok,
        ]


def run_figure1(seed: int = 0, horizon: int = 50_000) -> Figure1Result:
    """Reproduce the Figure 1 worst case on a two-process system.

    Asserts the paper's claim: ``State_p[q]`` may be pushed up to 3 by the
    initial configuration, but the 3 → 4 switch (the receive-fck) happens
    only after ``q`` genuinely received the broadcast (receive-brd at ``q``
    precedes receive-fck at ``p``).
    """
    sim = Simulator(
        2, lambda h: h.register(PifLayer("pif")), seed=seed
    )
    p, q = figure1_configuration(sim, tag="pif")
    layer: PifLayer = sim.layer(p, "pif")  # type: ignore[assignment]

    # Sample State_p[q] every tick; flag increments are one-per-delivery,
    # so a per-tick poll can at worst batch same-tick increments together.
    layer.request_broadcast("fig1")
    increments: list[tuple[int, int]] = []
    prev = layer.state[q]
    deadline = sim.now + horizon
    while sim.now < deadline:
        sim.scheduler.run_until(sim.now + 1)
        current = layer.state[q]
        if current < prev:
            # A1 reset the flag to 0 within this tick; any advance beyond 0
            # in the same tick is already an increment.
            for value in range(1, current + 1):
                increments.append((sim.now, value))
        elif current > prev:
            for value in range(prev + 1, current + 1):
                increments.append((sim.now, value))
        prev = current
        if layer.request is RequestState.DONE:
            break
    if layer.request is not RequestState.DONE:
        raise SimulationError("figure-1 wave never decided")

    brd = sim.trace.first(EventKind.RECEIVE_BRD, tag="pif", wave=(p, 1))
    fck = sim.trace.first(EventKind.RECEIVE_FCK, tag="pif", wave=(p, 1))
    decide = sim.trace.first(EventKind.DECIDE, tag="pif", wave=(p, 1))
    if brd is None or fck is None or decide is None:
        raise SimulationError("figure-1 trace incomplete")
    spurious = max(
        (state for t, state in increments if t < brd.time), default=0
    )
    verdict = check_pif(sim.trace, "pif", sim.pids, require_all_decided=False)
    return Figure1Result(
        spurious_level=spurious,
        increments=increments,
        brd_time=brd.time,
        fck_time=fck.time,
        decide_time=decide.time,
        spec_ok=verdict.ok,
    )


def run_impossibility_experiment(
    n: int = 3, seed: int = 0
) -> dict[str, Any]:
    """E2: Theorem 1 demonstration plus its bounded-capacity refutation."""
    result: ImpossibilityResult = demonstrate_impossibility(n, seed=seed)
    bounded_error = attempt_on_bounded(result.fragments, capacity=1)
    return {
        "n": n,
        "unbounded_violated": result.violated,
        "max_concurrency": result.max_concurrency,
        "messages_preloaded": result.messages_preloaded,
        "max_channel_depth": result.max_channel_depth,
        "bounded_construction_fails": bounded_error is not None,
        "bounded_error": str(bounded_error)[:100],
    }


def run_property1_check(
    n: int = 4, seed: int = 0, horizon: int = 200_000
) -> dict[str, Any]:
    """E9a: Property 1 — a complete wave flushes the initiator's channels.

    Injects identifiable garbage into every channel from and to the
    initiator, runs one complete PIF computation, and verifies none of the
    injected objects is still in flight in those channels.
    """
    sim = Simulator(n, lambda h: h.register(PifLayer("pif")), seed=seed)
    initiator = sim.pids[0]
    injected: list[Any] = []
    rng = sim.rng
    for q in sim.network.peers_of(initiator):
        for src, dst in ((initiator, q), (q, initiator)):
            channel = sim.network.channel(src, dst)
            if not channel.is_full_for("pif"):
                layer: PifLayer = sim.layer(src, "pif")  # type: ignore[assignment]
                garbage = layer.garbage_message(rng)
                sim.inject(src, dst, garbage)
                injected.append(garbage)

    layer0: PifLayer = sim.layer(initiator, "pif")  # type: ignore[assignment]
    layer0.request_broadcast("flush-me")
    done = sim.run(horizon, until=lambda s: layer0.request is RequestState.DONE)
    if not done:
        raise SimulationError("Property-1 wave never decided")
    leftovers = 0
    for channel in sim.network.channels_of(initiator):
        for msg in channel.contents():
            if any(msg is g for g in injected):
                leftovers += 1
    return {
        "n": n,
        "injected": len(injected),
        "leftover_initial_messages": leftovers,
        "property1_holds": leftovers == 0,
    }


def run_fault_model_sweep(
    n: int = 3,
    seeds: list[int] | None = None,
    *,
    horizon: int = 3_000_000,
) -> list[dict[str, Any]]:
    """E10: PIF under fault models, within and beyond the paper's model.

    Loss models that respect channel fairness (Bernoulli, bursty
    Gilbert–Elliott, deterministic periodic, targeted per-tag) are *within*
    the paper's fault model: Specification 1 must hold with zero violations.
    Ongoing in-flight header corruption is *outside* it (the paper assumes
    transient faults cease before the guarantee applies): liveness still
    holds, but safety violations may — and occasionally do — occur, which
    maps the guarantee's boundary.  Each row carries a ``within_model``
    flag.
    """
    from repro.core.requests import RequestDriver
    from repro.sim.faults import (
        GilbertElliottLoss,
        HeaderCorruption,
        PeriodicLoss,
        TargetedLoss,
    )
    from repro.sim.channel import BernoulliLoss
    from repro.spec.pif_spec import check_pif

    if seeds is None:
        seeds = [0, 1, 2]
    scenarios: list[tuple[str, Any, Any, bool]] = [
        ("bernoulli-30%", lambda: BernoulliLoss(0.3), None, True),
        (
            "gilbert-elliott",
            lambda: GilbertElliottLoss(p_good=0.05, p_bad=0.7, p_gb=0.1, p_bg=0.2),
            None,
            True,
        ),
        ("periodic-1/2", lambda: PeriodicLoss(2), None, True),
        ("targeted-60%", lambda: TargetedLoss({"pif"}, p=0.6), None, True),
        ("header-corruption-20%", None, lambda: HeaderCorruption(p=0.2), False),
    ]
    rows: list[dict[str, Any]] = []
    for name, loss_factory, corruption_factory, within_model in scenarios:
        ok = 0
        violations = 0
        messages = 0
        for seed in seeds:
            sim = Simulator(
                n,
                lambda h: h.register(PifLayer("pif")),
                seed=seed,
                loss=loss_factory() if loss_factory else None,
                corruption=corruption_factory() if corruption_factory else None,
            )
            sim.scramble(seed=seed ^ 0xFA17)
            driver = RequestDriver(
                sim, "pif", requests_per_process=1,
                payload=lambda pid, k: f"m{pid}",
            )
            done = sim.run(horizon, until=lambda s: driver.done)
            if not done:
                raise SimulationError(
                    f"fault sweep {name!r} (seed {seed}) never finished"
                )
            verdict = check_pif(sim.trace, "pif", sim.pids)
            ok += 1 if verdict.ok else 0
            violations += len(verdict.violations)
            messages += sim.stats.sent
        rows.append(
            {
                "model": name,
                "within_model": within_model,
                "trials": len(seeds),
                "ok": ok,
                "violations": violations,
                "messages_mean": round(messages / len(seeds), 1),
            }
        )
    return rows


def run_topology_matrix(
    *,
    n: int = 8,
    topologies: list[str] | None = None,
    losses: list[float] | None = None,
    seeds: list[int] | None = None,
    protocol: str = "pif",
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    horizon: int | None = None,
    latency: tuple[int, int] = (1, 3),
    hosts: int | None = None,
    sync: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> list[dict[str, Any]]:
    """E11: the topology × fault scenario matrix.

    Runs scrambled PIF (or ME) trials for every combination of topology
    spec and loss rate, checking the topology-generalized specification,
    and returns one aggregate row per scenario.  This is the sweep the
    ``--topology`` axis exists for: every cell must report zero violations.
    Weighted specs (``"wan:K"``) ride the same axis — a row's ``weighted``
    flag marks cells whose edges carry their own latency bounds, so uniform
    vs WAN cells of the same graph sit side by side.
    ``engine`` selects the execution backend (``serial``/``sharded``/
    ``async``/``cluster``); serial, sharded, async-loopback and
    cluster-windowed produce identical rows for the same seeds.

    ``metrics``/``timeline`` write one obs file per cell trial, suffixed
    with the cell's topology/loss/seed (see
    :func:`repro.obs.recorder.indexed_path`).
    """
    from dataclasses import replace

    from repro.analysis.runner import run_mutex_trial, run_pif_trial
    from repro.engine import (
        ChaosOpts, ClusterOpts, ShardingOpts, TransportOpts, TrialSpec,
    )
    from repro.engine.spec import resolve_fault_plan
    from repro.obs.recorder import indexed_path
    from repro.sim.topology import topology_from_spec

    if topologies is None:
        topologies = ["complete", "ring", "star", "grid", "gnp:0.35", "clustered:2"]
    if losses is None:
        losses = [0.0, 0.2]
    if seeds is None:
        seeds = [0, 1, 2]
    if protocol not in ("pif", "mutex"):
        raise SimulationError(f"unknown matrix protocol {protocol!r}")
    runner = run_pif_trial if protocol == "pif" else run_mutex_trial
    # One spec for the whole matrix; each cell trial replaces only the
    # axes that vary (topology/seed/loss, plus per-cell obs paths).
    base = TrialSpec(
        n=n,
        latency=latency,
        horizon=horizon,
        engine=engine,
        sharding=ShardingOpts(shards=shards, window=window),
        transport=TransportOpts(transport=transport, tick=tick),
        cluster=ClusterOpts(hosts=hosts, sync=sync),
        chaos=ChaosOpts(plan=resolve_fault_plan(fault_plan)),
    )
    rows: list[dict[str, Any]] = []
    for spec in topologies:
        # One graph instance per scenario: a seeded random family (gnp)
        # must present every trial seed with the same topology the row's
        # metadata describes — only the protocol randomness varies.
        top = topology_from_spec(spec, n, seed=seeds[0])
        meta = top.describe()
        for loss in losses:
            ok = 0
            violations = 0
            messages = 0
            final_time = 0
            for seed in seeds:
                cell = replace(base, topology=top, seed=seed, loss=loss)
                if metrics is not None or timeline is not None:
                    label = (
                        f"{spec}-loss{loss}-seed{seed}"
                        .replace(":", "_").replace(".", "_")
                    )
                    cell = cell.with_obs(
                        str(indexed_path(metrics, label))
                        if metrics is not None else None,
                        str(indexed_path(timeline, label))
                        if timeline is not None else None,
                    )
                trial = runner(spec=cell, requests_per_process=1)
                ok += 1 if trial.ok else 0
                violations += trial.violations
                messages += trial.measurements["messages"]
                final_time += trial.measurements["final_time"]
            rows.append(
                {
                    "topology": meta["topology"],
                    "engine": engine,
                    # A weighted spec ("wan:K", or an explicit latency map)
                    # changes per-edge delivery times, not the graph — the
                    # flag lets matrix rows compare uniform vs WAN cells.
                    "weighted": top.is_weighted,
                    "diameter": meta["diameter"],
                    "max_degree": meta["max_degree"],
                    "loss": loss,
                    "trials": len(seeds),
                    "ok": ok,
                    "violations": violations,
                    "messages_mean": round(messages / len(seeds), 1),
                    "time_mean": round(final_time / len(seeds), 1),
                }
            )
    return rows


def run_capacity_sweep(
    capacities: list[int] | None = None,
    *,
    n: int = 3,
    seeds: list[int] | None = None,
) -> list[dict[str, Any]]:
    """E9b: capacity-c channels with flag domain {0..c+3} stay correct."""
    from repro.analysis.runner import run_pif_trial

    if capacities is None:
        capacities = [1, 2, 4]
    if seeds is None:
        seeds = [0, 1, 2]
    rows: list[dict[str, Any]] = []
    for c in capacities:
        ok = 0
        violations = 0
        for seed in seeds:
            trial = run_pif_trial(
                n, seed=seed, capacity=c, max_state=c + 3,
                requests_per_process=1,
            )
            ok += 1 if trial.ok else 0
            violations += trial.violations
        rows.append(
            {
                "capacity": c,
                "max_state": c + 3,
                "trials": len(seeds),
                "ok": ok,
                "violations": violations,
            }
        )
    return rows
