"""Experiment runners: one function per trial type, plus parameter sweeps.

Each trial builds a fresh seeded simulator, optionally scrambles it into an
arbitrary initial configuration, drives requests, runs to completion, checks
the relevant specification, and returns a flat result dict ready for table
rendering (experiments E3, E4, E5, E7 of DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.core.requests import RequestDriver
from repro.errors import SimulationError
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.runtime import Simulator
from repro.sim.topology import Topology, arbitration_clusters, topology_from_spec
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import check_mutex
from repro.spec.pif_spec import check_pif
from repro.spec.waves import extract_waves
from repro.analysis.metrics import summarize

__all__ = [
    "TrialResult",
    "run_pif_trial",
    "run_idl_trial",
    "run_mutex_trial",
    "sweep_pif",
    "sweep_mutex",
    "pif_scaling_row",
]

def _resolve_topology(
    n: int, topology: Topology | str | None, seed: int
) -> Topology | None:
    """Normalize a trial's topology argument (None = the complete graph)."""
    if isinstance(topology, str):
        return topology_from_spec(topology, n, seed=seed)
    return topology


def _neighbor_map(sim: Simulator) -> dict[int, tuple[int, ...]] | None:
    """Per-pid neighbour sets for spec checks; None on the complete graph
    (keeps the paper's original global reading in reports)."""
    if sim.topology.is_complete:
        return None
    return {p: sim.network.peers_of(p) for p in sim.pids}


@dataclass
class TrialResult:
    """Outcome of one trial: verdict plus measurements."""

    params: dict[str, Any]
    ok: bool
    violations: int
    measurements: dict[str, Any] = field(default_factory=dict)

    def row(self, *keys: str) -> list[Any]:
        merged = {**self.params, **self.measurements, "ok": self.ok,
                  "violations": self.violations}
        return [merged.get(k) for k in keys]


def _loss_model(loss: float):
    return BernoulliLoss(loss) if loss > 0 else NoLoss()


def run_pif_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    capacity: int = 1,
    max_state: int | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
) -> TrialResult:
    """One PIF trial (E3): all processes broadcast; Specification 1 checked."""
    if max_state is None:
        max_state = capacity + 3
    top = _resolve_topology(n, topology, seed)
    sim = Simulator(
        n if top is None else None,
        lambda h: h.register(PifLayer("pif", max_state=max_state)),
        topology=top,
        seed=seed,
        loss=_loss_model(loss),
        capacity=capacity,
    )
    if scramble:
        sim.scramble(seed=seed ^ 0x5EED)
    driver = RequestDriver(
        sim, "pif", requests_per_process=requests_per_process,
        payload=lambda pid, k: f"msg-{pid}-{k}",
    )
    completed = sim.run(horizon, until=lambda s: driver.done)
    if not completed:
        raise SimulationError(f"PIF trial did not finish within t={horizon}")
    sim.run(sim.now + 200)  # drain never-started computations
    finals = {p: sim.layer(p, "pif").request for p in sim.pids}
    verdict = check_pif(
        sim.trace, "pif", sim.pids, final_requests=finals,
        neighbors=_neighbor_map(sim),
    )
    waves = [w for w in extract_waves(sim.trace, "pif") if w.decided]
    durations = [w.duration for w in waves if w.duration is not None]
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss, "capacity": capacity,
                "topology": sim.topology.name},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "waves": len(waves),
            "messages": sim.stats.sent,
            "msg_per_wave": round(sim.stats.sent / max(1, len(waves)), 1),
            "wave_p50": summarize(durations).p50 if durations else 0,
            "wave_p95": summarize(durations).p95 if durations else 0,
            "final_time": sim.now,
        },
    )


def run_idl_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    idents: dict[int, int] | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
) -> TrialResult:
    """One IDL trial (E4): Specification 2 checked against ground truth."""

    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer("idl", ident=ident))

    top = _resolve_topology(n, topology, seed)
    sim = Simulator(
        n if top is None else None, build, topology=top, seed=seed,
        loss=_loss_model(loss),
    )
    truth = {p: (idents[p] if idents else p) for p in sim.pids}
    if scramble:
        sim.scramble(seed=seed ^ 0x5EED)
    driver = RequestDriver(sim, "idl", requests_per_process=requests_per_process)
    completed = sim.run(horizon, until=lambda s: driver.done)
    if not completed:
        raise SimulationError(f"IDL trial did not finish within t={horizon}")
    sim.run(sim.now + 200)
    finals = {p: sim.layer(p, "idl").request for p in sim.pids}
    verdict = check_idl(
        sim.trace, "idl", truth, final_requests=finals,
        neighborhoods=_neighbor_map(sim),
    )
    latencies = driver.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": sim.topology.name},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "computations": verdict.info.get("computations", 0),
            "messages": sim.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "final_time": sim.now,
        },
    )


def run_mutex_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    cs_duration: int = 3,
    use_paper_modulus: bool = False,
    topology: Topology | str | None = None,
    horizon: int = 6_000_000,
    require_completion: bool = True,
) -> TrialResult:
    """One ME trial (E5): Specification 3 checked over the full trace.

    On a non-complete topology the Correctness check runs per leader
    cluster (the generalized guarantee — see :mod:`repro.core.mutex`).
    """
    top = _resolve_topology(n, topology, seed)
    sim = Simulator(
        n if top is None else None,
        lambda h: h.register(
            MutexLayer("me", cs_duration=cs_duration,
                       use_paper_modulus=use_paper_modulus)
        ),
        topology=top,
        seed=seed,
        loss=_loss_model(loss),
    )
    if scramble:
        sim.scramble(seed=seed ^ 0x5EED)
    driver = RequestDriver(sim, "me", requests_per_process=requests_per_process)
    completed = sim.run(horizon, until=lambda s: driver.done)
    if require_completion and not completed:
        raise SimulationError(f"ME trial did not finish within t={horizon}")
    clusters = (
        None
        if sim.topology.is_complete
        else list(arbitration_clusters(sim.topology).values())
    )
    verdict = check_mutex(
        sim.trace, "me", horizon=sim.now, require_all_served=completed,
        clusters=clusters,
    )
    latencies = driver.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": sim.topology.name},
        ok=verdict.ok and (completed or not require_completion),
        violations=len(verdict.violations),
        measurements={
            "served": driver.total_completed(),
            "requested": requests_per_process * n,
            "completed": completed,
            "cs_count": verdict.info.get("cs_count", 0),
            "messages": sim.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "latency_p95": summarize(latencies).p95 if latencies else 0,
            "final_time": sim.now,
        },
    )


def sweep_pif(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E3 sweep: PIF across system sizes, loss rates and scrambles."""
    return [
        run_pif_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def sweep_mutex(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E5 sweep: ME across system sizes, loss rates and scrambles."""
    return [
        run_mutex_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def pif_scaling_row(
    n: int,
    *,
    seeds: list[int],
    loss: float = 0.0,
    topology: Topology | str | None = None,
) -> dict[str, Any]:
    """E7: message/latency cost of one wave as a function of n.

    One requesting initiator; the cost of a complete wave is Θ(deg) messages
    per resend round and a constant number (max_state) of round trips —
    Θ(n) per round on the paper's complete graph.
    """
    msg_counts: list[int] = []
    per_peer: list[float] = []
    durations: list[int] = []
    name = "complete"
    for seed in seeds:
        top = _resolve_topology(n, topology, seed)
        sim = Simulator(
            n if top is None else None,
            lambda h: h.register(PifLayer("pif")),
            topology=top,
            seed=seed,
        )
        initiator = sim.pids[0]
        name = sim.topology.name
        layer = sim.layer(initiator, "pif")
        layer.request_broadcast("scale")
        from repro.types import RequestState

        done = sim.run(500_000, until=lambda s: layer.request is RequestState.DONE)
        if not done:
            raise SimulationError(f"scaling wave (n={n}, seed={seed}) never decided")
        waves = [w for w in extract_waves(sim.trace, "pif") if w.decided]
        msg_counts.append(sim.stats.sent)
        # Per-seed ratio: a seeded random family (gnp) gives each seed a
        # different graph, so the initiator's degree varies per trial.
        per_peer.append(sim.stats.sent / sim.network.degree(initiator))
        durations.append(waves[0].duration or 0)
    return {
        "n": n,
        "topology": name,
        "messages_mean": round(sum(msg_counts) / len(msg_counts), 1),
        "messages_per_peer": round(sum(per_peer) / len(per_peer), 1),
        "duration_mean": round(sum(durations) / len(durations), 1),
    }
