"""Experiment runners: one function per trial type, plus parameter sweeps.

Each trial builds a fresh seeded simulator, optionally scrambles it into an
arbitrary initial configuration, drives requests, runs to completion, checks
the relevant specification, and returns a flat result dict ready for table
rendering (experiments E3, E4, E5, E7 of DESIGN.md).

Every trial accepts an ``engine`` axis: ``"serial"`` (one in-process
scheduler), ``"sharded"`` (:class:`repro.sim.sharded.ShardedSimulator` —
the topology partitioned across worker processes under the conservative
time-window protocol) or ``"async"`` (:class:`repro.net.AsyncSimulator` —
one coroutine per process over a ``loopback`` or ``tcp`` transport, with
online spec monitors).  All engines execute the *same* trial shape —
build, scramble, drive requests until served, drain ``DRAIN_TICKS`` — and
``serial``/``sharded``/``async``+``loopback`` produce bit-identical traces
for the same seed, so every specification check and measurement below is
engine-agnostic; ``async``+``tcp`` is wall-clock best-effort and carries
its correctness in the online monitor verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import HorizonExceeded, SimulationError
from repro.net.cluster import ClusterSimulator, payload_from_fmt
from repro.net.engine import AsyncSimulator
from repro.net.monitors import MonitorReport, default_monitors
from repro.obs.recorder import ObsRecorder
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.runtime import Simulator
from repro.sim.sharded import ShardedSimulator
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, arbitration_clusters, topology_from_spec
from repro.sim.trace import EventKind, Trace
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import check_mutex
from repro.spec.pif_spec import check_pif
from repro.spec.waves import extract_waves
from repro.analysis.metrics import summarize
from repro.types import RequestState

__all__ = [
    "TrialResult",
    "EngineRun",
    "execute_trial",
    "run_pif_trial",
    "run_idl_trial",
    "run_mutex_trial",
    "sweep_pif",
    "sweep_mutex",
    "pif_scaling_row",
]

#: Ticks every trial runs past the driver's completion, so residual
#: (never-started) computations drain and — crucially — both engines stop on
#: the same full tick (the sharded engine detects completion at a window
#: barrier, which can overshoot the completion tick by up to one window).
DRAIN_TICKS = 200


def _resolve_topology(
    n: int, topology: Topology | str | None, seed: int
) -> Topology | None:
    """Normalize a trial's topology argument (None = the complete graph)."""
    if isinstance(topology, str):
        return topology_from_spec(topology, n, seed=seed)
    return topology


def _neighbor_map(run: "EngineRun") -> dict[int, tuple[int, ...]] | None:
    """Per-pid neighbour sets for spec checks; None on the complete graph
    (keeps the paper's original global reading in reports)."""
    if run.topology.is_complete:
        return None
    return {p: run.topology.neighbors(p) for p in run.pids}


@dataclass
class TrialResult:
    """Outcome of one trial: verdict plus measurements.

    ``measurements`` holds trace-derived quantities only — identical
    across engines for the same seed, which is what the equivalence gates
    compare.  Run provenance (which engine/transport executed the trial,
    its wall-clock cost, online monitor verdicts) lives in ``provenance``
    so bench artifacts are comparable across engines without perturbing
    the bit-identity contract.
    """

    params: dict[str, Any]
    ok: bool
    violations: int
    measurements: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def row(self, *keys: str) -> list[Any]:
        merged = {**self.params, **self.measurements, **self.provenance,
                  "ok": self.ok, "violations": self.violations}
        return [merged.get(k) for k in keys]

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready record (bench artifacts, aggregation)."""
        return {
            **self.params,
            "ok": self.ok,
            "violations": self.violations,
            **self.measurements,
            **self.provenance,
        }


@dataclass
class EngineRun:
    """Engine-agnostic outcome of one driven run (any engine)."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    final_time: int
    topology: Topology
    pids: tuple[int, ...]
    #: Run provenance: which backend executed the trial and what it cost.
    engine: str = "serial"
    transport: str | None = None
    wall_clock_s: float = 0.0
    #: Online monitor verdicts (async engine; empty elsewhere).
    monitor_reports: list[MonitorReport] = field(default_factory=list)
    #: Sharded/cluster provenance: the active synchronization window, the
    #: barriers paid and the driver-side sync overhead (None elsewhere).
    window: int | None = None
    barriers: int | None = None
    sync_wall_s: float | None = None
    #: Cluster provenance: worker-interpreter count, sync mode, per-shard
    #: simulation wall clock and rendezvous round trips (None elsewhere).
    hosts: int | None = None
    sync: str | None = None
    worker_wall_s: dict[int, float] | None = None
    registry_round_trips: int | None = None
    #: Chaos provenance (repro.chaos): injected-fault / recovery counters
    #: when a fault plan was active (None on fault-free runs).
    fault_counts: dict[str, int] | None = None
    recoveries: int | None = None
    replayed_rounds: int | None = None

    def latencies(self) -> list[int]:
        return [c.latency for c in self.completions]

    @property
    def monitors_ok(self) -> bool:
        return all(r.ok for r in self.monitor_reports)

    def provenance(self) -> dict[str, Any]:
        """JSON-ready provenance block for bench artifacts."""
        record: dict[str, Any] = {
            "engine": self.engine,
            "transport": self.transport,
            "wall_clock_s": round(self.wall_clock_s, 4),
        }
        if self.window is not None:
            record["window"] = self.window
            record["barriers"] = self.barriers
            record["sync_wall_s"] = round(self.sync_wall_s or 0.0, 4)
        if self.hosts is not None:
            record["hosts"] = self.hosts
            record["sync"] = self.sync
            walls = self.worker_wall_s or {}
            record["worker_wall_s"] = {
                shard: round(seconds, 4) for shard, seconds in walls.items()
            }
            #: Load imbalance at a glance: slowest minus fastest shard.
            record["worker_wall_spread_s"] = (
                round(max(walls.values()) - min(walls.values()), 4)
                if walls else 0.0
            )
            record["registry_round_trips"] = self.registry_round_trips
        if self.fault_counts is not None:
            record["fault_counts"] = dict(sorted(self.fault_counts.items()))
            if self.recoveries is not None:
                record["recoveries"] = self.recoveries
                record["replayed_rounds"] = self.replayed_rounds
        if self.monitor_reports:
            record["monitors_ok"] = self.monitors_ok
            record["monitors"] = [
                {"name": r.name, "ok": r.ok, "violations": len(r.violations)}
                for r in self.monitor_reports
            ]
        return record


def _loss_model(loss: float):
    return BernoulliLoss(loss) if loss > 0 else NoLoss()


def _count_cs_grants(trace: Trace, tag: str) -> int:
    """Arbitration rounds spent: critical-section entries of ``tag``.

    Reads the CS_ENTER kind index — no full-trace scan, no event views.
    """
    return sum(
        1 for row in trace.kind_rows(EventKind.CS_ENTER)
        if trace.data_at(row).get("tag") == tag
    )


class _RoundBudgetGuard:
    """Incremental CS-grant counter over a growing trace.

    ``exceeded`` is evaluated inside the serial engine's stop predicate —
    after every event — so it watches the trace's *live* CS_ENTER kind
    index: the steady-state cost is one ``len()`` per event, and payload
    dicts are inspected only for the (rare) critical-section entries
    appended since the last call.
    """

    def __init__(self, trace: Trace, tag: str, budget: int) -> None:
        self._rows = trace.kind_rows(EventKind.CS_ENTER)
        self._data_at = trace.data_at
        self._tag = tag
        self.budget = budget
        self.rounds = 0
        self._cursor = 0

    def exceeded(self) -> bool:
        rows = self._rows
        while self._cursor < len(rows):
            if self._data_at(rows[self._cursor]).get("tag") == self._tag:
                self.rounds += 1
            self._cursor += 1
        return self.rounds > self.budget


def execute_trial(
    n: int,
    build: Callable,
    *,
    topology: Topology | str | None = None,
    seed: int = 0,
    loss: float = 0.0,
    capacity: int = 1,
    latency: tuple[int, int] = (1, 3),
    scramble: bool = True,
    driver: dict[str, Any],
    horizon: int,
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    round_budget: int | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    protocol: dict[str, Any] | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> EngineRun:
    """Run one driven trial on the selected engine.

    The shape is identical on every engine: build the system, scramble it
    into an arbitrary initial configuration, let the request driver issue
    and await every request (up to ``horizon``), then drain
    :data:`DRAIN_TICKS` more ticks.  ``engine`` selects the backend:

    * ``"serial"`` — one in-process scheduler;
    * ``"sharded"`` — topology partitioned across forked worker processes
      (``shards``/``window``);
    * ``"async"`` — the asyncio runtime (:mod:`repro.net`); ``transport``
      selects ``"loopback"`` (deterministic) or ``"tcp"`` (real localhost
      sockets, ``tick`` seconds per tick), with online spec monitors
      attached either way;
    * ``"cluster"`` — the multi-host runtime (:mod:`repro.net.cluster`):
      ``hosts`` worker *interpreters* (fresh OS processes over real
      sockets), each hosting one shard's AsyncSimulator slice.
      ``sync="windowed"`` (default) reproduces serial results exactly;
      ``sync="freerun"`` is best-effort and carries its correctness in
      the replayed monitor verdicts.  Needs a picklable ``protocol`` spec
      (build closures cannot cross interpreters) and a driver config
      whose payload is a ``payload_fmt`` string.  ``cluster_listen``
      binds the rendezvous registry on a fixed address and waits for
      hand-launched ``repro cluster-worker`` processes instead of
      spawning localhost workers.

    ``serial``, ``sharded``, ``async``+``loopback`` and
    ``cluster``+``windowed`` return bit-identical traces, stats, finals
    and completions for the same arguments; run provenance (engine,
    transport, wall clock, barriers, worker wall clocks, monitor
    verdicts) rides on the :class:`EngineRun` without entering the
    compared state.

    ``round_budget`` (serial only) aborts the run with
    :class:`~repro.errors.HorizonExceeded` once more than that many
    critical-section grants were spent without serving every request —
    the cheap failure mode for slow-converging configurations such as ME
    on large rings (see docs/engine.md).

    ``metrics``/``timeline`` name output paths for the :mod:`repro.obs`
    instruments: a JSON metrics snapshot and a Chrome-trace timeline
    (cluster workers ship their slices back over CONTROL; the files merge
    every interpreter of the trial).  Observability reads wall clocks and
    passive counters only — enabling it never changes the trace, stats or
    canonical hash of a deterministic run (see docs/observability.md).
    """
    top = _resolve_topology(n, topology, seed)
    scramble_seed = seed ^ 0x5EED
    driver = dict(driver)
    tag = driver["tag"]
    if engine != "cluster" and "payload_fmt" in driver:
        # The picklable spelling works on every engine: expand it to the
        # equivalent callable here so RequestDriver stays format-agnostic.
        driver["payload"] = payload_from_fmt(driver.pop("payload_fmt"))
    if round_budget is not None and engine != "serial":
        raise SimulationError(
            f"round_budget requires engine='serial', got {engine!r}"
        )
    if engine != "async" and (transport != "loopback" or tick is not None):
        raise SimulationError(
            f"transport={transport!r}/tick={tick!r} require engine='async', "
            f"got {engine!r} (did you forget --engine async?)"
        )
    if engine not in ("sharded", "cluster") and (
        shards is not None or window is not None
    ):
        raise SimulationError(
            f"shards={shards!r}/window={window!r} require engine='sharded' "
            f"or 'cluster', got {engine!r} (did you forget --engine sharded?)"
        )
    if engine != "cluster" and (
        hosts is not None or sync is not None or cluster_listen is not None
    ):
        raise SimulationError(
            f"hosts={hosts!r}/sync={sync!r}/cluster_listen={cluster_listen!r} "
            f"require engine='cluster', got {engine!r} "
            f"(did you forget --engine cluster?)"
        )
    if engine == "cluster" and shards is not None:
        raise SimulationError(
            "the cluster engine sizes its partition with hosts=, not shards="
        )
    if tick is not None and transport != "tcp":
        raise SimulationError(
            f"tick={tick!r} requires transport='tcp' (the loopback transport "
            f"runs virtual time), got transport={transport!r}"
        )
    if fault_plan is not None and engine not in ("async", "cluster"):
        raise SimulationError(
            f"fault_plan requires engine='async' or 'cluster', got {engine!r} "
            "(the serial and sharded engines have no injection boundary)"
        )
    obs: ObsRecorder | None = None
    if metrics is not None or timeline is not None:
        obs = ObsRecorder(
            metrics=metrics is not None, timeline=timeline is not None
        )
        obs.mark_wire_baseline()
    start_clock = time.perf_counter()
    run: EngineRun | None = None
    if engine == "serial":
        sim = Simulator(
            n if top is None else None,
            build,
            topology=top,
            seed=seed,
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
        )
        if scramble:
            if obs is not None:
                with obs.phase("scramble"):
                    sim.scramble(seed=scramble_seed)
            else:
                sim.scramble(seed=scramble_seed)
        drv = RequestDriver(sim, **driver)
        serve_ctx = obs.phase("serve") if obs is not None else None
        if serve_ctx is not None:
            serve_ctx.__enter__()
        if round_budget is None:
            completed = sim.run(horizon, until=lambda s: drv.done)
        else:
            guard = _RoundBudgetGuard(sim.trace, tag, round_budget)
            sim.run(horizon, until=lambda s: drv.done or guard.exceeded())
            completed = drv.done
            if not completed and guard.rounds > round_budget:
                raise HorizonExceeded(
                    f"round budget of {round_budget} CS grants exhausted "
                    f"at t={sim.now} before all requests were served",
                    horizon=horizon,
                    served=drv.total_completed(),
                    requested=drv.total_planned(),
                    rounds=guard.rounds,
                )
        if serve_ctx is not None:
            serve_ctx.__exit__(None, None, None)
        if obs is not None:
            with obs.phase("drain"):
                sim.run(sim.now + DRAIN_TICKS)
            obs.collect_sim(sim)
        else:
            sim.run(sim.now + DRAIN_TICKS)
        run = EngineRun(
            trace=sim.trace,
            stats=sim.stats,
            finals={p: sim.layer(p, tag).request for p in sim.pids},
            completions=drv.completed(),
            completed=completed,
            final_time=sim.now,
            topology=sim.topology,
            pids=sim.pids,
            engine=engine,
            wall_clock_s=time.perf_counter() - start_clock,
        )
    elif engine == "sharded":
        sharded = ShardedSimulator(
            n if top is None else None,
            build,
            topology=top,
            seed=seed,
            shards=shards,
            window=window,
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
        )
        result = sharded.run_trial(
            horizon=horizon,
            scramble_seed=scramble_seed if scramble else None,
            driver=driver,
            drain=DRAIN_TICKS,
            obs=obs,
        )
        run = EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=sharded.topology,
            pids=sharded.pids,
            engine=engine,
            wall_clock_s=time.perf_counter() - start_clock,
            window=result.window,
            barriers=result.barriers,
            sync_wall_s=result.sync_wall_s,
        )
    elif engine == "async":
        asim = AsyncSimulator(
            n if top is None else None,
            build,
            topology=top,
            seed=seed,
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
            transport=transport,
            fault_plan=fault_plan,
            **({} if tick is None else {"tick": tick}),
        )
        for monitor in default_monitors(tag, asim.topology):
            asim.attach_monitor(monitor)
        if obs is not None:
            with obs.phase("trial", transport=transport):
                result = asim.run_trial(
                    horizon=horizon,
                    scramble_seed=scramble_seed if scramble else None,
                    driver=driver,
                    drain=DRAIN_TICKS,
                )
            obs.collect_sim(asim)
        else:
            result = asim.run_trial(
                horizon=horizon,
                scramble_seed=scramble_seed if scramble else None,
                driver=driver,
                drain=DRAIN_TICKS,
            )
        run = EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=asim.topology,
            pids=asim.pids,
            engine=engine,
            transport=transport,
            wall_clock_s=time.perf_counter() - start_clock,
            monitor_reports=result.monitor_reports,
            fault_counts=(
                dict(asim.fault_counts) if fault_plan is not None else None
            ),
        )
    elif engine == "cluster":
        cluster = ClusterSimulator(
            n if top is None else None,
            protocol,
            topology=top,
            seed=seed,
            hosts=hosts,
            window=window,
            sync=sync or "windowed",
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
            listen=cluster_listen,
            fault_plan=fault_plan,
        )
        result = cluster.run_trial(
            horizon=horizon,
            scramble_seed=scramble_seed if scramble else None,
            driver=driver,
            drain=DRAIN_TICKS,
            obs=obs,
        )
        # The workers ran monitor-free (their slices see only local
        # emissions); replay the online automata over the merged trace.
        # Windowed runs merge to the exact serial trace, so the verdicts
        # agree with the offline checkers; freerun runs make these the
        # correctness claim.
        monitors = default_monitors(tag, cluster.topology)
        for event_time, kind, process, data in result.trace.scan():
            for monitor in monitors:
                monitor.observe(event_time, kind, process, data)
        run = EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=cluster.topology,
            pids=cluster.pids,
            engine=engine,
            wall_clock_s=time.perf_counter() - start_clock,
            monitor_reports=[m.report() for m in monitors],
            window=result.window,
            barriers=result.barriers,
            sync_wall_s=result.sync_wall_s,
            hosts=cluster.n_shards,
            sync=result.sync,
            worker_wall_s=result.worker_wall_s,
            registry_round_trips=result.registry_round_trips,
            fault_counts=(
                dict(result.fault_counts) if fault_plan is not None else None
            ),
            recoveries=result.recoveries if fault_plan is not None else None,
            replayed_rounds=(
                result.replayed_rounds if fault_plan is not None else None
            ),
        )
    if run is None:
        raise SimulationError(
            f"unknown engine {engine!r}; expected serial, sharded, async "
            "or cluster"
        )
    if obs is not None:
        obs.collect_monitors(run.monitor_reports)
        obs.collect_wire()
        obs.write(
            metrics,
            timeline,
            context={
                "engine": engine,
                "n": len(run.pids),
                "seed": seed,
                "loss": loss,
                "topology": run.topology.name,
                "tag": tag,
                "transport": transport if engine == "async" else None,
                "wall_clock_s": round(run.wall_clock_s, 4),
            },
        )
    return run


def run_pif_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    capacity: int = 1,
    max_state: int | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One PIF trial (E3): all processes broadcast; Specification 1 checked."""
    if max_state is None:
        max_state = capacity + 3
    run = execute_trial(
        n,
        lambda h: h.register(PifLayer("pif", max_state=max_state)),
        topology=topology,
        seed=seed,
        loss=loss,
        capacity=capacity,
        latency=latency,
        scramble=scramble,
        driver=dict(
            tag="pif",
            requests_per_process=requests_per_process,
            payload_fmt="msg-{pid}-{k}",
        ),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
        transport=transport,
        tick=tick,
        hosts=hosts,
        sync=sync,
        cluster_listen=cluster_listen,
        fault_plan=fault_plan,
        protocol={"kind": "pif", "max_state": max_state},
        metrics=metrics,
        timeline=timeline,
    )
    if not run.completed:
        raise HorizonExceeded(
            "PIF trial did not finish",
            horizon=horizon,
            served=len(run.completions),
            requested=requests_per_process * n,
            window=run.window,
        )
    verdict = check_pif(
        run.trace, "pif", run.pids, final_requests=run.finals,
        neighbors=_neighbor_map(run),
    )
    waves = [w for w in extract_waves(run.trace, "pif") if w.decided]
    durations = [w.duration for w in waves if w.duration is not None]
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss, "capacity": capacity,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "waves": len(waves),
            "messages": run.stats.sent,
            "msg_per_wave": round(run.stats.sent / max(1, len(waves)), 1),
            "wave_p50": summarize(durations).p50 if durations else 0,
            "wave_p95": summarize(durations).p95 if durations else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def run_idl_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    idents: dict[int, int] | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One IDL trial (E4): Specification 2 checked against ground truth."""

    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer("idl", ident=ident))

    run = execute_trial(
        n,
        build,
        topology=topology,
        seed=seed,
        loss=loss,
        latency=latency,
        scramble=scramble,
        driver=dict(tag="idl", requests_per_process=requests_per_process),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
        transport=transport,
        tick=tick,
        hosts=hosts,
        sync=sync,
        cluster_listen=cluster_listen,
        fault_plan=fault_plan,
        protocol={"kind": "idl", "idents": idents},
        metrics=metrics,
        timeline=timeline,
    )
    if not run.completed:
        raise HorizonExceeded(
            "IDL trial did not finish",
            horizon=horizon,
            served=len(run.completions),
            requested=requests_per_process * n,
            window=run.window,
        )
    truth = {p: (idents[p] if idents else p) for p in run.pids}
    verdict = check_idl(
        run.trace, "idl", truth, final_requests=run.finals,
        neighborhoods=_neighbor_map(run),
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "computations": verdict.info.get("computations", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def run_mutex_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    cs_duration: int = 3,
    use_paper_modulus: bool = False,
    topology: Topology | str | None = None,
    horizon: int = 6_000_000,
    require_completion: bool = True,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    round_budget: int | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One ME trial (E5): Specification 3 checked over the full trace.

    On a non-complete topology the Correctness check runs per leader
    cluster (the generalized guarantee — see :mod:`repro.core.mutex`).

    ``round_budget`` bounds convergence cost: the trial aborts with
    :class:`~repro.errors.HorizonExceeded` once more than that many CS
    grants happened without serving every request.  A completing trial
    uses about ``(requests_per_process + 1) * n`` grants (measured across
    topologies — see docs/engine.md), so small multiples of that are
    generous budgets; the guard exists because per-grant *time* grows
    steeply with ring size, making the plain horizon an expensive way to
    detect impractical configurations.
    """
    run = execute_trial(
        n,
        lambda h: h.register(
            MutexLayer("me", cs_duration=cs_duration,
                       use_paper_modulus=use_paper_modulus)
        ),
        topology=topology,
        seed=seed,
        loss=loss,
        latency=latency,
        scramble=scramble,
        driver=dict(tag="me", requests_per_process=requests_per_process),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
        transport=transport,
        tick=tick,
        round_budget=round_budget,
        hosts=hosts,
        sync=sync,
        cluster_listen=cluster_listen,
        fault_plan=fault_plan,
        protocol={"kind": "me", "cs_duration": cs_duration,
                  "use_paper_modulus": use_paper_modulus},
        metrics=metrics,
        timeline=timeline,
    )
    if require_completion and not run.completed:
        raise HorizonExceeded(
            "ME trial did not finish",
            horizon=horizon,
            served=len(run.completions),
            requested=requests_per_process * n,
            rounds=_count_cs_grants(run.trace, "me"),
            window=run.window,
        )
    clusters = (
        None
        if run.topology.is_complete
        else list(arbitration_clusters(run.topology).values())
    )
    verdict = check_mutex(
        run.trace, "me", horizon=run.final_time,
        require_all_served=run.completed, clusters=clusters,
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok and (run.completed or not require_completion),
        violations=len(verdict.violations),
        measurements={
            "served": len(run.completions),
            "requested": requests_per_process * n,
            "completed": run.completed,
            "cs_count": verdict.info.get("cs_count", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "latency_p95": summarize(latencies).p95 if latencies else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def sweep_pif(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E3 sweep: PIF across system sizes, loss rates and scrambles."""
    return [
        run_pif_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def sweep_mutex(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E5 sweep: ME across system sizes, loss rates and scrambles."""
    return [
        run_mutex_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def pif_scaling_row(
    n: int,
    *,
    seeds: list[int],
    loss: float = 0.0,
    topology: Topology | str | None = None,
) -> dict[str, Any]:
    """E7: message/latency cost of one wave as a function of n.

    One requesting initiator; the cost of a complete wave is Θ(deg) messages
    per resend round and a constant number (max_state) of round trips —
    Θ(n) per round on the paper's complete graph.
    """
    msg_counts: list[int] = []
    per_peer: list[float] = []
    durations: list[int] = []
    name = "complete"
    for seed in seeds:
        top = _resolve_topology(n, topology, seed)
        sim = Simulator(
            n if top is None else None,
            lambda h: h.register(PifLayer("pif")),
            topology=top,
            seed=seed,
        )
        initiator = sim.pids[0]
        name = sim.topology.name
        layer = sim.layer(initiator, "pif")
        layer.request_broadcast("scale")
        from repro.types import RequestState

        done = sim.run(500_000, until=lambda s: layer.request is RequestState.DONE)
        if not done:
            raise SimulationError(f"scaling wave (n={n}, seed={seed}) never decided")
        waves = [w for w in extract_waves(sim.trace, "pif") if w.decided]
        msg_counts.append(sim.stats.sent)
        # Per-seed ratio: a seeded random family (gnp) gives each seed a
        # different graph, so the initiator's degree varies per trial.
        per_peer.append(sim.stats.sent / sim.network.degree(initiator))
        durations.append(waves[0].duration or 0)
    return {
        "n": n,
        "topology": name,
        "messages_mean": round(sum(msg_counts) / len(msg_counts), 1),
        "messages_per_peer": round(sum(per_peer) / len(per_peer), 1),
        "duration_mean": round(sum(durations) / len(durations), 1),
    }
