"""Experiment runners: one function per trial type, plus parameter sweeps.

Each trial builds a fresh seeded simulator, optionally scrambles it into an
arbitrary initial configuration, drives requests, runs to completion, checks
the relevant specification, and returns a flat result dict ready for table
rendering (experiments E3, E4, E5, E7 of DESIGN.md).

Every trial accepts an ``engine`` axis: ``"serial"`` (one in-process
scheduler) or ``"sharded"`` (:class:`repro.sim.sharded.ShardedSimulator` —
the topology partitioned across worker processes under the conservative
time-window protocol).  Both engines execute the *same* trial shape — build,
scramble, drive requests until served, drain ``DRAIN_TICKS`` — and produce
bit-identical traces for the same seed, so every specification check and
measurement below is engine-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import SimulationError
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.runtime import Simulator
from repro.sim.sharded import ShardedSimulator
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, arbitration_clusters, topology_from_spec
from repro.sim.trace import Trace
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import check_mutex
from repro.spec.pif_spec import check_pif
from repro.spec.waves import extract_waves
from repro.analysis.metrics import summarize
from repro.types import RequestState

__all__ = [
    "TrialResult",
    "EngineRun",
    "execute_trial",
    "run_pif_trial",
    "run_idl_trial",
    "run_mutex_trial",
    "sweep_pif",
    "sweep_mutex",
    "pif_scaling_row",
]

#: Ticks every trial runs past the driver's completion, so residual
#: (never-started) computations drain and — crucially — both engines stop on
#: the same full tick (the sharded engine detects completion at a window
#: barrier, which can overshoot the completion tick by up to one window).
DRAIN_TICKS = 200


def _resolve_topology(
    n: int, topology: Topology | str | None, seed: int
) -> Topology | None:
    """Normalize a trial's topology argument (None = the complete graph)."""
    if isinstance(topology, str):
        return topology_from_spec(topology, n, seed=seed)
    return topology


def _neighbor_map(run: "EngineRun") -> dict[int, tuple[int, ...]] | None:
    """Per-pid neighbour sets for spec checks; None on the complete graph
    (keeps the paper's original global reading in reports)."""
    if run.topology.is_complete:
        return None
    return {p: run.topology.neighbors(p) for p in run.pids}


@dataclass
class TrialResult:
    """Outcome of one trial: verdict plus measurements."""

    params: dict[str, Any]
    ok: bool
    violations: int
    measurements: dict[str, Any] = field(default_factory=dict)

    def row(self, *keys: str) -> list[Any]:
        merged = {**self.params, **self.measurements, "ok": self.ok,
                  "violations": self.violations}
        return [merged.get(k) for k in keys]


@dataclass
class EngineRun:
    """Engine-agnostic outcome of one driven run (either engine)."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    final_time: int
    topology: Topology
    pids: tuple[int, ...]

    def latencies(self) -> list[int]:
        return [c.latency for c in self.completions]


def _loss_model(loss: float):
    return BernoulliLoss(loss) if loss > 0 else NoLoss()


def execute_trial(
    n: int,
    build: Callable,
    *,
    topology: Topology | str | None = None,
    seed: int = 0,
    loss: float = 0.0,
    capacity: int = 1,
    latency: tuple[int, int] = (1, 3),
    scramble: bool = True,
    driver: dict[str, Any],
    horizon: int,
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
) -> EngineRun:
    """Run one driven trial on the selected engine.

    The shape is identical on both engines: build the system, scramble it
    into an arbitrary initial configuration, let the request driver issue
    and await every request (up to ``horizon``), then drain
    :data:`DRAIN_TICKS` more ticks.  For the same arguments the two engines
    return bit-identical traces, stats, finals and completions.
    """
    top = _resolve_topology(n, topology, seed)
    scramble_seed = seed ^ 0x5EED
    tag = driver["tag"]
    if engine == "serial":
        sim = Simulator(
            n if top is None else None,
            build,
            topology=top,
            seed=seed,
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
        )
        if scramble:
            sim.scramble(seed=scramble_seed)
        drv = RequestDriver(sim, **driver)
        completed = sim.run(horizon, until=lambda s: drv.done)
        sim.run(sim.now + DRAIN_TICKS)
        return EngineRun(
            trace=sim.trace,
            stats=sim.stats,
            finals={p: sim.layer(p, tag).request for p in sim.pids},
            completions=drv.completed(),
            completed=completed,
            final_time=sim.now,
            topology=sim.topology,
            pids=sim.pids,
        )
    if engine == "sharded":
        sharded = ShardedSimulator(
            n if top is None else None,
            build,
            topology=top,
            seed=seed,
            shards=shards,
            window=window,
            loss=_loss_model(loss),
            capacity=capacity,
            latency=latency,
        )
        result = sharded.run_trial(
            horizon=horizon,
            scramble_seed=scramble_seed if scramble else None,
            driver=driver,
            drain=DRAIN_TICKS,
        )
        return EngineRun(
            trace=result.trace,
            stats=result.stats,
            finals=result.finals,
            completions=result.completions,
            completed=result.completed,
            final_time=result.final_time,
            topology=sharded.topology,
            pids=sharded.pids,
        )
    raise SimulationError(f"unknown engine {engine!r}; expected serial or sharded")


def run_pif_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    capacity: int = 1,
    max_state: int | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
) -> TrialResult:
    """One PIF trial (E3): all processes broadcast; Specification 1 checked."""
    if max_state is None:
        max_state = capacity + 3
    run = execute_trial(
        n,
        lambda h: h.register(PifLayer("pif", max_state=max_state)),
        topology=topology,
        seed=seed,
        loss=loss,
        capacity=capacity,
        latency=latency,
        scramble=scramble,
        driver=dict(
            tag="pif",
            requests_per_process=requests_per_process,
            payload=lambda pid, k: f"msg-{pid}-{k}",
        ),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
    )
    if not run.completed:
        raise SimulationError(f"PIF trial did not finish within t={horizon}")
    verdict = check_pif(
        run.trace, "pif", run.pids, final_requests=run.finals,
        neighbors=_neighbor_map(run),
    )
    waves = [w for w in extract_waves(run.trace, "pif") if w.decided]
    durations = [w.duration for w in waves if w.duration is not None]
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss, "capacity": capacity,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "waves": len(waves),
            "messages": run.stats.sent,
            "msg_per_wave": round(run.stats.sent / max(1, len(waves)), 1),
            "wave_p50": summarize(durations).p50 if durations else 0,
            "wave_p95": summarize(durations).p95 if durations else 0,
            "final_time": run.final_time,
        },
    )


def run_idl_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    idents: dict[int, int] | None = None,
    topology: Topology | str | None = None,
    horizon: int = 2_000_000,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
) -> TrialResult:
    """One IDL trial (E4): Specification 2 checked against ground truth."""

    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer("idl", ident=ident))

    run = execute_trial(
        n,
        build,
        topology=topology,
        seed=seed,
        loss=loss,
        latency=latency,
        scramble=scramble,
        driver=dict(tag="idl", requests_per_process=requests_per_process),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
    )
    if not run.completed:
        raise SimulationError(f"IDL trial did not finish within t={horizon}")
    truth = {p: (idents[p] if idents else p) for p in run.pids}
    verdict = check_idl(
        run.trace, "idl", truth, final_requests=run.finals,
        neighborhoods=_neighbor_map(run),
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "computations": verdict.info.get("computations", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "final_time": run.final_time,
        },
    )


def run_mutex_trial(
    n: int,
    *,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    cs_duration: int = 3,
    use_paper_modulus: bool = False,
    topology: Topology | str | None = None,
    horizon: int = 6_000_000,
    require_completion: bool = True,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
) -> TrialResult:
    """One ME trial (E5): Specification 3 checked over the full trace.

    On a non-complete topology the Correctness check runs per leader
    cluster (the generalized guarantee — see :mod:`repro.core.mutex`).
    """
    run = execute_trial(
        n,
        lambda h: h.register(
            MutexLayer("me", cs_duration=cs_duration,
                       use_paper_modulus=use_paper_modulus)
        ),
        topology=topology,
        seed=seed,
        loss=loss,
        latency=latency,
        scramble=scramble,
        driver=dict(tag="me", requests_per_process=requests_per_process),
        horizon=horizon,
        engine=engine,
        shards=shards,
        window=window,
    )
    if require_completion and not run.completed:
        raise SimulationError(f"ME trial did not finish within t={horizon}")
    clusters = (
        None
        if run.topology.is_complete
        else list(arbitration_clusters(run.topology).values())
    )
    verdict = check_mutex(
        run.trace, "me", horizon=run.final_time,
        require_all_served=run.completed, clusters=clusters,
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": n, "seed": seed, "loss": loss,
                "topology": run.topology.name, "engine": engine},
        ok=verdict.ok and (run.completed or not require_completion),
        violations=len(verdict.violations),
        measurements={
            "served": len(run.completions),
            "requested": requests_per_process * n,
            "completed": run.completed,
            "cs_count": verdict.info.get("cs_count", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "latency_p95": summarize(latencies).p95 if latencies else 0,
            "final_time": run.final_time,
        },
    )


def sweep_pif(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E3 sweep: PIF across system sizes, loss rates and scrambles."""
    return [
        run_pif_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def sweep_mutex(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E5 sweep: ME across system sizes, loss rates and scrambles."""
    return [
        run_mutex_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def pif_scaling_row(
    n: int,
    *,
    seeds: list[int],
    loss: float = 0.0,
    topology: Topology | str | None = None,
) -> dict[str, Any]:
    """E7: message/latency cost of one wave as a function of n.

    One requesting initiator; the cost of a complete wave is Θ(deg) messages
    per resend round and a constant number (max_state) of round trips —
    Θ(n) per round on the paper's complete graph.
    """
    msg_counts: list[int] = []
    per_peer: list[float] = []
    durations: list[int] = []
    name = "complete"
    for seed in seeds:
        top = _resolve_topology(n, topology, seed)
        sim = Simulator(
            n if top is None else None,
            lambda h: h.register(PifLayer("pif")),
            topology=top,
            seed=seed,
        )
        initiator = sim.pids[0]
        name = sim.topology.name
        layer = sim.layer(initiator, "pif")
        layer.request_broadcast("scale")
        from repro.types import RequestState

        done = sim.run(500_000, until=lambda s: layer.request is RequestState.DONE)
        if not done:
            raise SimulationError(f"scaling wave (n={n}, seed={seed}) never decided")
        waves = [w for w in extract_waves(sim.trace, "pif") if w.decided]
        msg_counts.append(sim.stats.sent)
        # Per-seed ratio: a seeded random family (gnp) gives each seed a
        # different graph, so the initiator's degree varies per trial.
        per_peer.append(sim.stats.sent / sim.network.degree(initiator))
        durations.append(waves[0].duration or 0)
    return {
        "n": n,
        "topology": name,
        "messages_mean": round(sum(msg_counts) / len(msg_counts), 1),
        "messages_per_peer": round(sum(per_peer) / len(per_peer), 1),
        "duration_mean": round(sum(durations) / len(durations), 1),
    }
