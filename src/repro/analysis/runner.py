"""Experiment runners: one function per trial type, plus parameter sweeps.

Each trial builds a :class:`~repro.engine.TrialSpec`, hands it to the
:func:`repro.engine.execute` pipeline (spec → registry → backend → trace
→ specs/monitors → provenance), checks the relevant specification over
the returned trace and returns a flat result dict ready for table
rendering (experiments E3, E4, E5, E7 of DESIGN.md).

Every trial accepts an ``engine`` axis answered by the backend registry
(:mod:`repro.engine.registry`): ``serial``, ``sharded``, ``async`` and
``cluster`` are built in, and all execute the *same* trial shape —
build, scramble, drive requests until served, drain
:data:`~repro.engine.DRAIN_TICKS`.  Deterministic configurations
(``serial``, ``sharded``, ``async``+``loopback``,
``cluster``+``windowed``) produce bit-identical traces for the same
seed, so every specification check and measurement below is
engine-agnostic; best-effort configurations (paced transports, cluster
freerun) carry their correctness in the online monitor verdicts.

The ``run_*_trial`` wrappers take either the legacy keyword axes or a
ready ``spec=`` (built once, e.g. by the CLI via
:meth:`TrialSpec.from_cli_args`) and fill in the experiment part:
``build``, ``protocol``, the driver config and the per-experiment
horizon default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.engine import (
    DRAIN_TICKS,
    ChaosOpts,
    ClusterOpts,
    EngineRun,
    ObsOpts,
    ShardingOpts,
    TransportOpts,
    TrialSpec,
    execute,
)
from repro.engine.base import resolve_topology as _resolve_topology
from repro.engine.spec import resolve_fault_plan
from repro.errors import HorizonExceeded, SimulationError
from repro.sim.runtime import Simulator
from repro.sim.topology import Topology, arbitration_clusters
from repro.sim.trace import EventKind, Trace
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import check_mutex
from repro.spec.pif_spec import check_pif
from repro.spec.waves import extract_waves
from repro.analysis.metrics import summarize

__all__ = [
    "TrialResult",
    "EngineRun",
    "DRAIN_TICKS",
    "execute_trial",
    "run_pif_trial",
    "run_idl_trial",
    "run_mutex_trial",
    "sweep_pif",
    "sweep_mutex",
    "pif_scaling_row",
]

#: Per-experiment horizon defaults, applied when neither the caller nor
#: the spec names one (the ME budget is larger: convergence on rings).
PIF_HORIZON = 2_000_000
IDL_HORIZON = 2_000_000
MUTEX_HORIZON = 6_000_000


@dataclass
class TrialResult:
    """Outcome of one trial: verdict plus measurements.

    ``measurements`` holds trace-derived quantities only — identical
    across engines for the same seed, which is what the equivalence gates
    compare.  Run provenance (which engine/transport executed the trial,
    its wall-clock cost, online monitor verdicts) lives in ``provenance``
    so bench artifacts are comparable across engines without perturbing
    the bit-identity contract.
    """

    params: dict[str, Any]
    ok: bool
    violations: int
    measurements: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def row(self, *keys: str) -> list[Any]:
        merged = {**self.params, **self.measurements, **self.provenance,
                  "ok": self.ok, "violations": self.violations}
        return [merged.get(k) for k in keys]

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready record (bench artifacts, aggregation)."""
        return {
            **self.params,
            "ok": self.ok,
            "violations": self.violations,
            **self.measurements,
            **self.provenance,
        }


def _neighbor_map(run: EngineRun) -> dict[int, tuple[int, ...]] | None:
    """Per-pid neighbour sets for spec checks; None on the complete graph
    (keeps the paper's original global reading in reports)."""
    if run.topology.is_complete:
        return None
    return {p: run.topology.neighbors(p) for p in run.pids}


def _count_cs_grants(trace: Trace, tag: str) -> int:
    """Arbitration rounds spent: critical-section entries of ``tag``.

    Reads the CS_ENTER kind index — no full-trace scan, no event views.
    """
    return sum(
        1 for row in trace.kind_rows(EventKind.CS_ENTER)
        if trace.data_at(row).get("tag") == tag
    )


def execute_trial(
    n: int,
    build: Callable,
    *,
    topology: Topology | str | None = None,
    seed: int = 0,
    loss: float = 0.0,
    capacity: int = 1,
    latency: tuple[int, int] = (1, 3),
    scramble: bool = True,
    driver: dict[str, Any],
    horizon: int,
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    round_budget: int | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    protocol: dict[str, Any] | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> EngineRun:
    """Run one driven trial on the selected engine.

    Deprecated keyword spelling: this adapter folds the flat keyword axes
    into a :class:`~repro.engine.TrialSpec` and delegates to
    :func:`repro.engine.execute` — new code should build the spec
    directly.  Behaviour is identical (same trace, stats, finals,
    completions and provenance); unsupported axis/engine combinations now
    raise :class:`~repro.errors.SpecError` via the backend's capability
    declaration instead of ad-hoc guards.

    See :func:`repro.engine.execute` for the pipeline contract and
    docs/architecture.md for the layer map.
    """
    spec = TrialSpec(
        n=n,
        build=build,
        protocol=protocol,
        topology=topology,
        seed=seed,
        loss=loss,
        capacity=capacity,
        latency=latency,
        scramble=scramble,
        driver=driver,
        horizon=horizon,
        round_budget=round_budget,
        engine=engine,
        sharding=ShardingOpts(shards=shards, window=window),
        transport=TransportOpts(transport=transport, tick=tick),
        cluster=ClusterOpts(hosts=hosts, sync=sync, listen=cluster_listen),
        chaos=ChaosOpts(plan=resolve_fault_plan(fault_plan)),
        obs=ObsOpts(metrics=metrics, timeline=timeline),
    )
    return execute(spec)


def _base_spec(
    spec: TrialSpec | None,
    n: int | None,
    *,
    seed: int,
    loss: float,
    capacity: int,
    topology: Topology | str | None,
    latency: tuple[int, int],
    scramble: bool,
    engine: str,
    shards: int | None,
    window: int | None,
    transport: str,
    tick: float | None,
    round_budget: int | None,
    hosts: int | None,
    sync: str | None,
    cluster_listen: str | None,
    fault_plan: Any,
    metrics: str | None,
    timeline: str | None,
    horizon: int | None,
    default_horizon: int,
) -> TrialSpec:
    """The axis part of a wrapper's spec: the caller's ready ``spec=`` or
    one folded from the legacy keywords, with the experiment's horizon
    default applied."""
    if spec is None:
        if n is None:
            raise SimulationError("trial needs n= (or a ready spec=)")
        spec = TrialSpec(
            n=n,
            topology=topology,
            seed=seed,
            loss=loss,
            capacity=capacity,
            latency=latency,
            scramble=scramble,
            horizon=horizon,
            round_budget=round_budget,
            engine=engine,
            sharding=ShardingOpts(shards=shards, window=window),
            transport=TransportOpts(transport=transport, tick=tick),
            cluster=ClusterOpts(hosts=hosts, sync=sync, listen=cluster_listen),
            chaos=ChaosOpts(plan=resolve_fault_plan(fault_plan)),
            obs=ObsOpts(metrics=metrics, timeline=timeline),
        )
    if spec.horizon is None:
        spec = replace(spec, horizon=default_horizon)
    return spec


def run_pif_trial(
    n: int | None = None,
    *,
    spec: TrialSpec | None = None,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    capacity: int = 1,
    max_state: int | None = None,
    topology: Topology | str | None = None,
    horizon: int | None = None,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One PIF trial (E3): all processes broadcast; Specification 1 checked."""
    spec = _base_spec(
        spec, n, seed=seed, loss=loss, capacity=capacity, topology=topology,
        latency=latency, scramble=scramble, engine=engine, shards=shards,
        window=window, transport=transport, tick=tick, round_budget=None,
        hosts=hosts, sync=sync, cluster_listen=cluster_listen,
        fault_plan=fault_plan, metrics=metrics, timeline=timeline,
        horizon=horizon, default_horizon=PIF_HORIZON,
    )
    if max_state is None:
        max_state = spec.capacity + 3
    spec = replace(
        spec,
        build=lambda h: h.register(PifLayer("pif", max_state=max_state)),
        protocol={"kind": "pif", "max_state": max_state},
        driver=dict(
            tag="pif",
            requests_per_process=requests_per_process,
            payload_fmt="msg-{pid}-{k}",
        ),
    )
    run = execute(spec)
    if not run.completed:
        raise HorizonExceeded(
            "PIF trial did not finish",
            horizon=spec.horizon,
            served=len(run.completions),
            requested=requests_per_process * len(run.pids),
            window=run.window,
        )
    verdict = check_pif(
        run.trace, "pif", run.pids, final_requests=run.finals,
        neighbors=_neighbor_map(run),
    )
    waves = [w for w in extract_waves(run.trace, "pif") if w.decided]
    durations = [w.duration for w in waves if w.duration is not None]
    return TrialResult(
        params={"n": len(run.pids), "seed": spec.seed, "loss": spec.loss,
                "capacity": spec.capacity, "topology": run.topology.name,
                "engine": spec.engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "waves": len(waves),
            "messages": run.stats.sent,
            "msg_per_wave": round(run.stats.sent / max(1, len(waves)), 1),
            "wave_p50": summarize(durations).p50 if durations else 0,
            "wave_p95": summarize(durations).p95 if durations else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def run_idl_trial(
    n: int | None = None,
    *,
    spec: TrialSpec | None = None,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    idents: dict[int, int] | None = None,
    topology: Topology | str | None = None,
    horizon: int | None = None,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One IDL trial (E4): Specification 2 checked against ground truth."""

    def build(host) -> None:
        ident = idents[host.pid] if idents else None
        host.register(IdlLayer("idl", ident=ident))

    spec = _base_spec(
        spec, n, seed=seed, loss=loss, capacity=1, topology=topology,
        latency=latency, scramble=scramble, engine=engine, shards=shards,
        window=window, transport=transport, tick=tick, round_budget=None,
        hosts=hosts, sync=sync, cluster_listen=cluster_listen,
        fault_plan=fault_plan, metrics=metrics, timeline=timeline,
        horizon=horizon, default_horizon=IDL_HORIZON,
    )
    spec = replace(
        spec,
        build=build,
        protocol={"kind": "idl", "idents": idents},
        driver=dict(tag="idl", requests_per_process=requests_per_process),
    )
    run = execute(spec)
    if not run.completed:
        raise HorizonExceeded(
            "IDL trial did not finish",
            horizon=spec.horizon,
            served=len(run.completions),
            requested=requests_per_process * len(run.pids),
            window=run.window,
        )
    truth = {p: (idents[p] if idents else p) for p in run.pids}
    verdict = check_idl(
        run.trace, "idl", truth, final_requests=run.finals,
        neighborhoods=_neighbor_map(run),
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": len(run.pids), "seed": spec.seed, "loss": spec.loss,
                "topology": run.topology.name, "engine": spec.engine},
        ok=verdict.ok,
        violations=len(verdict.violations),
        measurements={
            "computations": verdict.info.get("computations", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def run_mutex_trial(
    n: int | None = None,
    *,
    spec: TrialSpec | None = None,
    seed: int = 0,
    loss: float = 0.0,
    requests_per_process: int = 2,
    scramble: bool = True,
    cs_duration: int = 3,
    use_paper_modulus: bool = False,
    topology: Topology | str | None = None,
    horizon: int | None = None,
    require_completion: bool = True,
    latency: tuple[int, int] = (1, 3),
    engine: str = "serial",
    shards: int | None = None,
    window: int | None = None,
    transport: str = "loopback",
    tick: float | None = None,
    round_budget: int | None = None,
    hosts: int | None = None,
    sync: str | None = None,
    cluster_listen: str | None = None,
    fault_plan: Any = None,
    metrics: str | None = None,
    timeline: str | None = None,
) -> TrialResult:
    """One ME trial (E5): Specification 3 checked over the full trace.

    On a non-complete topology the Correctness check runs per leader
    cluster (the generalized guarantee — see :mod:`repro.core.mutex`).

    ``round_budget`` bounds convergence cost: the trial aborts with
    :class:`~repro.errors.HorizonExceeded` once more than that many CS
    grants happened without serving every request.  A completing trial
    uses about ``(requests_per_process + 1) * n`` grants (measured across
    topologies — see docs/engine.md), so small multiples of that are
    generous budgets; the guard exists because per-grant *time* grows
    steeply with ring size, making the plain horizon an expensive way to
    detect impractical configurations.
    """
    spec = _base_spec(
        spec, n, seed=seed, loss=loss, capacity=1, topology=topology,
        latency=latency, scramble=scramble, engine=engine, shards=shards,
        window=window, transport=transport, tick=tick,
        round_budget=round_budget, hosts=hosts, sync=sync,
        cluster_listen=cluster_listen, fault_plan=fault_plan,
        metrics=metrics, timeline=timeline,
        horizon=horizon, default_horizon=MUTEX_HORIZON,
    )
    spec = replace(
        spec,
        build=lambda h: h.register(
            MutexLayer("me", cs_duration=cs_duration,
                       use_paper_modulus=use_paper_modulus)
        ),
        protocol={"kind": "me", "cs_duration": cs_duration,
                  "use_paper_modulus": use_paper_modulus},
        driver=dict(tag="me", requests_per_process=requests_per_process),
    )
    run = execute(spec)
    if require_completion and not run.completed:
        raise HorizonExceeded(
            "ME trial did not finish",
            horizon=spec.horizon,
            served=len(run.completions),
            requested=requests_per_process * len(run.pids),
            rounds=_count_cs_grants(run.trace, "me"),
            window=run.window,
        )
    clusters = (
        None
        if run.topology.is_complete
        else list(arbitration_clusters(run.topology).values())
    )
    verdict = check_mutex(
        run.trace, "me", horizon=run.final_time,
        require_all_served=run.completed, clusters=clusters,
    )
    latencies = run.latencies()
    return TrialResult(
        params={"n": len(run.pids), "seed": spec.seed, "loss": spec.loss,
                "topology": run.topology.name, "engine": spec.engine},
        ok=verdict.ok and (run.completed or not require_completion),
        violations=len(verdict.violations),
        measurements={
            "served": len(run.completions),
            "requested": requests_per_process * len(run.pids),
            "completed": run.completed,
            "cs_count": verdict.info.get("cs_count", 0),
            "messages": run.stats.sent,
            "latency_p50": summarize(latencies).p50 if latencies else 0,
            "latency_p95": summarize(latencies).p95 if latencies else 0,
            "final_time": run.final_time,
        },
        provenance=run.provenance(),
    )


def sweep_pif(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E3 sweep: PIF across system sizes, loss rates and scrambles."""
    return [
        run_pif_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def sweep_mutex(
    ns: list[int],
    losses: list[float],
    seeds: list[int],
    **kwargs: Any,
) -> list[TrialResult]:
    """E5 sweep: ME across system sizes, loss rates and scrambles."""
    return [
        run_mutex_trial(n, seed=seed, loss=loss, **kwargs)
        for n in ns
        for loss in losses
        for seed in seeds
    ]


def pif_scaling_row(
    n: int,
    *,
    seeds: list[int],
    loss: float = 0.0,
    topology: Topology | str | None = None,
) -> dict[str, Any]:
    """E7: message/latency cost of one wave as a function of n.

    One requesting initiator; the cost of a complete wave is Θ(deg) messages
    per resend round and a constant number (max_state) of round trips —
    Θ(n) per round on the paper's complete graph.
    """
    msg_counts: list[int] = []
    per_peer: list[float] = []
    durations: list[int] = []
    name = "complete"
    for seed in seeds:
        top = _resolve_topology(n, topology, seed)
        sim = Simulator(
            n if top is None else None,
            lambda h: h.register(PifLayer("pif")),
            topology=top,
            seed=seed,
        )
        initiator = sim.pids[0]
        name = sim.topology.name
        layer = sim.layer(initiator, "pif")
        layer.request_broadcast("scale")
        from repro.types import RequestState

        done = sim.run(500_000, until=lambda s: layer.request is RequestState.DONE)
        if not done:
            raise SimulationError(f"scaling wave (n={n}, seed={seed}) never decided")
        waves = [w for w in extract_waves(sim.trace, "pif") if w.decided]
        msg_counts.append(sim.stats.sent)
        # Per-seed ratio: a seeded random family (gnp) gives each seed a
        # different graph, so the initiator's degree varies per trial.
        per_peer.append(sim.stats.sent / sim.network.degree(initiator))
        durations.append(waves[0].duration or 0)
    return {
        "n": n,
        "topology": name,
        "messages_mean": round(sum(msg_counts) / len(msg_counts), 1),
        "messages_per_peer": round(sum(per_peer) / len(per_peer), 1),
        "duration_mean": round(sum(durations) / len(durations), 1),
    }
