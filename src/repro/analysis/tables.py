"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
