"""Experiment harness: runners, sweeps, comparisons, ablations, tables."""

from repro.analysis.ablations import (
    FlagAblationResult,
    run_flag_ablation,
    run_modulus_ablation,
    run_naive_ablation,
)
from repro.analysis.compare import (
    MutexComparison,
    aggregate_comparison,
    compare_mutex_protocols,
)
from repro.analysis.experiments import (
    Figure1Result,
    run_capacity_sweep,
    run_figure1,
    run_impossibility_experiment,
    run_property1_check,
)
from repro.analysis.metrics import Summary, summarize
from repro.analysis.runner import (
    TrialResult,
    pif_scaling_row,
    run_idl_trial,
    run_mutex_trial,
    run_pif_trial,
    sweep_mutex,
    sweep_pif,
)
from repro.analysis.tables import render_table

__all__ = [
    "Figure1Result",
    "FlagAblationResult",
    "MutexComparison",
    "Summary",
    "TrialResult",
    "aggregate_comparison",
    "compare_mutex_protocols",
    "pif_scaling_row",
    "render_table",
    "run_capacity_sweep",
    "run_figure1",
    "run_flag_ablation",
    "run_idl_trial",
    "run_impossibility_experiment",
    "run_modulus_ablation",
    "run_mutex_trial",
    "run_naive_ablation",
    "run_pif_trial",
    "run_property1_check",
    "summarize",
    "sweep_mutex",
    "sweep_pif",
]
