"""E6 — snap- vs self-stabilization, measured.

From the same arbitrary initial configurations, run (a) the paper's
snap-stabilizing Protocol ME and (b) the self-stabilizing token-ring mutex
baseline, and count safety violations among *requesting* processes and
requests served.  The paper's Section 2 comparison predicts: the
self-stabilizing protocol may violate safety while it converges (and does,
whenever the scramble forges extra tokens); the snap-stabilizing protocol
never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.self_stab_mutex import TokenMutexLayer
from repro.core.mutex import MutexLayer
from repro.core.requests import RequestDriver
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.runtime import Simulator
from repro.sim.topology import Topology, arbitration_clusters, topology_from_spec
from repro.spec.mutex_spec import check_mutex

__all__ = ["MutexComparison", "compare_mutex_protocols", "aggregate_comparison"]


@dataclass
class MutexComparison:
    """One seed's head-to-head outcome.

    ``self_last_violation`` is the time of the self-stabilizing baseline's
    last safety violation — its *convergence point*: everything before it is
    the unsafe window a snap-stabilizing protocol never has (None when the
    run happened to be violation-free).
    """

    seed: int
    n: int
    snap_violations: int
    snap_served: int
    self_violations: int
    self_served: int
    self_last_violation: int | None = None

    def row(self) -> list[Any]:
        return [
            self.seed,
            self.snap_violations,
            self.snap_served,
            self.self_violations,
            self.self_served,
            self.self_last_violation if self.self_last_violation is not None else "-",
        ]


def _run_one(
    protocol: str,
    n: int,
    seed: int,
    loss: float,
    requests_per_process: int,
    horizon: int,
    topology: Topology | str | None = None,
) -> tuple[int, int, int | None]:
    """Returns (safety violations, requests served, last violation time)."""
    if protocol == "snap":
        build = lambda h: h.register(MutexLayer("mx"))
    elif protocol == "self":
        build = lambda h: h.register(TokenMutexLayer("mx"))
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    if isinstance(topology, str):
        topology = topology_from_spec(topology, n, seed=seed)
    sim = Simulator(
        n if topology is None else None, build, topology=topology, seed=seed,
        loss=BernoulliLoss(loss) if loss > 0 else NoLoss(),
    )
    sim.scramble(seed=seed ^ 0xBAD)
    driver = RequestDriver(sim, "mx", requests_per_process=requests_per_process)
    sim.run(horizon, until=lambda s: driver.done)
    # On a non-complete topology the snap protocol guarantees exclusion per
    # leader cluster (the generalized reading); the token baseline still
    # claims — and, while converging, violates — global exclusion, so it is
    # judged against the stricter global clusters=None reading it targets.
    clusters = (
        list(arbitration_clusters(sim.topology).values())
        if protocol == "snap" and not sim.topology.is_complete
        else None
    )
    verdict = check_mutex(
        sim.trace, "mx", horizon=sim.now, require_all_served=False,
        clusters=clusters,
    )
    correctness = verdict.by_property("Correctness")
    last_violation = max(
        (v.time for v in correctness if v.time is not None), default=None
    )
    return len(correctness), driver.total_completed(), last_violation


def compare_mutex_protocols(
    n: int = 4,
    seeds: list[int] | None = None,
    *,
    loss: float = 0.0,
    requests_per_process: int = 2,
    horizon: int = 3_000_000,
    topology: Topology | str | None = None,
) -> list[MutexComparison]:
    """Head-to-head over a batch of arbitrary initial configurations.

    ``topology`` accepts ``complete`` (the paper's setting, default) or
    ``ring`` — the token baseline circulates on the pid-order ring, which
    both embed.
    """
    if seeds is None:
        seeds = list(range(10))
    results: list[MutexComparison] = []
    for seed in seeds:
        snap_violations, snap_served, _ = _run_one(
            "snap", n, seed, loss, requests_per_process, horizon, topology
        )
        self_violations, self_served, self_last = _run_one(
            "self", n, seed, loss, requests_per_process, horizon, topology
        )
        results.append(
            MutexComparison(
                seed=seed,
                n=n,
                snap_violations=snap_violations,
                snap_served=snap_served,
                self_violations=self_violations,
                self_served=self_served,
                self_last_violation=self_last,
            )
        )
    return results


def aggregate_comparison(results: list[MutexComparison]) -> dict[str, Any]:
    """Totals across seeds — the E6 headline numbers."""
    return {
        "configs": len(results),
        "snap_total_violations": sum(r.snap_violations for r in results),
        "snap_total_served": sum(r.snap_served for r in results),
        "self_total_violations": sum(r.self_violations for r in results),
        "self_total_served": sum(r.self_served for r in results),
        "self_configs_with_violation": sum(
            1 for r in results if r.self_violations > 0
        ),
    }
