"""The Theorem 1 adversary construction, executable.

Theorem 1: no safety-distributed specification admits a snap-stabilizing
solution in message-passing systems with finite yet *unbounded* channel
capacity.  The proof constructs, from per-process witness executions, an
initial configuration γ₀ whose channels are pre-loaded with exactly the
message sequences each process consumed in its witness fragment; replaying
each process's local schedule from γ₀ realizes the bad-factor.

This module carries out that construction literally, against our own
snap-stabilizing mutual-exclusion protocol (Protocol ME):

1. :func:`record_fragment` — for each process ``p``, run a *solo* execution
   in which only ``p`` requests the critical section, and record the
   fragment ``e¹_p``: ``p``'s local state when it requests, the ordered
   message sequences ``MesSeq^q_p`` it consumes from each peer, and its
   local step schedule (activations / receipts) up to CS entry.
2. :func:`build_gamma0` — assemble γ₀: every process restored to its
   fragment-initial state; every channel ``q → p`` pre-loaded with
   ``MesSeq^q_p`` in order.  On unbounded channels this always succeeds;
   on bounded channels the injection overflows and raises
   :class:`~repro.errors.ImpossibilityConstructionError` — which is exactly
   the observation that lets Section 4 escape the impossibility.
3. :func:`replay` — drive every process through its recorded schedule.
   Determinism guarantees each process repeats its witness behaviour, so
   *all* processes end up requesting-and-inside the critical section: the
   abstract-configuration sequence contains the mutual-exclusion bad-factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.mutex import MutexLayer
from repro.errors import ImpossibilityConstructionError, SimulationError
from repro.sim.configuration import AbstractConfiguration, capture_abstract
from repro.sim.runtime import Simulator
from repro.spec.safety_distributed import (
    SafetyDistributedSpec,
    concurrent_cs_count,
    mutual_exclusion_spec,
)
from repro.types import RequestState

__all__ = [
    "Step",
    "Fragment",
    "ImpossibilityResult",
    "record_fragment",
    "build_gamma0",
    "replay",
    "demonstrate_impossibility",
    "attempt_on_bounded",
]

BuildFn = Callable[..., None]


@dataclass(frozen=True)
class Step:
    """One local step of a process schedule."""

    kind: str  # "activate" | "receive"
    src: int | None = None  # sender, for receive steps
    tag: str | None = None  # message tag, for receive steps


@dataclass
class Fragment:
    """The witness fragment e¹_p of one process (proof of Theorem 1)."""

    pid: int
    initial_state: dict[str, dict[str, Any]]
    #: MesSeq^q_p — ordered messages consumed from each peer q.
    received: dict[int, list[Any]] = field(default_factory=dict)
    #: p's local schedule from the request to (and including) CS entry.
    schedule: list[Step] = field(default_factory=list)

    @property
    def messages_consumed(self) -> int:
        return sum(len(v) for v in self.received.values())

    def max_per_channel(self) -> int:
        """The deepest single-channel message sequence (capacity needed)."""
        per_channel_per_tag: dict[tuple[int, str], int] = {}
        for src, msgs in self.received.items():
            for msg in msgs:
                key = (src, msg.tag)
                per_channel_per_tag[key] = per_channel_per_tag.get(key, 0) + 1
        return max(per_channel_per_tag.values(), default=0)


def _default_build(host) -> None:
    host.register(MutexLayer("me"))


def record_fragment(
    pid: int,
    n: int,
    *,
    build: BuildFn = _default_build,
    tag: str = "me",
    seed: int = 0,
    horizon: int = 500_000,
) -> Fragment:
    """Record the witness fragment of process ``pid``.

    Runs a clean solo execution (only ``pid`` requests the critical
    section — legal behaviour, satisfying the specification) and records
    everything Theorem 1's construction needs.
    """
    sim = Simulator(n, build, seed=seed)
    layer = sim.layer(pid, tag)
    if not isinstance(layer, MutexLayer):
        raise SimulationError(f"layer {tag!r} at {pid} is not a MutexLayer")

    layer.request_cs()
    fragment = Fragment(
        pid=pid,
        initial_state=sim.host(pid).snapshot(),
        received={q: [] for q in sim.network.peers_of(pid)},
    )

    def on_activate(apid: int) -> None:
        if apid != pid or layer.in_cs:
            return
        fragment.schedule.append(Step(kind="activate"))

    def on_deliver(src: int, dst: int, msg: Any) -> None:
        if dst != pid or layer.in_cs:
            return
        fragment.received[src].append(msg)
        fragment.schedule.append(Step(kind="receive", src=src, tag=msg.tag))

    sim.activation_hooks.append(on_activate)
    sim.delivery_hooks.append(on_deliver)

    entered = sim.run(horizon, until=lambda s: layer.in_cs)
    if not entered:
        raise ImpossibilityConstructionError(
            f"process {pid} never entered the CS within t={horizon} "
            "(cannot record a witness fragment)"
        )
    # Trim trailing no-op activations after the entering one (none are
    # recorded post-entry thanks to the in_cs guard, but the entering
    # activation itself is legitimately the last step).
    return fragment


def record_all_fragments(
    n: int,
    *,
    build: BuildFn = _default_build,
    tag: str = "me",
    seed: int = 0,
    horizon: int = 500_000,
) -> list[Fragment]:
    """One witness fragment per process (point (2) of Definition 5)."""
    sim = Simulator(n, build, seed=seed)
    return [
        record_fragment(pid, n, build=build, tag=tag, seed=seed + i, horizon=horizon)
        for i, pid in enumerate(sim.pids)
    ]


def build_gamma0(
    fragments: Sequence[Fragment],
    *,
    build: BuildFn = _default_build,
    unbounded: bool = True,
    capacity: int = 1,
    seed: int = 0,
) -> Simulator:
    """Assemble the initial configuration γ₀ of Theorem 1's proof.

    Raises :class:`ImpossibilityConstructionError` when the channels cannot
    hold the recorded message sequences (bounded capacity) — the theorem's
    escape hatch.
    """
    n = len(fragments)
    sim = Simulator(
        n, build, seed=seed, auto=False, unbounded=unbounded, capacity=capacity
    )
    for fragment in fragments:
        sim.host(fragment.pid).restore(fragment.initial_state)
    for fragment in fragments:
        for src, msgs in fragment.received.items():
            for msg in msgs:
                try:
                    sim.inject(src, fragment.pid, msg, schedule=False)
                except Exception as exc:  # ChannelError on bounded channels
                    needed = fragment.max_per_channel()
                    raise ImpossibilityConstructionError(
                        f"gamma_0 does not exist with capacity {capacity}: "
                        f"channel {src}->{fragment.pid} needs >= {needed} "
                        f"slots for one tag ({exc})"
                    ) from exc
    return sim


def replay(
    sim: Simulator,
    fragments: Sequence[Fragment],
    *,
    tag: str = "me",
    capture_every: int = 1,
) -> list[AbstractConfiguration]:
    """Replay every fragment schedule from γ₀; return the abstract configs.

    Processes advance round-robin, one local step per round.  Each receive
    step consumes the oldest pre-loaded message of the recorded tag from the
    recorded sender — determinism makes every process repeat its witness
    behaviour exactly.
    """
    cursors = {f.pid: 0 for f in fragments}
    by_pid = {f.pid: f for f in fragments}
    configs: list[AbstractConfiguration] = [capture_abstract(sim)]
    rounds = 0
    while any(cursors[pid] < len(by_pid[pid].schedule) for pid in cursors):
        progressed = False
        for pid in sorted(cursors):
            fragment = by_pid[pid]
            i = cursors[pid]
            if i >= len(fragment.schedule):
                continue
            step = fragment.schedule[i]
            if step.kind == "activate":
                sim.activate(pid)
            else:
                assert step.src is not None
                delivered = sim.step_deliver(step.src, pid, tag=step.tag)
                if delivered is None:
                    raise ImpossibilityConstructionError(
                        f"replay desync: no message of tag {step.tag!r} in "
                        f"channel {step.src}->{pid} at step {i}"
                    )
            cursors[pid] = i + 1
            progressed = True
        rounds += 1
        if rounds % capture_every == 0:
            configs.append(capture_abstract(sim))
        if not progressed:  # pragma: no cover - defensive
            break
    configs.append(capture_abstract(sim))
    return configs


@dataclass
class ImpossibilityResult:
    """Outcome of the end-to-end Theorem 1 demonstration."""

    n: int
    fragments: list[Fragment]
    violated: bool
    max_concurrency: int
    messages_preloaded: int
    max_channel_depth: int
    spec: SafetyDistributedSpec

    def summary(self) -> str:
        status = "VIOLATED" if self.violated else "not violated"
        return (
            f"Theorem 1 construction (n={self.n}): safety {status}; "
            f"{self.max_concurrency}/{self.n} processes concurrently in CS; "
            f"{self.messages_preloaded} messages pre-loaded in gamma_0 "
            f"(deepest channel: {self.max_channel_depth} >> capacity 1)"
        )


def demonstrate_impossibility(
    n: int = 3,
    *,
    seed: int = 0,
    tag: str = "me",
    build: BuildFn = _default_build,
) -> ImpossibilityResult:
    """End-to-end Theorem 1 demonstration on unbounded channels."""
    fragments = record_all_fragments(n, build=build, tag=tag, seed=seed)
    sim = build_gamma0(fragments, build=build, unbounded=True, seed=seed)
    configs = replay(sim, fragments, tag=tag)
    spec = mutual_exclusion_spec(tag=tag, concurrency=2)
    max_conc = max(concurrent_cs_count(c, tag) for c in configs)
    return ImpossibilityResult(
        n=n,
        fragments=fragments,
        violated=spec.violated_by(configs),
        max_concurrency=max_conc,
        messages_preloaded=sum(f.messages_consumed for f in fragments),
        max_channel_depth=max(f.max_per_channel() for f in fragments),
        spec=spec,
    )


def attempt_on_bounded(
    fragments: Sequence[Fragment],
    *,
    capacity: int = 1,
    build: BuildFn = _default_build,
    seed: int = 0,
) -> ImpossibilityConstructionError:
    """Show the construction *fails* on bounded channels.

    Returns the raised :class:`ImpossibilityConstructionError` (the caller
    asserts on it); raises :class:`SimulationError` if, unexpectedly, the
    construction succeeded.
    """
    try:
        build_gamma0(fragments, build=build, unbounded=False,
                     capacity=capacity, seed=seed)
    except ImpossibilityConstructionError as exc:
        return exc
    raise SimulationError(
        f"gamma_0 unexpectedly fit into capacity-{capacity} channels"
    )
