"""Executable Theorem 1: impossibility with unbounded channel capacity."""

from repro.impossibility.construction import (
    Fragment,
    ImpossibilityResult,
    Step,
    attempt_on_bounded,
    build_gamma0,
    demonstrate_impossibility,
    record_all_fragments,
    record_fragment,
    replay,
)

__all__ = [
    "Fragment",
    "ImpossibilityResult",
    "Step",
    "attempt_on_bounded",
    "build_gamma0",
    "demonstrate_impossibility",
    "record_all_fragments",
    "record_fragment",
    "replay",
]
