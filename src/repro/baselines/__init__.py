"""Baselines and comparators: naive PIF, self-stabilizing mutex, ABP."""

from repro.baselines.abp import AbpMessage, AbpReceiverLayer, AbpSenderLayer
from repro.baselines.naive_pif import NaiveMessage, NaivePifLayer
from repro.baselines.self_stab_mutex import TokenMessage, TokenMutexLayer

__all__ = [
    "AbpMessage",
    "AbpReceiverLayer",
    "AbpSenderLayer",
    "NaiveMessage",
    "NaivePifLayer",
    "TokenMessage",
    "TokenMutexLayer",
]
