"""Afek–Brown style self-stabilizing alternating-bit protocol (related work).

The paper's related-work section credits Afek & Brown [2] with using random
sequence numbers to beat unbounded-capacity channels for *self*-stabilizing
data transfer.  This module implements that idea for one sender/receiver
pair: each data word carries a label drawn at random from a large space; the
sender retransmits until an acknowledgment echoing the current label
arrives.  Stale garbage in the channels matches the current label only with
probability ``1/label_space``, so the protocol stabilizes with probability 1
— but, unlike Protocol PIF, it *can* be fooled right after a bad initial
configuration, which is the self- vs snap-stabilization gap in a nutshell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["AbpMessage", "AbpSenderLayer", "AbpReceiverLayer"]


@dataclass(frozen=True)
class AbpMessage:
    """Data or acknowledgment frame."""

    tag: str
    kind: str  # "data" | "ack"
    label: int
    payload: Any = None


class AbpSenderLayer(Layer):
    """Sends a queue of payloads reliably to one peer."""

    def __init__(self, tag: str, peer: int, label_space: int = 2**31) -> None:
        super().__init__(tag)
        self.peer = peer
        self.label_space = label_space
        self.queue: list[Any] = []
        self.current_label: int | None = None
        self.acked_count = 0
        self.request: RequestState = RequestState.DONE

    def send_payloads(self, payloads: Sequence[Any]) -> None:
        """Enqueue payloads for transfer."""
        self.queue.extend(payloads)
        if self.queue:
            self.request = RequestState.IN

    def actions(self) -> Sequence[Action]:
        return (Action("S1", self._guard_transmit, self._action_transmit),)

    def _guard_transmit(self) -> bool:
        return bool(self.queue)

    def _action_transmit(self) -> None:
        assert self.host is not None
        if self.current_label is None:
            self.current_label = self.host.rng.randrange(self.label_space)
        self.host.send(
            self.peer,
            AbpMessage(tag=self.tag, kind="data", label=self.current_label,
                       payload=self.queue[0]),
        )

    def on_message(self, sender: int, msg: AbpMessage) -> None:
        if msg.kind != "ack" or sender != self.peer or not self.queue:
            return
        if msg.label == self.current_label:
            self.queue.pop(0)
            self.acked_count += 1
            self.current_label = None
            if not self.queue:
                self.request = RequestState.DONE

    def scramble(self, rng: random.Random) -> None:
        self.current_label = rng.randrange(self.label_space) if rng.random() < 0.5 else None

    def garbage_message(self, rng: random.Random) -> AbpMessage:
        return AbpMessage(tag=self.tag, kind=rng.choice(["data", "ack"]),
                          label=rng.randrange(self.label_space), payload="garbage")

    def snapshot(self) -> dict[str, Any]:
        return {
            "queue": list(self.queue),
            "current_label": self.current_label,
            "acked_count": self.acked_count,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.queue = list(state["queue"])
        self.current_label = state["current_label"]
        self.acked_count = state["acked_count"]


class AbpReceiverLayer(Layer):
    """Receives, deduplicates by label, and acknowledges."""

    def __init__(self, tag: str, peer: int) -> None:
        super().__init__(tag)
        self.peer = peer
        self.delivered: list[Any] = []
        self.last_label: int | None = None

    def on_message(self, sender: int, msg: AbpMessage) -> None:
        assert self.host is not None
        if msg.kind != "data" or sender != self.peer:
            return
        if msg.label != self.last_label:
            self.delivered.append(msg.payload)
            self.last_label = msg.label
            self.host.emit(EventKind.NOTE, tag=self.tag, delivered=msg.payload)
        self.host.send(self.peer, AbpMessage(tag=self.tag, kind="ack", label=msg.label))

    def scramble(self, rng: random.Random) -> None:
        self.last_label = rng.randrange(2**31) if rng.random() < 0.5 else None

    def snapshot(self) -> dict[str, Any]:
        return {"delivered": list(self.delivered), "last_label": self.last_label}

    def restore(self, state: dict[str, Any]) -> None:
        self.delivered = list(state["delivered"])
        self.last_label = state["last_label"]
