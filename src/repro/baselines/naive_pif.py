"""The paper's *naive* PIF attempt (Section 4.1) — a negative baseline.

The paper sketches the obvious implementation and explains why it is **not**
snap-stabilizing:

1. the broadcast (or a feedback) can be lost — the computation deadlocks;
2. the arbitrary initial configuration can hold a stale feedback the
   initiator mistakes for a genuine acknowledgment, or a stale broadcast
   that triggers an undesirable feedback.

This layer implements exactly that naive scheme (single send, no handshake
flags) so the ablation experiment E8c can measure both failure modes against
Protocol PIF.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.pif import PifClient
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["NaiveMessage", "NaivePifLayer"]


@dataclass(frozen=True)
class NaiveMessage:
    """Broadcast or feedback frame of the naive scheme."""

    tag: str
    kind: str  # "brd" | "fck"
    payload: Any
    debug_wave: tuple[int, int] | None = None


class NaivePifLayer(Layer):
    """Broadcast once, count feedbacks, decide at n-1 — no handshake."""

    def __init__(self, tag: str, client: PifClient | None = None) -> None:
        super().__init__(tag)
        self.client = client if client is not None else PifClient()
        self.request: RequestState = RequestState.DONE
        self.b_mes: Any = None
        self.acked: dict[int, bool] = {}
        self.wave_seq = 0

    def on_attach(self) -> None:
        assert self.host is not None
        for q in self.host.others:
            self.acked.setdefault(q, False)

    # -- external interface ---------------------------------------------------

    def request_broadcast(self, payload: Any) -> None:
        self.b_mes = payload
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag, payload=payload)

    external_request = request_broadcast

    @property
    def wave_id(self) -> tuple[int, int]:
        assert self.host is not None
        return (self.host.pid, self.wave_seq)

    # -- actions ------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("N1", self._guard_start, self._action_start),
            Action("N2", self._guard_decide, self._action_decide),
        )

    def _guard_start(self) -> bool:
        return self.request is RequestState.WAIT

    def _action_start(self) -> None:
        """Send the broadcast exactly once to every peer (the naive part)."""
        assert self.host is not None
        self.request = RequestState.IN
        self.wave_seq += 1
        for q in self.host.others:
            self.acked[q] = False
        self.host.emit(
            EventKind.START, tag=self.tag, wave=self.wave_id, payload=self.b_mes
        )
        for q in self.host.others:
            self.host.send(
                q,
                NaiveMessage(tag=self.tag, kind="brd", payload=self.b_mes,
                             debug_wave=self.wave_id),
            )

    def _guard_decide(self) -> bool:
        assert self.host is not None
        return self.request is RequestState.IN and all(
            self.acked[q] for q in self.host.others
        )

    def _action_decide(self) -> None:
        assert self.host is not None
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag, wave=self.wave_id)
        self.client.on_decide()

    # -- receive ---------------------------------------------------------------------

    def on_message(self, sender: int, msg: NaiveMessage) -> None:
        assert self.host is not None
        if msg.kind == "brd":
            self.host.emit(
                EventKind.RECEIVE_BRD,
                tag=self.tag,
                sender=sender,
                payload=msg.payload,
                wave=msg.debug_wave,
            )
            feedback = self.client.on_broadcast(sender, msg.payload)
            self.host.send(
                sender,
                NaiveMessage(tag=self.tag, kind="fck", payload=feedback,
                             debug_wave=msg.debug_wave),
            )
        elif msg.kind == "fck":
            # The naive initiator believes any feedback — including stale
            # garbage from the initial configuration.
            if sender in self.acked and not self.acked[sender]:
                self.acked[sender] = True
                self.host.emit(
                    EventKind.RECEIVE_FCK,
                    tag=self.tag,
                    sender=sender,
                    payload=msg.payload,
                    wave=self.wave_id,
                )
                self.client.on_feedback(sender, msg.payload)

    # -- adversary interface --------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.b_mes = rng.choice(list(self.client.broadcast_domain()))
        for q in self.host.others:
            self.acked[q] = rng.random() < 0.5

    def garbage_message(self, rng: random.Random) -> NaiveMessage:
        kind = rng.choice(["brd", "fck"])
        domain = (
            self.client.broadcast_domain()
            if kind == "brd"
            else self.client.feedback_domain()
        )
        return NaiveMessage(tag=self.tag, kind=kind,
                            payload=rng.choice(list(domain)), debug_wave=None)

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "b_mes": self.b_mes,
            "acked": dict(self.acked),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.b_mes = state["b_mes"]
        self.acked = dict(state["acked"])
