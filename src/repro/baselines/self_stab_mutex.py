"""A *self-stabilizing* (not snap-stabilizing) token mutex — comparator.

Classic design: a single token circulates on a virtual ring (ascending pid
order); holding the token grants the critical section.  Stabilization uses
counter flushing (Varghese-style): the leader (smallest pid) stamps the
token with an epoch counter and discards stale epochs; a leader timeout
regenerates a lost token with a fresh epoch.

From an *arbitrary initial configuration* several processes may hold forged
tokens, so two requesting processes can execute the critical section
concurrently **before** the epochs flush — a safety violation a
snap-stabilizing protocol never exhibits for requesting processes.  This is
exactly the self- vs snap-stabilization contrast of experiment E6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ProtocolError
from repro.sim.process import Action, Layer
from repro.sim.trace import EventKind
from repro.types import RequestState

__all__ = ["TokenMessage", "TokenMutexLayer"]


@dataclass(frozen=True)
class TokenMessage:
    """The circulating token, stamped with the leader's epoch."""

    tag: str
    epoch: int


class TokenMutexLayer(Layer):
    """Self-stabilizing token-ring mutual exclusion (baseline).

    The token circulates on the *virtual* ring in ascending pid order, so
    the layer runs on any topology in which each process is adjacent to its
    pid-successor — the paper's complete graph and, naturally, a
    :class:`~repro.sim.topology.Ring` (where the virtual ring *is* the
    physical one).  Attachment fails fast anywhere else.
    """

    def __init__(
        self,
        tag: str = "tok",
        cs_duration: int = 3,
        regen_timeout: int = 400,
    ) -> None:
        super().__init__(tag)
        if regen_timeout < 1:
            raise ProtocolError(f"regen_timeout must be >= 1, got {regen_timeout}")
        self.cs_duration = cs_duration
        self.regen_timeout = regen_timeout
        self.request: RequestState = RequestState.DONE
        self.have_token = False
        self.token_epoch = 0
        #: Leader bookkeeping: current epoch and last time the token was seen.
        self.epoch = 0
        self.last_token_seen = 0
        self.in_cs = False

    # -- topology helpers -------------------------------------------------------

    def on_attach(self) -> None:
        assert self.host is not None
        succ = self.successor
        if not self.host.sim.network.topology.adjacent(self.host.pid, succ):
            raise ProtocolError(
                f"token ring needs {self.host.pid} adjacent to its pid-successor "
                f"{succ}; topology {self.host.sim.network.topology.name} breaks "
                "the ring (use complete or ring)"
            )

    @property
    def is_leader(self) -> bool:
        assert self.host is not None
        return self.host.pid == min(self.host.sim.pids)

    @property
    def successor(self) -> int:
        assert self.host is not None
        ring = sorted(self.host.sim.pids)
        return ring[(ring.index(self.host.pid) + 1) % len(ring)]

    # -- external interface ----------------------------------------------------------

    def request_cs(self) -> None:
        self.request = RequestState.WAIT
        if self.host is not None:
            self.host.emit(EventKind.REQUEST, tag=self.tag)

    external_request = request_cs

    # -- actions ----------------------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return (
            Action("T1", self._guard_use_token, self._action_use_token),
            Action("T2", self._guard_regen, self._action_regen),
        )

    def _guard_use_token(self) -> bool:
        return self.have_token and not self.in_cs

    def _action_use_token(self) -> None:
        """Holding the token: serve a pending request, then pass it on."""
        assert self.host is not None
        if self.request is RequestState.WAIT:
            self.request = RequestState.IN
            self.host.emit(EventKind.START, tag=self.tag)
            self._enter_cs()
            return
        self._pass_token()

    def _enter_cs(self) -> None:
        assert self.host is not None
        self.in_cs = True
        self.host.emit(EventKind.CS_ENTER, tag=self.tag, requested=True)
        self.host.set_busy_for(self.cs_duration)
        self.host.call_later(self.cs_duration, self._exit_cs)

    def _exit_cs(self) -> None:
        if not self.in_cs:
            return
        assert self.host is not None
        self.in_cs = False
        self.host.emit(EventKind.CS_EXIT, tag=self.tag)
        self.request = RequestState.DONE
        self.host.emit(EventKind.DECIDE, tag=self.tag)
        self._pass_token()

    def _pass_token(self) -> None:
        assert self.host is not None
        self.have_token = False
        self.host.send(self.successor, TokenMessage(tag=self.tag, epoch=self.token_epoch))

    def _guard_regen(self) -> bool:
        """Leader regenerates the token after a silence timeout."""
        assert self.host is not None
        return (
            self.is_leader
            and not self.have_token
            and not self.in_cs
            and self.host.now - self.last_token_seen >= self.regen_timeout
        )

    def _action_regen(self) -> None:
        assert self.host is not None
        self.epoch += 1
        self.token_epoch = self.epoch
        self.have_token = True
        self.last_token_seen = self.host.now
        self.host.emit(EventKind.NOTE, tag=self.tag, what="token-regenerated",
                       epoch=self.epoch)

    # -- receive -------------------------------------------------------------------------

    def on_message(self, sender: int, msg: TokenMessage) -> None:
        assert self.host is not None
        if self.is_leader:
            self.last_token_seen = self.host.now
            if msg.epoch != self.epoch:
                return  # stale epoch: flush the forged/duplicate token
            self.epoch += 1
            self.token_epoch = self.epoch
            self.have_token = True
        else:
            # Non-leaders forward anything that looks like a token —
            # that is what makes the protocol merely self-stabilizing.
            self.token_epoch = msg.epoch
            self.have_token = True

    # -- adversary interface ------------------------------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        assert self.host is not None
        self.request = rng.choice(list(RequestState))
        self.have_token = rng.random() < 0.5
        self.token_epoch = rng.randint(0, 5)
        self.epoch = rng.randint(0, 5)
        self.last_token_seen = 0

    def garbage_message(self, rng: random.Random) -> TokenMessage:
        return TokenMessage(tag=self.tag, epoch=rng.randint(0, 5))

    def snapshot(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "have_token": self.have_token,
            "token_epoch": self.token_epoch,
            "epoch": self.epoch,
            "in_cs": self.in_cs,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.request = state["request"]
        self.have_token = state["have_token"]
        self.token_epoch = state["token_epoch"]
        self.epoch = state["epoch"]
        self.in_cs = state["in_cs"]
