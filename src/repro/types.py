"""Shared primitive types used across the library."""

from __future__ import annotations

import enum
from typing import NewType

#: Identity of a process. The paper assumes distinct comparable IDs.
ProcessId = NewType("ProcessId", int)

#: Simulated time, measured in integer ticks for exact determinism.
Time = NewType("Time", int)


class RequestState(enum.Enum):
    """The tri-state request variable shared by all three protocols.

    The external application sets the variable to :attr:`WAIT`; the protocol
    switches it to :attr:`IN` when it starts a computation (the *start* event)
    and to :attr:`DONE` when the computation terminates (the *decision*
    event).  Hypothesis 1 of the paper: the application never re-requests
    before the variable is back to :attr:`DONE`.
    """

    WAIT = "Wait"
    IN = "In"
    DONE = "Done"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RequestState.{self.name}"
