"""Command-line interface: run any experiment and print its table.

Usage::

    python -m repro list                      # available experiments
    python -m repro figure1                   # E1
    python -m repro impossibility --n 3       # E2
    python -m repro pif --n 4 --loss 0.2      # E3-style trial
    python -m repro mutex --n 4 --seeds 0 1 2 # E5-style trials
    python -m repro compare --seeds 0 1 2 3   # E6
    python -m repro ablations                 # E8
    python -m repro property1                 # E9a
    python -m repro pif --topology ring       # E3 on a ring
    python -m repro matrix --n 8              # E11 topology x fault matrix
    python -m repro aggregate --topology star # application demo

Every trial-style experiment accepts ``--topology`` (complete, ring, star,
grid[:RxC], gnp[:P], clustered[:K]) and sweeps the same specification,
generalized to the wave's reach on non-complete graphs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.engine import TrialSpec, engine_names
from repro.errors import HorizonExceeded, SimulationError
from repro.net.transport import transport_names
from repro.analysis.ablations import (
    run_flag_ablation,
    run_modulus_ablation,
    run_naive_ablation,
)
from repro.analysis.compare import aggregate_comparison, compare_mutex_protocols
from repro.analysis.experiments import (
    run_capacity_sweep,
    run_figure1,
    run_impossibility_experiment,
    run_property1_check,
    run_topology_matrix,
)
from repro.applications.aggregation import run_aggregation_demo
from repro.analysis.runner import (
    pif_scaling_row,
    run_idl_trial,
    run_mutex_trial,
    run_pif_trial,
)
from repro.analysis.tables import render_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "figure1", "impossibility", "pif", "idl", "mutex",
    "compare", "scaling", "ablations", "property1", "capacity",
    "matrix", "aggregate", "topology", "obs",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snap-stabilization in message-passing systems — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("figure1", help="E1: Figure 1 worst-case handshake")
    p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    p = sub.add_parser("impossibility", help="E2: Theorem 1 construction")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    for name, helptext in (
        ("pif", "E3: PIF snap-stabilization trials"),
        ("idl", "E4: IDs-Learning trials"),
        ("mutex", "E5: mutual-exclusion trials"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--n", type=int, default=3)
        p.add_argument("--loss", type=float, default=0.1)
        p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
        p.add_argument("--requests", type=int, default=2)
        if name == "mutex":
            p.add_argument(
                "--round-budget", type=int, default=None, metavar="R",
                help="abort (HorizonExceeded) once more than R CS grants "
                     "were spent without serving every request — the cheap "
                     "failure mode for slow-converging rings; a completing "
                     "trial uses about (requests+1)*n grants (serial engine "
                     "only, see docs/engine.md)",
            )
        _add_topology_arg(p)
        _add_engine_args(p)

    p = sub.add_parser("compare", help="E6: snap vs self-stabilization")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--seeds", type=int, nargs="+", default=list(range(6)))
    p.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="communication graph for the head-to-head: complete (default) "
             "or ring (the token baseline needs the pid-order ring embedded)",
    )

    p = sub.add_parser("scaling", help="E7: wave cost vs system size")
    p.add_argument("--ns", type=int, nargs="+", default=[2, 3, 5, 8])
    p.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    _add_topology_arg(p)

    sub.add_parser("ablations", help="E8: flag domain / modulus / naive PIF")

    p = sub.add_parser("property1", help="E9a: channel flushing")
    p.add_argument("--n", type=int, default=4)

    p = sub.add_parser("capacity", help="E9b: capacity-c extension")
    p.add_argument("--capacities", type=int, nargs="+", default=[1, 2, 4])

    p = sub.add_parser("matrix", help="E11: topology x fault scenario matrix")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    p.add_argument(
        "--topologies", nargs="+",
        default=["complete", "ring", "star", "grid", "gnp:0.35", "clustered:2"],
    )
    p.add_argument("--losses", type=float, nargs="+", default=[0.0, 0.2])
    p.add_argument("--protocol", choices=["pif", "mutex"], default="pif")
    _add_engine_args(p)

    p = sub.add_parser("aggregate", help="application demo: PIF aggregation wave")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--op", choices=["sum", "min", "max"], default="sum")
    p.add_argument("--seeds", type=int, nargs="+", default=[0])
    _add_topology_arg(p)

    p = sub.add_parser(
        "cluster-worker",
        help="serve one shard of a multi-host trial (launched by the "
             "engine=cluster coordinator, or by hand on a remote machine)",
    )
    p.add_argument(
        "--registry", required=True, metavar="HOST:PORT",
        help="the coordinator's rendezvous address (its --cluster-listen, "
             "or the ephemeral address it spawned this worker with)",
    )
    p.add_argument(
        "--shard", type=int, required=True, metavar="K",
        help="which shard of the partition this worker hosts (0-based)",
    )
    p.add_argument(
        "--advertise-host", default="127.0.0.1", metavar="HOST",
        help="address peer shards should dial this worker on (default "
             "127.0.0.1; set to this machine's reachable address when "
             "launching on a remote host)",
    )
    p.add_argument(
        "--chaos", default=None, metavar="TOKEN",
        help="fault-injection token from the coordinator's fault plan "
             "('PHASE' or 'PHASE:ROUND', e.g. 'barrier:5'): crash this "
             "worker at that point (internal; set by the chaos harness)",
    )

    p = sub.add_parser(
        "obs",
        help="summarize obs files written with --metrics/--timeline "
             "(metrics snapshots and Chrome-trace timelines)",
    )
    p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="obs JSON files; each is auto-detected as a metrics snapshot "
             "or a Chrome-trace timeline",
    )

    p = sub.add_parser(
        "topology",
        help="inspect a topology: structure, edge-weight stats, shard lookahead",
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition into N shards (default: one per arbitration-cluster "
             "group) before reporting the cut and its latency floor",
    )
    p.add_argument(
        "--latency", type=int, nargs=2, default=(1, 3), metavar=("LO", "HI"),
        help="global latency bounds edges without explicit weights fall "
             "back to (default 1 3)",
    )
    _add_topology_arg(p)

    return parser


def _add_topology_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="communication graph: complete (default), ring, star, grid[:RxC], "
             "gnp[:P], clustered[:K], wan[:K] (clustered with fast "
             "intra-cluster and slow cross-cluster edges)",
    )
    parser.add_argument(
        "--wan", action="store_true",
        help="shorthand for --topology wan: the WAN-clustered preset "
             "(intra-cluster latency 1-3, cross-cluster 16-32); widens the "
             "sharded engine's sync window to the cross-shard latency floor",
    )
    parser.add_argument(
        "--latency-map", nargs="+", default=None, metavar="SRC-DST=LO:HI",
        help="per-edge latency bounds layered over the topology, e.g. "
             "'1-2=16:32 2-3=16:32'; each entry weighs both directions of "
             "the edge, unmapped edges keep the global --latency bounds",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="TICKS",
        help="time budget per trial in ticks (default: the runner's; over "
             "--transport tcp one tick is --tick seconds of wall time, so "
             "prefer an explicit budget there)",
    )
    parser.add_argument(
        "--engine", choices=list(engine_names()),
        default="serial",
        help="execution backend (from the repro.engine registry): one "
             "in-process scheduler (serial), the topology partitioned "
             "across worker processes (sharded), the asyncio runtime with "
             "one coroutine per process (async), or per-shard worker "
             "interpreters behind real sockets (cluster); serial, sharded, "
             "async --transport loopback and cluster --sync windowed "
             "produce identical trace metrics for the same seed",
    )
    parser.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help="worker-interpreter count for --engine cluster (default: one "
             "per arbitration-cluster group); each hosts one shard of the "
             "partition in its own OS process",
    )
    parser.add_argument(
        "--sync", choices=["windowed", "freerun"], default=None,
        help="cluster synchronization mode: conservative time windows with "
             "BARRIER frames (windowed, reproduces serial results) or "
             "best-effort progress where online spec monitors are the "
             "verdict (freerun)",
    )
    parser.add_argument(
        "--cluster-listen", default=None, metavar="HOST:PORT",
        help="for --engine cluster: listen for hand-launched remote workers "
             "('repro cluster-worker') on this registry address instead of "
             "spawning localhost workers",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker count for --engine sharded (default: one per "
             "arbitration-cluster group)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="W",
        help="time-window size (ticks) for --engine sharded; must not exceed "
             "the latency lower bound (default: exactly that bound)",
    )
    parser.add_argument(
        "--transport", choices=list(transport_names()), default="loopback",
        help="channel medium for --engine async (from the transport "
             "registry): in-process asyncio queues (loopback, "
             "deterministic), real localhost TCP sockets (tcp), or loopback "
             "UDP datagrams where the network itself is the adversary "
             "(udp); tcp and udp are wall-clock best-effort, spec-checked "
             "by online monitors",
    )
    parser.add_argument(
        "--tick", type=float, default=None, metavar="SECONDS",
        help="wall-clock length of one tick for the paced transports "
             "(default 0.001); latency bounds are in ticks, so the default "
             "emulates a 1-3 ms link",
    )
    parser.add_argument(
        "--latency", type=int, nargs=2, default=(1, 3), metavar=("LO", "HI"),
        help="message latency bounds in ticks (default 1 3); the lower bound "
             "is the sharded engine's lookahead, so raising it allows wider "
             "--window values (fewer barriers)",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="chaos fault schedule for --engine async/cluster (see "
             "docs/robustness.md): semicolon/newline-separated statements "
             "like 'crash worker 2 at barrier 5', 'cut link 1->3 for "
             "rounds 4..8', 'drop ship from 1 to 3', 'stall registry 2s'; "
             "@FILE reads the plan from FILE",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a JSON metrics snapshot of the run (scheduler, channel, "
             "wire and sync counters; see docs/observability.md); with "
             "multiple seeds each trial writes PATH suffixed by its seed",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="write the run's span timeline as Chrome trace-event JSON "
             "(loadable in Perfetto / chrome://tracing); cluster workers "
             "merge into the coordinator's timeline over CONTROL",
    )
    parser.add_argument(
        "--profile", type=int, nargs="?", const=15, default=None, metavar="N",
        help="run the experiment under cProfile and print the top N "
             "functions by cumulative time (default 15) after the table — "
             "the quick way to find a trial's hot spots",
    )


def _topology_spec(args) -> str | None:
    """Fold the --wan shorthand into the --topology spec string."""
    spec = args.topology
    if getattr(args, "wan", False):
        if spec is not None and not spec.startswith("wan"):
            raise SimulationError(
                f"--wan conflicts with --topology {spec!r}; use --topology "
                f"wan:K to pick the cluster count"
            )
        spec = spec or "wan"
    return spec


def _weighted_topology(args, n: int, seed: int):
    """The trial topology argument: a spec string, or — when --latency-map
    layers explicit per-edge bounds over the graph — a built
    :class:`~repro.sim.topology.Weighted` instance.  Delegates to the
    shared :mod:`repro.engine.spec` helper the spec codec uses."""
    from repro.engine.spec import _topology_from_args

    return _topology_from_args(args, n, seed)


def _cmd_figure1(args) -> str:
    results = [run_figure1(seed=s) for s in args.seeds]
    return render_table(
        ["seed", "spurious", "brd@q", "fck@p", "decide", "spec_ok"],
        [[s, r.spurious_level, r.brd_time, r.fck_time, r.decide_time, r.spec_ok]
         for s, r in zip(args.seeds, results)],
        title="E1 / Figure 1 — worst-case handshake",
    )


def _cmd_impossibility(args) -> str:
    row = run_impossibility_experiment(n=args.n, seed=args.seed)
    return render_table(
        list(row.keys()), [list(row.values())],
        title="E2 / Theorem 1 — impossibility construction",
    )


def _fault_plan_arg(args):
    """Resolve --fault-plan: inline statements, or @FILE contents."""
    from repro.engine.spec import resolve_fault_plan

    return resolve_fault_plan(getattr(args, "fault_plan", None))


def _cmd_trials(args, runner, title: str) -> str:
    # One spec for the whole command (the TrialSpec codec reads every
    # engine/topology flag); per-trial variation is seed + obs paths.
    base = TrialSpec.from_cli_args(args)

    def per_seed(seed: int) -> TrialSpec:
        from dataclasses import replace

        spec = replace(base, seed=seed)
        if len(args.seeds) > 1 and spec.obs.active:
            # One file per trial: multi-seed runs suffix each path by seed.
            from repro.obs.recorder import indexed_path

            spec = spec.with_obs(
                str(indexed_path(spec.obs.metrics, f"seed{seed}"))
                if spec.obs.metrics is not None else None,
                str(indexed_path(spec.obs.timeline, f"seed{seed}"))
                if spec.obs.timeline is not None else None,
            )
        return spec

    trials = [runner(spec=per_seed(s), requests_per_process=args.requests)
              for s in args.seeds]
    keys = ["n", "topology", "engine", "seed", "loss", "ok", "violations"]
    extra = sorted(
        k for k in trials[0].measurements if isinstance(
            trials[0].measurements[k], (int, float, bool))
    )
    prov = ["wall_clock_s"]
    if args.engine == "sharded":
        prov += ["window", "barriers", "sync_wall_s"]
    if args.engine == "async":
        prov += ["transport", "monitors_ok"]
    if args.engine == "cluster":
        prov += ["hosts", "sync", "window", "barriers", "sync_wall_s",
                 "worker_wall_spread_s", "registry_round_trips",
                 "monitors_ok"]
    if getattr(args, "fault_plan", None) is not None:
        prov += ["recoveries", "replayed_rounds"] \
            if args.engine == "cluster" else []
    return render_table(
        keys + extra + prov,
        [t.row(*(keys + extra + prov)) for t in trials],
        title=title,
    )


def _cmd_compare(args) -> str:
    results = compare_mutex_protocols(n=args.n, seeds=args.seeds,
                                      horizon=800_000,
                                      topology=args.topology)
    agg = aggregate_comparison(results)
    table = render_table(
        ["seed", "snap viol", "snap served", "self viol", "self served",
         "self last viol"],
        [r.row() for r in results],
        title="E6 — snap vs self-stabilization",
    )
    return table + f"\naggregate: {agg}"


def _cmd_scaling(args) -> str:
    if args.latency_map:
        raise SimulationError(
            "--latency-map names explicit pids, which a multi-n scaling "
            "sweep cannot share; use --topology wan[:K] for a weighted sweep"
        )
    rows = [
        pif_scaling_row(n, seeds=args.seeds, topology=_topology_spec(args))
        for n in args.ns
    ]
    return render_table(
        ["n", "topology", "messages/wave", "messages/peer", "duration"],
        [[r["n"], r["topology"], r["messages_mean"], r["messages_per_peer"],
          r["duration_mean"]] for r in rows],
        title="E7 — PIF wave cost vs n",
    )


def _cmd_ablations(_args) -> str:
    flag_rows = [run_flag_ablation(k).row() for k in (1, 2, 3, 4, 5)]
    parts = [
        render_table(
            ["max_state", "decided", "spec_ok", "first violation"],
            flag_rows, title="E8a — flag-domain ablation",
        )
    ]
    mod = run_modulus_ablation(horizon=120_000)
    parts.append(render_table(
        list(mod.keys()), [list(mod.values())],
        title="E8b — A7 modulus ablation",
    ))
    naive = run_naive_ablation(seeds=list(range(6)), horizon=25_000)
    parts.append(render_table(
        list(naive.keys()), [list(naive.values())],
        title="E8c — naive PIF ablation",
    ))
    return "\n\n".join(parts)


def _cmd_property1(args) -> str:
    row = run_property1_check(n=args.n)
    return render_table(
        list(row.keys()), [list(row.values())],
        title="E9a / Property 1 — channel flushing",
    )


def _cmd_matrix(args) -> str:
    rows = run_topology_matrix(
        n=args.n, topologies=args.topologies, losses=args.losses,
        seeds=args.seeds, protocol=args.protocol,
        engine=args.engine, shards=args.shards, window=args.window,
        transport=args.transport, tick=args.tick, horizon=args.horizon,
        latency=tuple(args.latency),
        hosts=args.hosts, sync=args.sync,
        fault_plan=_fault_plan_arg(args),
        metrics=args.metrics, timeline=args.timeline,
    )
    return render_table(
        list(rows[0].keys()), [list(r.values()) for r in rows],
        title=f"E11 — topology x fault matrix ({args.protocol})",
    )


def _cmd_aggregate(args) -> str:
    topology = _weighted_topology(args, args.n, args.seeds[0])
    rows = [
        run_aggregation_demo(args.n, topology=topology, op=args.op, seed=s)
        for s in args.seeds
    ]
    return render_table(
        list(rows[0].keys()), [list(r.values()) for r in rows],
        title="aggregation — one PIF reduce wave",
    )


def _cmd_topology(args) -> str:
    """Structure + edge-weight stats + the sharded engine's lookahead."""
    from repro.sim.partition import partition_topology
    from repro.sim.topology import topology_from_spec

    top = _weighted_topology(args, args.n, args.seed)
    if top is None or isinstance(top, str):
        top = topology_from_spec(top or "complete", args.n, seed=args.seed)
    lo, hi = args.latency
    partition = partition_topology(top, args.shards)
    cut = partition.describe()
    floor = partition.latency_floor(lo)
    info = {
        **top.describe(),
        "weighted": top.is_weighted,
        **top.weight_stats(default_latency=(lo, hi)),
        "shards": cut["shards"],
        "shard_sizes": cut["sizes"],
        "cross_edges": cut["cross_edges"],
        "cut_fraction": cut["cut_fraction"],
        "global_latency_floor": lo,
        "cross_shard_latency_floor": floor,
        "default_sharded_window": floor,
    }
    return render_table(
        ["property", "value"],
        [[key, value] for key, value in info.items()],
        title=f"topology — {top.name}",
    )


def _cmd_obs(args) -> str:
    from repro.obs import summarize_obs_file

    return "\n\n".join(summarize_obs_file(path) for path in args.paths)


def _cmd_capacity(args) -> str:
    rows = run_capacity_sweep(args.capacities)
    return render_table(
        ["capacity", "max_state", "trials", "ok", "violations"],
        [[r["capacity"], r["max_state"], r["trials"], r["ok"],
          r["violations"]] for r in rows],
        title="E9b — capacity extension",
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("\n".join(_EXPERIMENTS))
        return 0
    try:
        return _dispatch(args)
    except HorizonExceeded as exc:
        print(f"horizon exceeded: {exc}", file=sys.stderr)
        return 1
    except SimulationError as exc:
        # Engine-axis misuse (--shards without --engine sharded, --tick
        # without --transport tcp, ...) carries an actionable message; a
        # one-liner beats a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    top_n = getattr(args, "profile", None)
    if top_n is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            code = _run_command(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative")
            print(f"\n--- cProfile: top {top_n} by cumulative time ---")
            stats.print_stats(top_n)
        return code
    return _run_command(args)


def _run_command(args) -> int:
    if args.command == "cluster-worker":
        # A worker interpreter serves exactly one shard then exits; its
        # stdout belongs to the hosted simulator slice, not to a table.
        from repro.net.cluster import run_cluster_worker

        return run_cluster_worker(
            args.registry, args.shard, args.advertise_host,
            chaos=args.chaos,
        )
    if args.command == "figure1":
        output = _cmd_figure1(args)
    elif args.command == "impossibility":
        output = _cmd_impossibility(args)
    elif args.command == "pif":
        output = _cmd_trials(args, run_pif_trial, "E3 — PIF trials")
    elif args.command == "idl":
        output = _cmd_trials(args, run_idl_trial, "E4 — IDL trials")
    elif args.command == "mutex":
        output = _cmd_trials(args, run_mutex_trial, "E5 — ME trials")
    elif args.command == "compare":
        output = _cmd_compare(args)
    elif args.command == "scaling":
        output = _cmd_scaling(args)
    elif args.command == "ablations":
        output = _cmd_ablations(args)
    elif args.command == "property1":
        output = _cmd_property1(args)
    elif args.command == "capacity":
        output = _cmd_capacity(args)
    elif args.command == "matrix":
        output = _cmd_matrix(args)
    elif args.command == "aggregate":
        output = _cmd_aggregate(args)
    elif args.command == "topology":
        output = _cmd_topology(args)
    elif args.command == "obs":
        output = _cmd_obs(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
