"""repro — Snap-Stabilization in Message-Passing Systems.

A complete, executable reproduction of Delaët, Devismes, Nesterenko &
Tixeuil, *Snap-Stabilization in Message-Passing Systems* (INRIA RR-6446 /
PODC 2008): the message-passing simulator substrate, the three
snap-stabilizing protocols (PIF, IDs-Learning, Mutual Exclusion), the
Theorem 1 impossibility construction, specification checkers, baselines,
PIF-based applications, and the experiment harness.

Quickstart::

    from repro import Simulator, PifLayer, RequestDriver

    sim = Simulator(3, lambda host: host.register(PifLayer("pif")))
    sim.scramble(seed=42)                       # arbitrary initial configuration
    sim.layer(1, "pif").request_broadcast("hello")
    sim.run(max_time=2_000)
"""

from repro.core import (
    IdlLayer,
    MutexLayer,
    PifClient,
    PifLayer,
    PifMessage,
    RequestDriver,
)
from repro.errors import ReproError, SpecificationViolation
from repro.sim import (
    BernoulliLoss,
    Clustered,
    Complete,
    EventKind,
    Grid2D,
    Network,
    NoLoss,
    RandomGnp,
    Ring,
    Simulator,
    Star,
    Topology,
    Trace,
    topology_from_spec,
)
from repro.types import ProcessId, RequestState, Time

__version__ = "1.0.0"

__all__ = [
    "BernoulliLoss",
    "Clustered",
    "Complete",
    "EventKind",
    "Grid2D",
    "IdlLayer",
    "MutexLayer",
    "Network",
    "NoLoss",
    "RandomGnp",
    "Ring",
    "Star",
    "Topology",
    "topology_from_spec",
    "PifClient",
    "PifLayer",
    "PifMessage",
    "ProcessId",
    "ReproError",
    "RequestDriver",
    "RequestState",
    "Simulator",
    "SpecificationViolation",
    "Time",
    "Trace",
    "__version__",
]
