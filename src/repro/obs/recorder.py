"""Per-trial observability funnel: one :class:`ObsRecorder` per process.

The coordinator (``execute_trial`` / the sharded or cluster driver
loop) owns the primary recorder.  Each worker — a forked sharded worker
or a cluster worker interpreter — owns its own recorder with a distinct
Chrome-trace ``pid`` lane, and ships :meth:`ObsRecorder.worker_payload`
back over its existing result channel (the sharded pipe, or the pickled
CONTROL frame for cluster workers).  :meth:`ObsRecorder.merge_worker`
folds those payloads into the coordinator's registry and timeline.

Nothing here touches the deterministic core: collection reads passive
counters after the fact, and every timestamp comes from the wall clock
outside the draw paths (the same contract provenance already obeys).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.spans import SpanRecorder, chrome_trace, wall

__all__ = ["ObsRecorder", "indexed_path", "summarize_obs_file"]

#: Chrome-trace process lane of the coordinator; worker ``shard`` uses
#: lane ``shard + 1``.
COORDINATOR_PID = 0


def _wire_snapshot() -> dict:
    # Imported lazily so the sim layer can build worker recorders
    # without paying for (or depending on) the net layer.
    from repro.net import wire

    return wire.STATS.snapshot()


class ObsRecorder:
    """Metrics + spans for one process of one trial."""

    def __init__(self, *, pid: int = COORDINATOR_PID, name: str = "coordinator",
                 metrics: bool = True, timeline: bool = True) -> None:
        self.metrics = MetricsRegistry() if metrics else NULL_METRICS
        self.spans = SpanRecorder(pid=pid)
        self.timeline_enabled = timeline
        self.name = name
        self.process_names = {pid: name}
        self._wire_base: dict | None = None

    # -- span helpers -------------------------------------------------

    @contextmanager
    def phase(self, name: str, **args):
        """Record a coarse phase span (scramble / serve / drain / ...)."""
        with self.spans.span(name, "phase", **args):
            yield

    def record_round(self, name: str, t0: float, t1: float, **args) -> None:
        """A per-window/round span (coordinator barrier round, worker
        compute slice, worker barrier wait)."""
        self.spans.record(name, "round", t0, t1, args=args or None)

    # -- collection ---------------------------------------------------

    def collect_sim(self, sim) -> None:
        """Fold an engine's passive counters into the registry."""
        sim.collect_obs(self.metrics)

    def mark_wire_baseline(self) -> None:
        """Snapshot the process-wide wire counters so a later
        :meth:`collect_wire` reports only this trial's frames.  Worker
        interpreters are born fresh and skip this (absolute counts are
        the trial's counts)."""
        self._wire_base = _wire_snapshot()

    def collect_wire(self) -> None:
        current = _wire_snapshot()
        base = self._wire_base or {}
        for group, values in current.items():
            base_group = base.get(group, {})
            for kind, value in values.items():
                delta = value - base_group.get(kind, 0)
                if delta:
                    self.metrics.inc(f"wire.{group}[{kind}]", delta)

    def collect_monitors(self, reports) -> None:
        for report in reports:
            self.metrics.inc(f"monitor.events[{report.name}]",
                             report.events_observed)
            if not report.ok:
                self.metrics.inc(f"monitor.violations[{report.name}]",
                                 len(report.violations))

    # -- worker shipping ----------------------------------------------

    def worker_payload(self) -> dict:
        """Picklable bundle a worker ships over its result channel."""
        return {
            "pid": self.spans.pid,
            "name": self.name,
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.payload(),
        }

    def merge_worker(self, payload: dict) -> None:
        self.metrics.merge(payload["metrics"])
        self.spans.extend(payload["spans"])
        self.process_names[payload["pid"]] = payload["name"]

    # -- output -------------------------------------------------------

    def timeline_doc(self, context: dict | None = None) -> dict:
        doc = chrome_trace(self.spans.spans, self.process_names)
        if context:
            doc["otherData"] = dict(context)
        return doc

    def metrics_doc(self, context: dict | None = None) -> dict:
        doc = {"kind": "repro-obs-metrics", "version": 1,
               "context": dict(context or {})}
        doc.update(self.metrics.snapshot())
        return doc

    def write(self, metrics_path=None, timeline_path=None,
              context: dict | None = None) -> None:
        if metrics_path is not None:
            _dump(Path(metrics_path), self.metrics_doc(context))
        if timeline_path is not None:
            _dump(Path(timeline_path), self.timeline_doc(context))


def _dump(path: Path, doc: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")


def indexed_path(path, label) -> Path:
    """``metrics.json`` + label ``seed3`` -> ``metrics.seed3.json`` —
    keeps multi-trial CLI runs (seed sweeps, matrix cells) from
    overwriting one another."""
    path = Path(path)
    return path.with_name(f"{path.stem}.{label}{path.suffix or '.json'}")


# -- `repro obs` summary rendering ------------------------------------


def summarize_obs_file(path) -> str:
    """Human summary of a written obs file — auto-detects whether it is
    a metrics document or a Chrome-trace timeline."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _summarize_timeline(path, doc)
    return _summarize_metrics(path, doc)


def _summarize_metrics(path, doc: dict) -> str:
    lines = [f"metrics {path}"]
    context = doc.get("context") or {}
    if context:
        lines.append("  context: " + " ".join(
            f"{k}={context[k]}" for k in sorted(context)))
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    hists = doc.get("hists", {})
    # Chaos counters get their own section: on a fault-injection run the
    # injected/recovered story is the headline, not one row among many.
    chaos_prefixes = ("fault.", "worker.crashed", "recovery.", "backoff.",
                      "ship.")
    chaos = {name: value for name, value in counters.items()
             if name.startswith(chaos_prefixes)}
    counters = {name: value for name, value in counters.items()
                if name not in chaos}
    if chaos:
        lines.append("  faults & recovery:")
        width = max(len(name) for name in chaos)
        for name in sorted(chaos):
            lines.append(f"    {name.ljust(width)}  {chaos[name]:>12g}")
    if counters:
        lines.append("  counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"    {name.ljust(width)}  {counters[name]:>12g}")
    if gauges:
        lines.append("  gauges (high-water):")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"    {name.ljust(width)}  {gauges[name]:>12g}")
    if hists:
        lines.append("  histograms:")
        width = max(len(name) for name in hists)
        for name in sorted(hists):
            count, total, lo, hi = hists[name]
            mean = total / count if count else 0.0
            lines.append(f"    {name.ljust(width)}  count={count:g} "
                         f"mean={mean:g} min={lo:g} max={hi:g}")
    if not (chaos or counters or gauges or hists):
        lines.append("  (empty)")
    return "\n".join(lines)


def _summarize_timeline(path, doc: dict) -> str:
    events = doc.get("traceEvents", [])
    names = {event["pid"]: event["args"]["name"] for event in events
             if event.get("ph") == "M" and event.get("name") == "process_name"}
    complete = [event for event in events if event.get("ph") == "X"]
    lines = [f"timeline {path}: {len(complete)} spans, "
             f"{len(names) or len({e['pid'] for e in complete})} process lanes"]
    by_lane: dict[tuple, list] = {}
    for event in complete:
        by_lane.setdefault((event["pid"], event["name"]), []).append(event)
    for (pid, name), group in sorted(by_lane.items()):
        total_ms = sum(event["dur"] for event in group) / 1000.0
        lane = names.get(pid, f"pid {pid}")
        lines.append(f"  {lane:<14} {name:<10} x{len(group):<6} "
                     f"total {total_ms:.3f} ms")
    return "\n".join(lines)
