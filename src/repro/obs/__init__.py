"""repro.obs — engine-wide observability: metrics registry + span timelines.

Two pillars, both strictly *outside* the deterministic core:

* :mod:`repro.obs.metrics` — counters / gauges / histograms with a
  shared no-op twin (:data:`NULL_METRICS`) for disabled runs.  Engines
  keep cheap passive counters on their hot paths and fold them into a
  registry once per trial via ``collect_obs`` — the draw paths never
  see a metrics object.
* :mod:`repro.obs.spans` — wall-clock spans (trial → round/window →
  worker) exported as Chrome trace-event JSON, loadable in Perfetto or
  ``chrome://tracing``.

:class:`repro.obs.recorder.ObsRecorder` ties the two together for one
trial: the coordinator owns one, each sharded/cluster worker owns one,
and worker payloads ride the existing result channel (pipe or pickled
CONTROL frame) back to the coordinator for merging.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.recorder import (
    ObsRecorder,
    summarize_obs_file,
)
from repro.obs.spans import (
    SpanRecorder,
    chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "NULL_METRICS",
    "MetricsRegistry",
    "NullMetrics",
    "ObsRecorder",
    "SpanRecorder",
    "chrome_trace",
    "summarize_obs_file",
    "validate_chrome_trace",
]
