"""Wall-clock spans and the Chrome trace-event exporter.

Spans are plain tuples ``(name, cat, pid, tid, t0, dur, args)`` with
``t0`` an epoch timestamp (``time.time()``) and ``dur`` in seconds —
epoch timestamps are the one wall clock that is comparable across the
coordinator and worker interpreters on the same machine, which is what
lets worker spans shipped over the CONTROL channel merge into a single
coherent timeline.

The exporter emits the Chrome trace-event JSON object format
(``{"traceEvents": [...]}``) with complete events (``"ph": "X"``) and
``process_name`` metadata events, loadable in Perfetto or
``chrome://tracing``.  Timestamps are rebased to the earliest span so
the timeline starts at zero.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["SpanRecorder", "chrome_trace", "validate_chrome_trace", "wall"]

#: The span clock.  Epoch seconds: cross-process comparable (unlike
#: ``perf_counter``), microsecond-ish resolution — plenty for barrier
#: stalls and worker skew.
wall = time.time


class SpanRecorder:
    """Accumulates spans for one process of the run.

    ``pid`` is the Chrome-trace process lane: 0 for the coordinator,
    ``shard + 1`` for sharded/cluster workers.  ``tid`` defaults to 0;
    use it to separate concurrent strands within one process.
    """

    __slots__ = ("pid", "spans")

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self.spans: list[tuple] = []

    def record(self, name: str, cat: str, t0: float, t1: float, *,
               tid: int = 0, args: dict | None = None) -> None:
        self.spans.append((name, cat, self.pid, tid, t0, t1 - t0, args))

    @contextmanager
    def span(self, name: str, cat: str, *, tid: int = 0, **args):
        t0 = wall()
        try:
            yield
        finally:
            self.record(name, cat, t0, wall(), tid=tid, args=args or None)

    def extend(self, spans) -> None:
        """Merge spans shipped from another recorder (worker payloads
        arrive as lists of tuples; pid is baked into each span)."""
        self.spans.extend(tuple(span) for span in spans)

    def payload(self) -> list[tuple]:
        """Picklable form for the pipe / CONTROL result channel."""
        return list(self.spans)


def chrome_trace(spans, process_names: dict[int, str] | None = None) -> dict:
    """Render spans as a Chrome trace-event JSON document.

    ``ts``/``dur`` are microseconds, rebased so the earliest span is at
    ``ts=0``.  ``process_names`` maps pid lanes to display names via
    ``process_name`` metadata events.
    """
    spans = list(spans)
    base = min((span[4] for span in spans), default=0.0)
    events = []
    for pid in sorted(process_names or {}):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_names[pid]},
        })
    for name, cat, pid, tid, t0, dur, args in sorted(
            spans, key=lambda s: (s[4], s[2], s[3])):
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": round((t0 - base) * 1e6, 3),
            "dur": round(dur * 1e6, 3),
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc) -> list[str]:
    """Structural check for an exported timeline — returns a list of
    problems (empty = valid).  Used by the CI probe and the tests; not
    a full spec validator, but catches every way our exporter could go
    wrong (missing fields, negative durations, non-numeric stamps)."""
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a traceEvents list"]
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            problems.append(f"event {i}: missing pid/tid")
        if ph == "X":
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
    return problems
