"""Metrics registry: counters, high-water gauges and min/max histograms.

The registry is a *sink*, not a hot-path participant.  Engines keep
plain integer counters on their own objects (``Scheduler.pops``,
``AsyncSimulator._handoffs_taken``, channel occupancy high-waters, …)
and fold them into a registry exactly once per trial through
``collect_obs(metrics)``.  That keeps the metrics-off overhead at the
cost of a handful of passive integer increments, and it keeps every
wall-clock read and dict update outside the deterministic draw paths —
enabling metrics can never reorder an event or consume an RNG draw.

:class:`NullMetrics` is the no-op twin: same surface, does nothing.
Collection code can therefore run unconditionally against
:data:`NULL_METRICS` when a pillar is disabled instead of branching.

Snapshots are plain JSON-ready dicts so they pickle cheaply across the
sharded pipe / cluster CONTROL channel; :meth:`MetricsRegistry.merge`
folds a worker snapshot into the coordinator registry the same way
``SimStats.merge`` folds worker stats.
"""

from __future__ import annotations

__all__ = ["MetricsRegistry", "NullMetrics", "NULL_METRICS"]


class MetricsRegistry:
    """Mutable metric store for one trial (or one worker's slice of it).

    * ``inc(name, value)`` — monotonically growing counter.
    * ``gauge_max(name, value)`` — high-water gauge (keeps the max).
    * ``observe(name, value)`` — histogram summarized as
      ``[count, total, min, max]`` (enough for means and extremes
      without unbounded storage).
    """

    __slots__ = ("counters", "gauges", "hists")

    #: Real registry: collection calls land somewhere.
    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, list[float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        if value:
            counters = self.counters
            counters[name] = counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        gauges = self.gauges
        prior = gauges.get(name)
        if prior is None or value > prior:
            gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.hists.get(name)
        if hist is None:
            self.hists[name] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value

    def snapshot(self) -> dict:
        """Picklable/JSON-ready copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "hists": {name: list(h) for name, h in self.hists.items()},
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. shipped by a worker) into this
        registry: counters add, gauges keep the max, histograms combine
        count/total/min/max."""
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, (count, total, lo, hi) in snap.get("hists", {}).items():
            hist = self.hists.get(name)
            if hist is None:
                self.hists[name] = [count, total, lo, hi]
            else:
                hist[0] += count
                hist[1] += total
                if lo < hist[2]:
                    hist[2] = lo
                if hi > hist[3]:
                    hist[3] = hi


class NullMetrics:
    """No-op registry: same surface as :class:`MetricsRegistry`, stores
    nothing.  Shared singleton below — collection code never needs a
    ``if metrics is not None`` branch."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "hists": {}}

    def merge(self, snap: dict) -> None:
        pass


#: Process-wide shared no-op sink.
NULL_METRICS = NullMetrics()
