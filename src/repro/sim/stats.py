"""Lightweight counters for network and protocol activity."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Counters accumulated during a simulation run."""

    sent: int = 0
    delivered: int = 0
    dropped_full: int = 0
    dropped_loss: int = 0
    corrupted: int = 0
    activations: int = 0
    sent_by_tag: Counter = field(default_factory=Counter)
    delivered_by_tag: Counter = field(default_factory=Counter)

    @property
    def dropped(self) -> int:
        """Total messages lost, for any reason."""
        return self.dropped_full + self.dropped_loss

    @property
    def delivery_ratio(self) -> float:
        """Fraction of sent messages that were eventually delivered."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent

    def merge(self, other: "SimStats") -> None:
        """Fold another stats object into this one (shard aggregation).

        Field-generic so a counter added to this class can never be
        silently dropped from sharded totals.
        """
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            else:
                setattr(self, spec.name, mine + theirs)

    def record_send(self, tag: str) -> None:
        self.sent += 1
        self.sent_by_tag[tag] += 1

    def record_delivery(self, tag: str) -> None:
        self.delivered += 1
        self.delivered_by_tag[tag] += 1

    def as_dict(self) -> dict[str, int | float]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_full": self.dropped_full,
            "dropped_loss": self.dropped_loss,
            "corrupted": self.corrupted,
            "activations": self.activations,
            "delivery_ratio": round(self.delivery_ratio, 4),
        }
