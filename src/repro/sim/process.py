"""The guarded-action process model.

A *process* (Section 2 of the paper) is a sequential deterministic machine
executing a protocol given as a collection of actions
``label :: guard -> statement``.  Guards range over local variables; receive
actions fire on message arrival.  Actions execute atomically.

Here a process is a :class:`ProcessHost` carrying a stack of
:class:`Layer` objects.  Each layer

* declares guarded :class:`Action`\\ s, evaluated in text order on every
  (weakly fair) activation,
* consumes the messages whose ``tag`` equals the layer's tag,
* can be *scrambled* by the adversary (arbitrary initial configuration),
* can snapshot/restore its local state (configuration capture, Definition 2).

Layers compose: a layer may embed sub-layers (IDL embeds a PIF instance; ME
embeds an IDL and a PIF instance).  Registration flattens the stack
depth-first, sub-layers first, so service layers make progress before their
clients inspect them within the same activation.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ProtocolError, SimulationError
from repro.sim.determinism import timer_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.channel import TaggedMessage
    from repro.sim.runtime import Simulator

__all__ = ["Action", "Layer", "ProcessHost"]


@dataclass(frozen=True)
class Action:
    """One guarded action ``label :: guard -> statement``."""

    name: str
    guard: Callable[[], bool]
    statement: Callable[[], None]


class Layer(abc.ABC):
    """A protocol layer hosted by a process."""

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.host: "ProcessHost | None" = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, host: "ProcessHost") -> None:
        if self.host is not None:
            raise ProtocolError(f"layer {self.tag!r} already attached")
        self.host = host
        self.on_attach()

    def on_attach(self) -> None:
        """Initialize per-peer state; the host (and topology) is available."""

    def sublayers(self) -> Sequence["Layer"]:
        """Embedded service layers (registered before this layer)."""
        return ()

    # -- behaviour ---------------------------------------------------------

    def actions(self) -> Sequence[Action]:
        """The guarded actions, in the paper's text order.

        Called once, at registration: the host caches the flattened
        guard/statement table, so the action set must be stable for the
        layer's lifetime (every protocol here declares a fixed algorithm).
        """
        return ()

    def on_message(self, sender: int, msg: "TaggedMessage") -> None:
        """Receive action for a message carrying this layer's tag."""

    # -- adversary / configuration interface --------------------------------

    def scramble(self, rng: random.Random) -> None:
        """Overwrite every variable with an arbitrary value in its domain."""

    def garbage_message(self, rng: random.Random) -> "TaggedMessage | None":
        """An arbitrary in-flight message for this layer's tag, or None."""
        return None

    def snapshot(self) -> dict[str, Any]:
        """A deep-enough copy of the local state (Definition 3 projection)."""
        return {}

    def restore(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pid = self.host.pid if self.host is not None else "?"
        return f"{type(self).__name__}(tag={self.tag!r}, pid={pid})"


class ProcessHost:
    """A process: local layers plus input/output capabilities.

    The host exposes exactly what the paper's model grants a process: its
    id, the local channel numbering of its peers, message sending, and time
    (for the simulation harness only — the protocols themselves never read
    the clock).
    """

    def __init__(self, sim: "Simulator", pid: int) -> None:
        self.sim = sim
        self.pid = pid
        self.layers: list[Layer] = []
        self._by_tag: dict[str, Layer] = {}
        # Flattened (guard, statement) table over all layers, cached at
        # registration — rebuilding per activation dominated the hot loop.
        self._action_table: list[tuple[Callable[[], bool], Callable[[], None]]] = []
        #: The process is busy (executing a durational critical section)
        #: until this tick; activations and message dispatches wait.
        self.busy_until: int = -1
        # Monotone counter keying call_later timers (canonical event order).
        self._timer_seq: int = 0

    # -- wiring -------------------------------------------------------------

    def register(self, layer: Layer) -> None:
        """Register ``layer`` and, recursively, its sub-layers first."""
        for sub in layer.sublayers():
            self.register(sub)
        if layer.tag in self._by_tag:
            raise ProtocolError(
                f"duplicate layer tag {layer.tag!r} at process {self.pid}"
            )
        layer.attach(self)
        self.layers.append(layer)
        self._by_tag[layer.tag] = layer
        self._action_table.extend(
            (action.guard, action.statement) for action in layer.actions()
        )

    def layer(self, tag: str) -> Layer:
        try:
            return self._by_tag[tag]
        except KeyError:
            raise ProtocolError(f"no layer {tag!r} at process {self.pid}") from None

    def has_layer(self, tag: str) -> bool:
        return tag in self._by_tag

    # -- topology -----------------------------------------------------------

    @property
    def others(self) -> tuple[int, ...]:
        """Neighbour ids in local channel-number order (channels 1..deg)."""
        return self.sim.network.peers_of(self.pid)

    @property
    def n(self) -> int:
        """Total number of processes in the system (not the degree)."""
        return self.sim.network.n

    @property
    def degree(self) -> int:
        """Number of incident channels (= n - 1 on the complete graph)."""
        return self.sim.network.degree(self.pid)

    @property
    def topology_complete(self) -> bool:
        """True iff the system topology is the paper's complete graph."""
        return self.sim.network.topology.is_complete

    def chan_num(self, peer: int) -> int:
        return self.sim.network.chan_num(self.pid, peer)

    def peer_by_num(self, num: int) -> int:
        return self.sim.network.peer_by_num(self.pid, num)

    # -- input/output ---------------------------------------------------------

    def send(self, dst: int, msg: "TaggedMessage") -> None:
        self.sim.transmit(self.pid, dst, msg)

    def emit(self, kind: str, **data: Any) -> None:
        self.sim.trace.emit(self.sim.now, kind, self.pid, **data)

    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def rng(self) -> random.Random:
        return self.sim.rng

    def call_later(self, delay: int, fn: Callable[[], None]):
        self._timer_seq += 1
        return self.sim.scheduler.schedule_in(
            delay, fn, timer_key(self.pid, self._timer_seq)
        )

    def set_busy_for(self, duration: int) -> None:
        """Mark the process busy (atomically occupied) for ``duration`` ticks."""
        if duration < 0:
            raise SimulationError(f"negative busy duration {duration}")
        self.busy_until = max(self.busy_until, self.now + duration)

    @property
    def busy(self) -> bool:
        # Reaches straight for the scheduler's clock: this predicate runs
        # before every activation and every delivery.
        return self.busy_until > self.sim.scheduler._now

    # -- execution ------------------------------------------------------------

    def activate(self) -> int:
        """Run every enabled guarded action once, in stack/text order.

        Returns the number of actions executed.  Guard evaluation and
        statement execution are atomic (the simulator is single-threaded and
        never interleaves within an activation).
        """
        executed = 0
        for guard, statement in self._action_table:
            if guard():
                statement()
                executed += 1
        return executed

    def dispatch(self, sender: int, msg: "TaggedMessage") -> None:
        """Deliver a received message to the consuming layer.

        Messages with a tag no layer consumes are dropped silently: the
        arbitrary initial configuration may contain messages of unknown
        protocols, and a real process ignores frames it cannot parse.
        """
        layer = self._by_tag.get(msg.tag)
        if layer is not None:
            layer.on_message(sender, msg)

    # -- adversary / configuration ---------------------------------------------

    def scramble(self, rng: random.Random) -> None:
        for layer in self.layers:
            layer.scramble(rng)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {layer.tag: layer.snapshot() for layer in self.layers}

    def restore(self, state: dict[str, dict[str, Any]]) -> None:
        for tag, layer_state in state.items():
            self.layer(tag).restore(layer_state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessHost(pid={self.pid}, layers={[l.tag for l in self.layers]})"
