"""Additional fault models beyond plain Bernoulli loss.

The paper's channel model requires only *fairness*: if a process sends
infinitely many messages, infinitely many arrive.  Any loss process whose
drop probability stays below 1 in every state satisfies it — so the
protocols must survive all the models here, including bursty,
correlated loss (experiment E10).

Also provided: :class:`HeaderCorruption`, which randomizes handshake header
fields of PIF messages in flight.  Unlike initial-configuration garbage
(bounded, then gone), ongoing corruption is a transient fault that *never
ceases* — strictly outside the paper's fault model.  It is used by
experiment E10 to probe the guarantee's boundary: liveness survives
(retransmissions eventually get uncorrupted round trips through), but
safety becomes best-effort.
"""

from __future__ import annotations

import random

from repro.core.messages import PifMessage
from repro.errors import ChannelError
from repro.sim.channel import LossModel, TaggedMessage

__all__ = [
    "GilbertElliottLoss",
    "PeriodicLoss",
    "TargetedLoss",
    "HeaderCorruption",
]


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) burst loss.

    A *good* state drops with probability ``p_good`` and a *bad* state with
    ``p_bad``; the chain switches good→bad with ``p_gb`` and bad→good with
    ``p_bg`` per message.  Fairness requires ``p_bad < 1``.
    """

    def __init__(
        self,
        p_good: float = 0.01,
        p_bad: float = 0.6,
        p_gb: float = 0.05,
        p_bg: float = 0.2,
    ) -> None:
        for name, value in (("p_good", p_good), ("p_bad", p_bad)):
            if not 0.0 <= value < 1.0:
                raise ChannelError(f"{name} must be in [0, 1), got {value}")
        for name, value in (("p_gb", p_gb), ("p_bg", p_bg)):
            if not 0.0 < value <= 1.0:
                raise ChannelError(f"{name} must be in (0, 1], got {value}")
        self.p_good = p_good
        self.p_bad = p_bad
        self.p_gb = p_gb
        self.p_bg = p_bg
        self._bad = False

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        if self._bad:
            if rng.random() < self.p_bg:
                self._bad = False
        else:
            if rng.random() < self.p_gb:
                self._bad = True
        p = self.p_bad if self._bad else self.p_good
        return rng.random() < p

    @property
    def in_burst(self) -> bool:
        return self._bad

    def reset(self) -> None:
        self._bad = False


class PeriodicLoss(LossModel):
    """Drops every ``period``-th message (deterministic, fair for period>1)."""

    def __init__(self, period: int) -> None:
        if period < 2:
            raise ChannelError(f"period must be >= 2 (fairness), got {period}")
        self.period = period
        self._count = 0

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        self._count += 1
        return self._count % self.period == 0

    def reset(self) -> None:
        self._count = 0


class TargetedLoss(LossModel):
    """Drops only messages of the targeted tags, with probability ``p``.

    Models an adversary that knows the protocol layering and attacks one
    instance (e.g. only ME's EXITCS wave) while leaving the rest intact.
    """

    def __init__(self, tags: set[str] | frozenset[str], p: float = 0.5) -> None:
        if not 0.0 <= p < 1.0:
            raise ChannelError(f"p must be in [0, 1), got {p}")
        self.tags = frozenset(tags)
        self.p = p

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        return msg.tag in self.tags and rng.random() < self.p


class HeaderCorruption:
    """Randomizes the handshake header of PIF messages with probability ``p``.

    Intended to be applied at transmission time via
    :meth:`maybe_corrupt`; a corrupted message keeps its payloads but
    carries arbitrary ``state``/``echo`` flags — i.e. it *becomes* the kind
    of garbage an arbitrary initial configuration contains.
    """

    def __init__(self, p: float, max_state: int = 4) -> None:
        if not 0.0 <= p <= 1.0:
            raise ChannelError(f"p must be in [0, 1], got {p}")
        self.p = p
        self.max_state = max_state
        self.corrupted = 0

    def maybe_corrupt(self, rng: random.Random, msg: TaggedMessage) -> TaggedMessage:
        if not isinstance(msg, PifMessage) or rng.random() >= self.p:
            return msg
        self.corrupted += 1
        return PifMessage(
            tag=msg.tag,
            broadcast=msg.broadcast,
            feedback=msg.feedback,
            state=rng.randint(0, self.max_state),
            echo=rng.randint(0, self.max_state),
            debug_wave=None,  # a corrupted frame is garbage, not a wave member
        )
