"""Execution-order determinism primitives shared by the serial and sharded engines.

The sharded engine (:mod:`repro.sim.sharded`) must produce **bit-identical**
traces to the serial engine for the same seed.  Two things make that possible,
and both live here because the *serial* engine has to play by the same rules:

1. **Per-entity random streams** (:func:`derive_seed`).  Every random draw the
   engine makes is taken from a stream owned by the entity it concerns — one
   stream per process for activation stagger/jitter, one stream per directed
   channel for loss/corruption/latency, one per entity for the scramble
   adversary.  Draw values then depend only on (root seed, entity, how many
   draws that entity made before), never on how events of *different* entities
   interleave — so a shard that hosts a subset of the entities reproduces
   exactly the draws the serial engine would have made for them.

2. **Canonical event keys** (:func:`driver_key` .. :func:`delivery_key`).
   The scheduler orders same-tick events by ``(key, seq)``.  Engine events
   carry content-derived keys (who fires, which channel, which in-flight
   message), so the order in which same-tick events execute is a function of
   the *simulation state*, not of heap insertion history.  A shard scheduler
   holding only its own processes' events therefore pops them in exactly the
   relative order the global scheduler would have.  Within a tick the classes
   run: external drivers/user posts (0) < process timers (1) < activations
   (2) < message deliveries (3).

Keys are packed into plain ints so heap comparisons stay at C speed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

__all__ = [
    "derive_seed",
    "bound_randint",
    "driver_key",
    "timer_key",
    "activation_key",
    "delivery_key",
    "key_class",
    "key_owner",
]

# Key layout:  (((cls << PID_BITS | a) << PID_BITS | b) << SEQ_BITS) | c
# pids must fit PID_BITS; per-entity counters (timer seq, channel admission
# seq) fit SEQ_BITS.  Python ints are unbounded so "overflow" would merely
# break ordering — the packers assert the bounds instead.
_PID_BITS = 21
_SEQ_BITS = 42
_PID_MAX = (1 << _PID_BITS) - 1
_SEQ_MAX = (1 << _SEQ_BITS) - 1

#: Key class 0 — external pollers (request drivers) and generic user posts.
DRIVER_CLASS = 0
#: Key class 1 — per-process timers (``host.call_later``).
TIMER_CLASS = 1
#: Key class 2 — weakly-fair activations.
ACTIVATION_CLASS = 2
#: Key class 3 — message deliveries (and cross-shard slot releases).
DELIVERY_CLASS = 3


def _pack(cls: int, a: int, b: int, c: int) -> int:
    if not (0 <= a <= _PID_MAX and 0 <= b <= _PID_MAX and 0 <= c <= _SEQ_MAX):
        raise ValueError(f"event key field out of range: cls={cls} a={a} b={b} c={c}")
    return (((cls << _PID_BITS | a) << _PID_BITS | b) << _SEQ_BITS) | c


def driver_key() -> int:
    """Key for external request drivers / pollers (class 0, first in a tick)."""
    return _pack(DRIVER_CLASS, 0, 0, 0)


def timer_key(pid: int, seq: int) -> int:
    """Key for a ``call_later`` timer at ``pid`` (``seq`` = per-host counter)."""
    return _pack(TIMER_CLASS, pid, 0, seq)


def activation_key(pid: int) -> int:
    """Key for ``pid``'s activation (at most one per process per tick)."""
    return _pack(ACTIVATION_CLASS, pid, 0, 0)


def delivery_key(dst: int, src: int, entry_seq: int) -> int:
    """Key for delivering in-flight message ``entry_seq`` on ``src -> dst``.

    ``entry_seq`` is the channel's admission counter, so same-tick deliveries
    on one channel keep admission (FIFO) order, and the key is computable on
    both sides of a shard boundary.
    """
    return _pack(DELIVERY_CLASS, dst, src, entry_seq)


def key_class(key: int) -> int:
    """The event class (DRIVER/TIMER/ACTIVATION/DELIVERY) packed into ``key``."""
    return key >> (2 * _PID_BITS + _SEQ_BITS)


def key_owner(key: int) -> int:
    """The pid at which the keyed event executes.

    Timers and activations execute at their own process, deliveries at the
    destination.  Class-0 (driver) keys carry no entity and return 0 — never
    a valid pid, so routers treat it as "no owning process".  The async
    engine (:mod:`repro.net`) uses this to hand each popped event to the
    coroutine of the process that owns it.
    """
    return (key >> (_PID_BITS + _SEQ_BITS)) & _PID_MAX


def bound_randint(rng: "random.Random", lo: int, hi: int) -> Any:
    """A precompiled equivalent of ``rng.randint(lo, hi)``.

    Engine hot paths (latency draws, activation jitter) call ``randint``
    with *fixed* bounds millions of times per trial; CPython routes each
    call through ``randint -> randrange -> _randbelow_with_getrandbits``,
    three Python frames deep.  The returned closure inlines that chain —
    the same rejection sampling over ``getrandbits(width.bit_length())``
    CPython performs — so it **returns the identical value sequence and
    consumes the identical underlying draws**, leaving the stream state bit
    for bit where ``randint`` would have left it.  That equivalence is what
    keeps serial/sharded/loopback traces byte-identical (and is asserted by
    ``tests/test_runtime.py``).

    The bounds are baked in; the closure also stands in for a bound
    ``rng.randint`` at call sites that pass ``(lo, hi)`` positionally
    (e.g. :meth:`Simulator.draw_delivery_time`) — and **raises** if a
    caller ever passes different bounds.  With per-edge latency maps
    (:class:`~repro.sim.topology.Weighted`) each cached draw is compiled
    for its own channel's bounds, so this guard is what makes a call site
    that resolves the wrong edge's bounds — or a cache rebuilt against a
    different topology — fail loudly instead of silently sampling stale
    bounds.  Falls back to the plain method for ``random.Random``
    subclasses, whose ``randint`` may not be getrandbits-based.
    """
    def _check(a: int, b: int) -> None:
        if a != lo or b != hi:
            raise ValueError(
                f"bound_randint compiled for ({lo}, {hi}) called with "
                f"({a}, {b}); rebuild the cached draw for the new bounds"
            )

    if type(rng) is not random.Random or hi - lo + 1 <= 1:
        # Subclass randint may not be getrandbits-based, and randint(lo, lo)
        # still consumes draws (rejection down to 0) — keep the stock path
        # for these cold cases behind the same guarded signature.
        def fallback(a: int = lo, b: int = hi) -> int:
            _check(a, b)
            return rng.randint(lo, hi)

        return fallback
    width = hi - lo + 1
    k = width.bit_length()
    getrandbits = rng.getrandbits

    def draw(a: int = lo, b: int = hi) -> int:
        if a != lo or b != hi:
            _check(a, b)
        r = getrandbits(k)
        while r >= width:
            r = getrandbits(k)
        return lo + r

    return draw


def derive_seed(*parts: Any) -> int:
    """A stable 64-bit seed from ``parts`` (ints/strings), identical across
    processes and Python invocations (no reliance on ``hash()``)."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big")
