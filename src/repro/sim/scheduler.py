"""Deterministic discrete-event scheduler.

Time is an integer tick counter.  Events scheduled for the same tick run in
the order they were scheduled (a monotone sequence number breaks ties), which
makes every simulation fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SchedulerError

__all__ = ["EventHandle", "Scheduler"]


@dataclass(order=True)
class _QueueEntry:
    time: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Cancelable handle for a scheduled callback."""

    __slots__ = ("callback", "time", "cancelled", "fired")

    def __init__(self, callback: Callable[[], None], time: int) -> None:
        self.callback = callback
        self.time = time
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.fired


class Scheduler:
    """A priority-queue driven event loop over integer ticks."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[_QueueEntry] = []

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self._now

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute tick ``time``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        handle = EventHandle(callback, time)
        self._seq += 1
        heapq.heappush(self._queue, _QueueEntry(time, self._seq, handle))
        return handle

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def __len__(self) -> int:
        """Number of queue entries, including cancelled ones not yet popped."""
        return len(self._queue)

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return sum(1 for entry in self._queue if entry.handle.pending)

    def run_next(self) -> bool:
        """Run the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Cancelled events are discarded silently.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            entry.handle.fired = True
            entry.handle.callback()
            return True
        return False

    def run_until(
        self,
        max_time: int,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Run events until ``max_time`` (inclusive) or until ``stop()``.

        The stop predicate is evaluated after every event.  Returns the
        number of events executed.
        """
        executed = 0
        while self._queue:
            entry = self._queue[0]
            if entry.time > max_time:
                break
            if not self.run_next():
                break
            executed += 1
            if stop is not None and stop():
                break
        # Even if nothing (more) ran, time advances to the horizon so that
        # repeated run_until calls observe monotone time.
        if self._now < max_time and (not self._queue or self._queue[0].time > max_time):
            self._now = max_time
        return executed
