"""Deterministic discrete-event scheduler (the simulator's hot core).

Time is an integer tick counter.  Events scheduled for the same tick run in
``(key, seq)`` order: ``key`` is a *canonical* content-derived rank (see
:mod:`repro.sim.determinism`) and ``seq`` is a monotone insertion counter that
breaks remaining ties.  Engine events (activations, timers, deliveries) pass
canonical keys, so same-tick ordering is a function of simulation state rather
than heap insertion history — the property that lets the sharded engine
(:mod:`repro.sim.sharded`) reproduce serial runs bit-for-bit.  Unkeyed events
(key 0) keep the classic insertion order among themselves and run first in
their tick.

Engine notes — this loop dominates simulator wall-clock, so it is tuned:

* Heap entries are plain ``(time, key, seq, handle)`` tuples: tuple comparison
  runs at C speed, which benchmarks ~3x faster than ordered dataclass or
  ``__slots__`` entry objects (pooled or not) under heapq churn.
* Cancellation is lazy (the classic heapq idiom), but the queue *compacts*:
  when cancelled entries exceed half the queue (past a small floor), they
  are dropped and the heap is rebuilt in one O(len) pass.  Long runs with
  many cancelled timers therefore no longer grow the heap unboundedly.
  Compaction preserves the (time, key, seq) order, so determinism is
  unaffected.
* ``pending_count`` is O(1) bookkeeping instead of an O(len) scan.
* :meth:`run_until` drains same-tick batches without re-peeking the heap
  top between events of the same tick.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SchedulerError

__all__ = ["EventHandle", "Scheduler"]

#: Compaction floor: below this queue size, lazy deletion is always fine.
_COMPACT_MIN = 64


class EventHandle:
    """Cancelable handle for a scheduled callback."""

    __slots__ = ("callback", "time", "cancelled", "fired", "_scheduler")

    def __init__(
        self, callback: Callable[[], None], time: int, scheduler: "Scheduler"
    ) -> None:
        self.callback = callback
        self.time = time
        self.cancelled = False
        self.fired = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self._scheduler._note_cancelled()

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.fired


class Scheduler:
    """A priority-queue driven event loop over integer ticks."""

    __slots__ = ("_now", "_seq", "_queue", "_cancelled", "current_key",
                 "pops", "compactions")

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        #: Passive observability counters (repro.obs): cumulative events
        #: executed and heap compactions.  Updated per run_until batch /
        #: per compaction, never per heap operation, so they cost nothing
        #: measurable on the hot loop.
        self.pops = 0
        self.compactions = 0
        # Heap of (time, key, seq, item) where item is an EventHandle
        # (cancelable, from schedule_*) or a bare callback (fire-and-forget,
        # from post_*).  seq is unique, so comparisons never reach the item.
        self._queue: list[
            tuple[int, int, int, "EventHandle | Callable[[], None]"]
        ] = []
        # Cancelled-but-not-yet-popped entries currently in the heap.
        self._cancelled = 0
        #: Canonical key of the event currently executing (0 outside events).
        #: The sharded engine's trace merge reads this to give every emitted
        #: trace event a globally sortable position.
        self.current_key = 0

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self._now

    def schedule_at(
        self, time: int, callback: Callable[[], None], key: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute tick ``time``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        handle = EventHandle(callback, time, self)
        self._seq += 1
        heapq.heappush(self._queue, (time, key, self._seq, handle))
        return handle

    def schedule_in(
        self, delay: int, callback: Callable[[], None], key: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, key)

    def post_at(self, time: int, callback: Callable[[], None], key: int = 0) -> None:
        """Fast path: schedule a *non-cancelable* callback at tick ``time``.

        Same ordering semantics as :meth:`schedule_at`, but no
        :class:`EventHandle` is allocated — the engine's own events
        (deliveries, activations, pollers) are fire-and-forget, and the
        handle allocation showed up in profiles.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, key, self._seq, callback))

    def post_in(self, delay: int, callback: Callable[[], None], key: int = 0) -> None:
        """Fast path: non-cancelable callback ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        self.post_at(self._now + delay, callback, key)

    def __len__(self) -> int:
        """Number of queue entries, including cancelled ones not yet compacted."""
        return len(self._queue)

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue) - self._cancelled

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > _COMPACT_MIN
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in one pass.

        Entries keep their (time, key, seq) keys, so heapify restores exactly
        the order a pristine heap would have produced — determinism preserved.
        Compacts *in place*: run_until/run_next hold a local alias to the
        queue list while callbacks (which may cancel handles and trigger
        this) are executing, and rebinding would leave them iterating a
        stale snapshot, double-running its events.
        """
        self._queue[:] = [
            e
            for e in self._queue
            if not (e[3].__class__ is EventHandle and e[3].cancelled)
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1

    def run_next(self) -> bool:
        """Run the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Cancelled events are discarded silently.
        """
        queue = self._queue
        while queue:
            time, key, _seq, item = heapq.heappop(queue)
            if item.__class__ is EventHandle:
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = time
                self.current_key = key
                item.fired = True
                item.callback()
            else:
                self._now = time
                self.current_key = key
                item()
            self.current_key = 0
            self.pops += 1
            return True
        return False

    def run_until(
        self,
        max_time: int,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Run events until ``max_time`` (inclusive) or until ``stop()``.

        The stop predicate is evaluated after every event.  Returns the
        number of events executed.
        """
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            tick = queue[0][0]
            if tick > max_time:
                break
            # Drain the same-tick batch without re-peeking between events.
            # New events can land on the current tick mid-batch ((key, seq)
            # order keeps later-keyed ones after the entry being executed),
            # so re-check the top's time instead of pre-counting the batch.
            halted = False
            while queue and queue[0][0] == tick:
                _time, key, _seq, item = heappop(queue)
                if item.__class__ is EventHandle:
                    if item.cancelled:
                        self._cancelled -= 1
                        continue
                    self._now = tick
                    self.current_key = key
                    item.fired = True
                    item.callback()
                else:
                    self._now = tick
                    self.current_key = key
                    item()
                executed += 1
                if stop is not None and stop():
                    halted = True
                    break
            if halted:
                break
        self.current_key = 0
        self.pops += executed
        # Even if nothing (more) ran, time advances to the horizon so that
        # repeated run_until calls observe monotone time.
        if self._now < max_time and (not queue or queue[0][0] > max_time):
            self._now = max_time
        return executed
