"""Execution traces and semantic events — columnar, index-maintaining store.

Protocol layers emit *semantic events* (request, start, decide, receive-brd,
receive-fck, CS enter/exit, ...) into a :class:`Trace`.  Specification
checkers evaluate the paper's Specifications 1-3 purely over the trace, never
by peeking at protocol internals, so a protocol cannot "pass" by accident of
implementation details.

Storage layout (the trial hot path emits one event per delivered protocol
message, and spec checkers re-read the log many times, so both sides are
tuned):

* Events live in **parallel columns** — ``time``, ``kind`` (interned to a
  small int via a module-level table), ``process`` and the payload dict —
  instead of a list of :class:`TraceEvent` objects.  ``emit`` therefore costs
  a few list appends, not a frozen-dataclass construction.
* **kind→rows and process→rows indices** are maintained on every append, so
  :meth:`of_kind` / :meth:`for_process` / :meth:`first` / :meth:`last` are
  index lookups instead of full scans, and :meth:`scan` streams exactly the
  rows a checker cares about.
* :class:`TraceEvent` remains the public per-event view.  Views are
  **materialized lazily** (and cached per row), so code that never touches an
  event object — single-pass spec checkers, online monitors, the canonical
  hash — never pays for one, while ``trace[i]``/iteration keep returning the
  exact objects older code expects.

Emission order, event content and the canonical hash are bit-identical to
the historical list-of-dataclasses store (asserted by
``tests/test_trace_store.py``); only the cost model changed.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["EventKind", "TraceEvent", "Trace", "canonical_trace_hash"]


class EventKind:
    """String constants naming every semantic event kind."""

    # Request lifecycle (all three protocols).
    REQUEST = "request"        # external application sets Request <- Wait
    START = "start"            # protocol switches Request Wait -> In
    DECIDE = "decide"          # protocol switches Request In -> Done

    # PIF upcalls (paper: "generate a receive-brd / receive-fck event").
    RECEIVE_BRD = "receive-brd"
    RECEIVE_FCK = "receive-fck"

    # Network-level events.
    SEND = "send"
    DELIVER = "deliver"
    DROP_FULL = "drop-full"    # sent into a full channel slot (paper: lost)
    DROP_LOSS = "drop-loss"    # lost by the loss model

    # Mutual exclusion.
    CS_ENTER = "cs-enter"
    CS_EXIT = "cs-exit"
    PHASE = "phase"            # ME phase transition

    # Harness events.
    SCRAMBLE = "scramble"      # adversary rewrote states / channels
    INJECT = "inject"          # adversary placed a message into a channel
    NOTE = "note"


# Module-level kind interning: kind strings <-> small ints.  Shared across
# traces (the kind vocabulary is tiny and global), append-only, so ids are
# stable for the process lifetime.
_KIND_IDS: dict[str, int] = {}
_KIND_NAMES: list[str] = []


def _intern_kind(kind: str) -> int:
    kid = _KIND_IDS.get(kind)
    if kid is None:
        kid = len(_KIND_NAMES)
        _KIND_IDS[kind] = kid
        _KIND_NAMES.append(kind)
    return kid


# Pre-intern the standard vocabulary so hot emits always hit the table.
for _attr, _value in vars(EventKind).items():
    if not _attr.startswith("_") and isinstance(_value, str):
        _intern_kind(_value)
del _attr, _value


@dataclass(frozen=True)
class TraceEvent:
    """One semantic event.

    ``process`` is the process at which the event happened (``None`` for
    global harness events); ``data`` carries event-specific fields such as
    the payload of a broadcast or the peer a feedback came from.
    """

    time: int
    kind: str
    process: int | None
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Trace:
    """Append-only event log with indexed query helpers.

    Queries come in two flavours: the classic :class:`TraceEvent`-returning
    helpers (``of_kind``, ``for_process``, ``first``, ...) and the streaming
    column API (:meth:`scan`, :meth:`rows_of`, :meth:`count`, per-row
    accessors) used by the single-pass spec checkers and online monitors.
    """

    __slots__ = (
        "_times", "_kind_ids", "_procs", "_data", "_views",
        "_kind_rows", "_proc_rows", "_events_cache", "_monotone",
    )

    def __init__(self) -> None:
        self._times: list[int] = []
        self._kind_ids: list[int] = []
        self._procs: list[int | None] = []
        self._data: list[dict[str, Any]] = []
        # Lazily materialized TraceEvent views, one slot per row.
        self._views: list[TraceEvent | None] = []
        self._kind_rows: dict[int, list[int]] = {}
        self._proc_rows: dict[int, list[int]] = {}
        self._events_cache: tuple[TraceEvent, ...] | None = None
        # True while times are non-decreasing (every engine emission is);
        # lets between() binary-search instead of scanning.
        self._monotone = True

    # -- appending ---------------------------------------------------------

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> None:
        """Append one event.  The engine's hottest trace operation."""
        self._append(time, kind, process, data, None)

    def _append(
        self,
        time: int,
        kind: str,
        process: int | None,
        data: dict[str, Any],
        view: TraceEvent | None,
    ) -> None:
        times = self._times
        row = len(times)
        if times and time < times[-1]:
            self._monotone = False
        times.append(time)
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = _intern_kind(kind)
        self._kind_ids.append(kid)
        self._procs.append(process)
        self._data.append(data)
        self._views.append(view)
        rows = self._kind_rows.get(kid)
        if rows is None:
            self._kind_rows[kid] = rows = []
        rows.append(row)
        if process is not None:
            prows = self._proc_rows.get(process)
            if prows is None:
                self._proc_rows[process] = prows = []
            prows.append(row)
        self._events_cache = None

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (trace merging); views are reused."""
        for e in events:
            self._append(e.time, e.kind, e.process, e.data, e)

    # -- view materialization ---------------------------------------------

    def _event(self, row: int) -> TraceEvent:
        view = self._views[row]
        if view is None:
            view = TraceEvent(
                self._times[row],
                _KIND_NAMES[self._kind_ids[row]],
                self._procs[row],
                self._data[row],
            )
            self._views[row] = view
        return view

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TraceEvent]:
        event = self._event
        for row in range(len(self._times)):
            yield event(row)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._event(row) for row in range(*index.indices(len(self._times)))]
        if index < 0:
            index += len(self._times)
        if not 0 <= index < len(self._times):
            raise IndexError(index)
        return self._event(index)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All events as a tuple — cached, so repeated access is free."""
        cache = self._events_cache
        if cache is None:
            cache = self._events_cache = tuple(self)
        return cache

    # -- streaming column API ----------------------------------------------

    def rows_of(self, *kinds: str) -> list[int]:
        """Row indices of the given kinds, in emission order."""
        lists = [
            rows
            for kind in kinds
            if (rows := self._kind_rows.get(_KIND_IDS.get(kind, -1)))
        ]
        if not lists:
            return []
        if len(lists) == 1:
            return lists[0][:]
        merged: list[int] = []
        for rows in lists:
            merged.extend(rows)
        merged.sort()
        return merged

    def kind_rows(self, kind: str) -> list[int]:
        """The *live* (append-only) row index of one kind.

        Callers may hold on to it and poll ``len()`` to watch for new events
        of that kind without rescanning — the amortized-O(1) pattern the
        round-budget guard uses.
        """
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = _intern_kind(kind)
        rows = self._kind_rows.get(kid)
        if rows is None:
            self._kind_rows[kid] = rows = []
        return rows

    def count(self, *kinds: str) -> int:
        """Number of events of the given kinds (index lookup, no scan)."""
        return sum(
            len(self._kind_rows.get(_KIND_IDS.get(kind, -1), ()))
            for kind in kinds
        )

    def scan(self, *kinds: str) -> Iterator[tuple[int, str, int | None, dict[str, Any]]]:
        """Stream ``(time, kind, process, data)`` rows in emission order.

        With ``kinds`` given, only those rows are visited (via the kind
        index); without, the whole log streams.  No :class:`TraceEvent` is
        materialized — this is the spec checkers' single-pass primitive.
        """
        times = self._times
        kind_ids = self._kind_ids
        procs = self._procs
        data = self._data
        names = _KIND_NAMES
        if kinds:
            for row in self.rows_of(*kinds):
                yield times[row], names[kind_ids[row]], procs[row], data[row]
        else:
            for row in range(len(times)):
                yield times[row], names[kind_ids[row]], procs[row], data[row]

    def time_at(self, row: int) -> int:
        return self._times[row]

    def kind_at(self, row: int) -> str:
        return _KIND_NAMES[self._kind_ids[row]]

    def process_at(self, row: int) -> int | None:
        return self._procs[row]

    def data_at(self, row: int) -> dict[str, Any]:
        return self._data[row]

    # -- classic event queries ---------------------------------------------

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """All events whose kind is one of ``kinds``, in order."""
        event = self._event
        return [event(row) for row in self.rows_of(*kinds)]

    def for_process(self, pid: int, *kinds: str) -> list[TraceEvent]:
        """Events at process ``pid``, optionally restricted to ``kinds``."""
        rows = self._proc_rows.get(pid, ())
        event = self._event
        if not kinds:
            return [event(row) for row in rows]
        wanted = {
            kid for kind in kinds if (kid := _KIND_IDS.get(kind)) is not None
        }
        kind_ids = self._kind_ids
        return [event(row) for row in rows if kind_ids[row] in wanted]

    def between(self, t0: int, t1: int) -> list[TraceEvent]:
        """Events with ``t0 <= time <= t1``."""
        times = self._times
        event = self._event
        if self._monotone:
            lo = bisect_left(times, t0)
            hi = bisect_right(times, t1)
            return [event(row) for row in range(lo, hi)]
        return [
            event(row) for row, t in enumerate(times) if t0 <= t <= t1
        ]

    def where(self, **fields: Any) -> list[TraceEvent]:
        """Events whose data contains every given key/value pair."""
        items = list(fields.items())
        event = self._event
        return [
            event(row)
            for row, d in enumerate(self._data)
            if all(d.get(k) == v for k, v in items)
        ]

    def first(self, kind: str, **fields: Any) -> TraceEvent | None:
        """The earliest event of ``kind`` matching ``fields``, or None."""
        rows = self._kind_rows.get(_KIND_IDS.get(kind, -1))
        if not rows:
            return None
        data = self._data
        items = list(fields.items())
        for row in rows:
            d = data[row]
            if all(d.get(k) == v for k, v in items):
                return self._event(row)
        return None

    def last(self, kind: str, **fields: Any) -> TraceEvent | None:
        """The latest event of ``kind`` matching ``fields``, or None."""
        rows = self._kind_rows.get(_KIND_IDS.get(kind, -1))
        if not rows:
            return None
        data = self._data
        items = list(fields.items())
        for row in reversed(rows):
            d = data[row]
            if all(d.get(k) == v for k, v in items):
                return self._event(row)
        return None

    # -- canonical digest ---------------------------------------------------

    def canonical_hash(self) -> str:
        """Canonical digest of the trace (order, times, kinds, payloads).

        Computed straight off the columns (no view materialization); the
        byte stream is the exact one the equivalence CI gates historically
        hashed, so digests are comparable across engines, store versions and
        processes.
        """
        h = hashlib.blake2b(digest_size=16)
        update = h.update
        names = _KIND_NAMES
        for t, kid, p, d in zip(self._times, self._kind_ids, self._procs, self._data):
            update(repr((t, names[kid], p, sorted(d.items()))).encode())
            update(b"\x1e")
        return h.hexdigest()


def canonical_trace_hash(trace: "Trace | Iterable[TraceEvent]") -> str:
    """Canonical digest of any trace-like event sequence.

    Delegates to :meth:`Trace.canonical_hash` for column-backed traces and
    falls back to hashing materialized events (legacy stores, raw event
    lists) with the identical byte stream.
    """
    if isinstance(trace, Trace):
        return trace.canonical_hash()
    h = hashlib.blake2b(digest_size=16)
    for e in trace:
        h.update(repr((e.time, e.kind, e.process, sorted(e.data.items()))).encode())
        h.update(b"\x1e")
    return h.hexdigest()
