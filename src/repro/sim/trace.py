"""Execution traces and semantic events.

Protocol layers emit *semantic events* (request, start, decide, receive-brd,
receive-fck, CS enter/exit, ...) into a :class:`Trace`.  Specification
checkers evaluate the paper's Specifications 1-3 purely over the trace, never
by peeking at protocol internals, so a protocol cannot "pass" by accident of
implementation details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind:
    """String constants naming every semantic event kind."""

    # Request lifecycle (all three protocols).
    REQUEST = "request"        # external application sets Request <- Wait
    START = "start"            # protocol switches Request Wait -> In
    DECIDE = "decide"          # protocol switches Request In -> Done

    # PIF upcalls (paper: "generate a receive-brd / receive-fck event").
    RECEIVE_BRD = "receive-brd"
    RECEIVE_FCK = "receive-fck"

    # Network-level events.
    SEND = "send"
    DELIVER = "deliver"
    DROP_FULL = "drop-full"    # sent into a full channel slot (paper: lost)
    DROP_LOSS = "drop-loss"    # lost by the loss model

    # Mutual exclusion.
    CS_ENTER = "cs-enter"
    CS_EXIT = "cs-exit"
    PHASE = "phase"            # ME phase transition

    # Harness events.
    SCRAMBLE = "scramble"      # adversary rewrote states / channels
    INJECT = "inject"          # adversary placed a message into a channel
    NOTE = "note"


@dataclass(frozen=True)
class TraceEvent:
    """One semantic event.

    ``process`` is the process at which the event happened (``None`` for
    global harness events); ``data`` carries event-specific fields such as
    the payload of a broadcast or the peer a feedback came from.
    """

    time: int
    kind: str
    process: int | None
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> TraceEvent:
        event = TraceEvent(time=time, kind=kind, process=process, data=data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """All events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_process(self, pid: int, *kinds: str) -> list[TraceEvent]:
        """Events at process ``pid``, optionally restricted to ``kinds``."""
        wanted = set(kinds) if kinds else None
        return [
            e
            for e in self._events
            if e.process == pid and (wanted is None or e.kind in wanted)
        ]

    def between(self, t0: int, t1: int) -> list[TraceEvent]:
        """Events with ``t0 <= time <= t1``."""
        return [e for e in self._events if t0 <= e.time <= t1]

    def where(self, **fields: Any) -> list[TraceEvent]:
        """Events whose data contains every given key/value pair."""
        return [
            e
            for e in self._events
            if all(e.data.get(k) == v for k, v in fields.items())
        ]

    def first(self, kind: str, **fields: Any) -> TraceEvent | None:
        """The earliest event of ``kind`` matching ``fields``, or None."""
        for e in self._events:
            if e.kind == kind and all(e.data.get(k) == v for k, v in fields.items()):
                return e
        return None

    def last(self, kind: str, **fields: Any) -> TraceEvent | None:
        """The latest event of ``kind`` matching ``fields``, or None."""
        for e in reversed(self._events):
            if e.kind == kind and all(e.data.get(k) == v for k, v in fields.items()):
                return e
        return None

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self._events.extend(events)
