"""Message-passing system simulator (the paper's Section 2 model).

Public surface:

* :class:`~repro.sim.runtime.Simulator` — the runtime;
* :class:`~repro.sim.process.Layer`, :class:`~repro.sim.process.Action`,
  :class:`~repro.sim.process.ProcessHost` — the guarded-action process model;
* topologies (:mod:`repro.sim.topology`) — the pluggable communication
  graphs the network and protocols run over;
* channels and loss models (:mod:`repro.sim.channel`);
* configurations and projections (:mod:`repro.sim.configuration`);
* adversaries (:mod:`repro.sim.adversary`);
* traces (:mod:`repro.sim.trace`) and stats (:mod:`repro.sim.stats`).
"""

from repro.sim.channel import (
    BernoulliLoss,
    BoundedChannel,
    DropFirstK,
    LossModel,
    NoLoss,
    UnboundedChannel,
)
from repro.sim.faults import (
    GilbertElliottLoss,
    HeaderCorruption,
    PeriodicLoss,
    TargetedLoss,
)
from repro.sim.configuration import (
    AbstractConfiguration,
    Configuration,
    capture,
    capture_abstract,
    restore,
    sequence_projection,
    state_projection,
)
from repro.sim.network import Network
from repro.sim.process import Action, Layer, ProcessHost
from repro.sim.runtime import Simulator
from repro.sim.scheduler import Scheduler
from repro.sim.stats import SimStats
from repro.sim.topology import (
    Clustered,
    Complete,
    Grid2D,
    RandomGnp,
    Ring,
    Star,
    Topology,
    arbitration_clusters,
    topology_from_spec,
)
from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = [
    "Action",
    "AbstractConfiguration",
    "BernoulliLoss",
    "BoundedChannel",
    "Clustered",
    "Complete",
    "Configuration",
    "DropFirstK",
    "EventKind",
    "Grid2D",
    "RandomGnp",
    "Ring",
    "Star",
    "Topology",
    "GilbertElliottLoss",
    "HeaderCorruption",
    "PeriodicLoss",
    "TargetedLoss",
    "Layer",
    "LossModel",
    "Network",
    "NoLoss",
    "ProcessHost",
    "Scheduler",
    "SimStats",
    "Simulator",
    "Trace",
    "TraceEvent",
    "UnboundedChannel",
    "arbitration_clusters",
    "capture",
    "capture_abstract",
    "restore",
    "sequence_projection",
    "state_projection",
    "topology_from_spec",
]
