"""The simulator runtime.

:class:`Simulator` ties together the scheduler, the network, and the
processes.  It implements the paper's asynchronous message-passing semantics:

* **Weakly fair activations** — every process is activated infinitely often
  (every ``activation_period`` ticks, with optional deterministic jitter);
  an activation atomically executes all enabled guarded actions.
* **Asynchronous, lossy, FIFO channels** — a sent message suffers a random
  latency; it can be lost by the loss model or by arriving at a full channel
  slot (Section 4 semantics); per-tag FIFO order is preserved.
* **Atomicity** — while a process is *busy* (executing a durational critical
  section, i.e. a long atomic action) neither activations nor deliveries
  happen at it; deliveries wait in the channel.

Two driving styles:

* ``auto=True`` (default): activations are self-scheduling; :meth:`run`
  advances time until a horizon or a predicate holds.
* ``auto=False``: *manual mode* for the Theorem 1 replay engine — the caller
  explicitly activates processes and delivers specific messages.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.channel import (
    BoundedChannel,
    ChannelBase,
    LossModel,
    NoLoss,
    TaggedMessage,
    UnboundedChannel,
)
from repro.sim.network import Network
from repro.sim.process import ProcessHost
from repro.sim.scheduler import Scheduler
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import EventKind, Trace

__all__ = ["Simulator"]

BuildFn = Callable[[ProcessHost], None]


class Simulator:
    """A deterministic, seeded message-passing system simulator.

    ``topology`` selects the communication graph: a
    :class:`~repro.sim.topology.Topology` instance, a spec string accepted by
    :func:`~repro.sim.topology.topology_from_spec` (``"ring"``,
    ``"gnp:0.3"``, ...), or None for the paper's complete graph.  When a
    Topology instance is given its pids define the system and ``pids`` may
    be omitted (or must agree).
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        build: BuildFn = lambda host: None,
        *,
        topology: Topology | str | None = None,
        seed: int = 0,
        capacity: int = 1,
        unbounded: bool = False,
        latency: tuple[int, int] = (1, 3),
        loss: LossModel | None = None,
        corruption: "object | None" = None,
        activation_period: int = 2,
        activation_jitter: int = 1,
        auto: bool = True,
        trace_network: bool = False,
    ) -> None:
        if isinstance(pids, int):
            pids = list(range(1, pids + 1))
        if isinstance(topology, str):
            if pids is None:
                raise SimulationError(
                    f"topology spec {topology!r} needs an explicit process count"
                )
            topology = topology_from_spec(topology, len(pids), seed=seed)
        if topology is None:
            if pids is None:
                raise SimulationError("need a process count, pid list, or topology")
        elif pids is not None and tuple(sorted(pids)) != topology.pids:
            raise SimulationError(
                f"pids {sorted(pids)} do not match topology pids {topology.pids}"
            )
        lo, hi = latency
        if not 1 <= lo <= hi:
            raise SimulationError(f"latency bounds must satisfy 1 <= lo <= hi, got {latency}")
        if activation_period < 1:
            raise SimulationError(f"activation_period must be >= 1, got {activation_period}")

        self.rng = random.Random(seed)
        # Bound-method caches for the event hot path (one Random per sim,
        # reused everywhere — including scramble — so runs stay deterministic).
        self._randint = self.rng.randint
        self.scheduler = Scheduler()
        self.trace = Trace()
        self.stats = SimStats()
        self.loss: LossModel = loss if loss is not None else NoLoss()
        # NoLoss draws no randomness, so skipping the call outright in
        # transmit() is behaviour-preserving and saves a method call per send.
        self._lossless = type(self.loss) is NoLoss
        #: Optional in-flight corruption model (see repro.sim.faults); must
        #: expose ``maybe_corrupt(rng, msg) -> msg``.
        self.corruption = corruption
        self.latency = (lo, hi)
        self.activation_period = activation_period
        self.activation_jitter = activation_jitter
        self.auto = auto
        self.trace_network = trace_network
        self.capacity = capacity
        self.unbounded = unbounded

        graph = topology if topology is not None else pids
        assert graph is not None
        if unbounded:
            self.network = Network(graph, UnboundedChannel)
        else:
            self.network = Network(
                graph, lambda s, d: BoundedChannel(s, d, capacity=capacity)
            )
        self.topology: Topology = self.network.topology

        #: Observation hooks (recording, instrumentation). ``delivery_hooks``
        #: fire just before a message is dispatched to the receiving process;
        #: ``activation_hooks`` fire just before a process activation runs.
        self.delivery_hooks: list[Callable[[int, int, TaggedMessage], None]] = []
        self.activation_hooks: list[Callable[[int], None]] = []

        self.hosts: dict[int, ProcessHost] = {}
        for pid in self.network.pids:
            host = ProcessHost(self, pid)
            build(host)
            self.hosts[pid] = host

        if auto:
            # Stagger first activations deterministically so processes are
            # not lockstep-synchronized (asynchrony).
            for pid in self.network.pids:
                offset = self.rng.randrange(activation_period) if activation_period > 1 else 0
                self.scheduler.post_at(offset, self._make_activation(pid))

    # -- basic accessors -----------------------------------------------------

    @property
    def now(self) -> int:
        return self.scheduler._now

    @property
    def pids(self) -> tuple[int, ...]:
        return self.network.pids

    def host(self, pid: int) -> ProcessHost:
        try:
            return self.hosts[pid]
        except KeyError:
            raise SimulationError(f"unknown process id {pid}") from None

    def layer(self, pid: int, tag: str):
        return self.host(pid).layer(tag)

    # -- message transmission --------------------------------------------------

    def transmit(self, src: int, dst: int, msg: TaggedMessage) -> bool:
        """Send ``msg`` from ``src`` to ``dst``; returns True if admitted."""
        stats = self.stats
        stats.sent += 1
        stats.sent_by_tag[msg.tag] += 1
        if self.trace_network:
            self.trace.emit(self.now, EventKind.SEND, src, dst=dst, tag=msg.tag)
        if self.corruption is not None:
            msg = self.corruption.maybe_corrupt(self.rng, msg)
        if not self._lossless and self.loss.should_drop(self.rng, msg):
            stats.dropped_loss += 1
            if self.trace_network:
                self.trace.emit(self.now, EventKind.DROP_LOSS, src, dst=dst, tag=msg.tag)
            return False
        channel = self.network.channel(src, dst)
        entry = channel.try_admit(msg, self.scheduler._now)
        if entry is None:
            self.stats.dropped_full += 1
            if self.trace_network:
                self.trace.emit(self.now, EventKind.DROP_FULL, src, dst=dst, tag=msg.tag)
            return False
        if self.auto:
            self._schedule_delivery(channel, entry)
        return True

    def _schedule_delivery(self, channel: ChannelBase, entry) -> None:
        lo, hi = self.latency
        proposed = self.scheduler._now + self._randint(lo, hi)
        entry.delivery_time = channel.fifo_delivery_time(entry.msg.tag, proposed)
        self.scheduler.post_at(
            entry.delivery_time, lambda: self._deliver(channel, entry)
        )

    def _deliver(self, channel: ChannelBase, entry) -> None:
        if entry not in channel._entries:
            return  # channel was cleared/restored under us
        host = self.hosts[channel.dst]
        if host.busy:
            # The receiver is inside a long atomic action; the message stays
            # in the channel (still occupying its slot) and delivery retries
            # when the process frees up.
            self.scheduler.post_at(
                host.busy_until, lambda: self._deliver(channel, entry)
            )
            return
        channel.remove(entry)
        self.stats.record_delivery(entry.msg.tag)
        if self.trace_network:
            self.trace.emit(
                self.now, EventKind.DELIVER, channel.dst, src=channel.src, tag=entry.msg.tag
            )
        for hook in self.delivery_hooks:
            hook(channel.src, channel.dst, entry.msg)
        host.dispatch(channel.src, entry.msg)

    def inject(self, src: int, dst: int, msg: TaggedMessage, *, schedule: bool | None = None) -> None:
        """Adversarially place ``msg`` into the channel ``src -> dst``.

        Raises :class:`~repro.errors.ChannelError` when the channel is full
        for the message's tag — the capacity bound binds the adversary too.
        In auto mode the delivery is scheduled like a normal send unless
        ``schedule=False``.
        """
        channel = self.network.channel(src, dst)
        entry = channel.inject(msg, self.now)
        self.trace.emit(self.now, EventKind.INJECT, None, src=src, dst=dst, tag=msg.tag)
        if schedule is None:
            schedule = self.auto
        if schedule:
            self._schedule_delivery(channel, entry)

    # -- activations -----------------------------------------------------------

    def _make_activation(self, pid: int) -> Callable[[], None]:
        # Everything the self-rescheduling loop touches is bound locally:
        # activations fire every few ticks at every process forever, so this
        # closure is one of the two hottest paths in the engine.
        host = self.hosts[pid]
        stats = self.stats
        hooks = self.activation_hooks
        randint = self._randint
        post_in = self.scheduler.post_in
        period = self.activation_period
        jitter_max = self.activation_jitter

        def fire() -> None:
            if not host.busy:
                stats.activations += 1
                for hook in hooks:
                    hook(pid)
                host.activate()
            jitter = randint(0, jitter_max) if jitter_max > 0 else 0
            post_in(period + jitter, fire)

        return fire

    def activate(self, pid: int) -> int:
        """Manually activate one process (manual mode / tests)."""
        host = self.host(pid)
        if host.busy:
            return 0
        self.stats.activations += 1
        for hook in self.activation_hooks:
            hook(pid)
        return host.activate()

    def step_deliver(
        self, src: int, dst: int, tag: str | None = None
    ) -> TaggedMessage | None:
        """Manually deliver the oldest in-flight message on ``src -> dst``.

        Optionally restricted to messages of a given tag.  Returns the
        delivered message, or None when nothing matched.  Used by the
        Theorem 1 replay engine and by fine-grained unit tests.
        """
        channel = self.network.channel(src, dst)
        for entry in channel.entries():
            if tag is None or entry.msg.tag == tag:
                channel.remove(entry)
                self.stats.record_delivery(entry.msg.tag)
                for hook in self.delivery_hooks:
                    hook(src, dst, entry.msg)
                self.hosts[dst].dispatch(src, entry.msg)
                return entry.msg
        return None

    # -- running -----------------------------------------------------------------

    def run(
        self,
        max_time: int,
        until: Callable[["Simulator"], bool] | None = None,
    ) -> bool:
        """Advance simulated time.

        Runs until ``until(self)`` holds (checked after every event) or the
        time horizon is hit.  Returns True iff the predicate was satisfied
        (always False when no predicate is given).
        """
        if until is None:
            self.scheduler.run_until(max_time)
            return False
        if until(self):
            return True
        satisfied = False

        def stop() -> bool:
            nonlocal satisfied
            satisfied = until(self)
            return satisfied

        self.scheduler.run_until(max_time, stop=stop)
        return satisfied

    def run_quiet(self, max_time: int, settle: int = 50) -> bool:
        """Run until no message is in flight for ``settle`` consecutive ticks.

        Used to check the "if requests stop, the system eventually contains
        no message" property of Protocol PIF.
        """
        deadline = self.now + max_time
        quiet_since: int | None = None
        while self.now < deadline:
            progressed = self.scheduler.run_until(min(self.now + settle, deadline))
            if self.network.in_flight() == 0:
                if quiet_since is None:
                    quiet_since = self.now
                elif self.now - quiet_since >= settle:
                    return True
            else:
                quiet_since = None
            if progressed == 0 and self.now >= deadline:
                break
        return self.network.in_flight() == 0

    # -- configuration interface ---------------------------------------------------

    def scramble(self, seed: int | None = None, fill_channels: bool = True) -> None:
        """Drive the system into an arbitrary initial configuration.

        Convenience wrapper over :mod:`repro.sim.adversary`.
        """
        from repro.sim.adversary import scramble_system

        rng = random.Random(seed) if seed is not None else self.rng
        scramble_system(self, rng, fill_channels=fill_channels)

    def snapshot_states(self) -> dict[int, dict[str, dict[str, Any]]]:
        """State of every process (an *abstract configuration*, Def. 2)."""
        return {pid: host.snapshot() for pid, host in self.hosts.items()}

    def channel_contents(self) -> dict[tuple[int, int], tuple[TaggedMessage, ...]]:
        return {
            (c.src, c.dst): c.contents() for c in self.network.channels()
        }
