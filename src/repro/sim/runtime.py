"""The simulator runtime.

:class:`Simulator` ties together the scheduler, the network, and the
processes.  It implements the paper's asynchronous message-passing semantics:

* **Weakly fair activations** — every process is activated infinitely often
  (every ``activation_period`` ticks, with optional deterministic jitter);
  an activation atomically executes all enabled guarded actions.
* **Asynchronous, lossy, FIFO channels** — a sent message suffers a random
  latency; it can be lost by the loss model or by arriving at a full channel
  slot (Section 4 semantics); per-tag FIFO order is preserved.
* **Atomicity** — while a process is *busy* (executing a durational critical
  section, i.e. a long atomic action) neither activations nor message
  dispatches happen at it.  An arriving message leaves its channel slot at
  the scheduled delivery time and waits *at the host*; the dispatch retries
  when the process frees up.  The channel's capacity bound therefore
  applies to messages *in the channel* (sender-owned accounting — the
  invariant that lets a shard admit without asking the receiver's shard);
  quiescence checks count parked arrivals via :meth:`Simulator.in_transit`.

Determinism (see :mod:`repro.sim.determinism`): every random draw comes from
a per-entity stream (per-process activation jitter, per-directed-channel
loss/corruption/latency) and every engine event carries a canonical
content-derived scheduler key.  Runs are therefore reproducible for a given
seed *and* independent of how events of unrelated entities interleave — the
property the sharded engine (:mod:`repro.sim.sharded`) relies on to be
bit-identical with serial execution.

Two driving styles:

* ``auto=True`` (default): activations are self-scheduling; :meth:`run`
  advances time until a horizon or a predicate holds.
* ``auto=False``: *manual mode* for the Theorem 1 replay engine — the caller
  explicitly activates processes and delivers specific messages.

Sharding hooks: ``hosts_for`` restricts which pids this engine *hosts* (the
full topology stays visible for channel numbering).  Sends to a non-hosted
pid release their channel slot at the scheduled delivery time and append to
:attr:`cross_outbox`; the sharded driver exchanges outboxes at time-window
barriers and re-injects them via :meth:`schedule_remote_arrival`.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.sim.channel import (
    BoundedChannel,
    ChannelBase,
    LossModel,
    NoLoss,
    TaggedMessage,
    UnboundedChannel,
)
from repro.sim.determinism import (
    activation_key,
    bound_randint,
    delivery_key,
    derive_seed,
)
from repro.sim.network import Network
from repro.sim.process import ProcessHost
from repro.sim.scheduler import Scheduler
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import EventKind, Trace

__all__ = ["Simulator", "CrossShardSend"]

BuildFn = Callable[[ProcessHost], None]

#: One cross-shard message: (src, dst, msg, delivery_time, channel entry seq).
CrossShardSend = tuple[int, int, TaggedMessage, int, int]


class Simulator:
    """A deterministic, seeded message-passing system simulator.

    ``topology`` selects the communication graph: a
    :class:`~repro.sim.topology.Topology` instance, a spec string accepted by
    :func:`~repro.sim.topology.topology_from_spec` (``"ring"``,
    ``"gnp:0.3"``, ...), or None for the paper's complete graph.  When a
    Topology instance is given its pids define the system and ``pids`` may
    be omitted (or must agree).
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        build: BuildFn = lambda host: None,
        *,
        topology: Topology | str | None = None,
        seed: int = 0,
        capacity: int = 1,
        unbounded: bool = False,
        latency: tuple[int, int] = (1, 3),
        loss: LossModel | None = None,
        corruption: "object | None" = None,
        activation_period: int = 2,
        activation_jitter: int = 1,
        auto: bool = True,
        trace_network: bool = False,
        hosts_for: Sequence[int] | None = None,
    ) -> None:
        if isinstance(pids, int):
            pids = list(range(1, pids + 1))
        if isinstance(topology, str):
            if pids is None:
                raise SimulationError(
                    f"topology spec {topology!r} needs an explicit process count"
                )
            topology = topology_from_spec(topology, len(pids), seed=seed)
        if topology is None:
            if pids is None:
                raise SimulationError("need a process count, pid list, or topology")
        elif pids is not None and tuple(sorted(pids)) != topology.pids:
            raise SimulationError(
                f"pids {sorted(pids)} do not match topology pids {topology.pids}"
            )
        lo, hi = latency
        if not 1 <= lo <= hi:
            raise SimulationError(f"latency bounds must satisfy 1 <= lo <= hi, got {latency}")
        if activation_period < 1:
            raise SimulationError(f"activation_period must be >= 1, got {activation_period}")

        self.seed = seed
        #: General-purpose stream for callers (tests, ad-hoc experiments).
        #: The engine itself never draws from it — every engine draw comes
        #: from a per-entity derived stream so shard composition is exact.
        self.rng = random.Random(seed)
        self.scheduler = self._make_scheduler()
        self.trace = self._make_trace()
        self.stats = SimStats()
        self.loss: LossModel = loss if loss is not None else NoLoss()
        # NoLoss draws no randomness, so skipping the call outright in
        # transmit() is behaviour-preserving and saves a method call per send.
        self._lossless = type(self.loss) is NoLoss
        #: Optional in-flight corruption model (see repro.sim.faults); must
        #: expose ``maybe_corrupt(rng, msg) -> msg``.
        self.corruption = corruption
        self.latency = (lo, hi)
        self.activation_period = activation_period
        self.activation_jitter = activation_jitter
        self.auto = auto
        self.trace_network = trace_network
        self.capacity = capacity
        self.unbounded = unbounded

        graph = topology if topology is not None else pids
        assert graph is not None
        if unbounded:
            self.network = Network(graph, UnboundedChannel)
        else:
            # Channels are lazy, so the factory may consult self.topology
            # (set just below) for per-edge capacities at creation time.
            self.network = Network(graph, self._make_channel)
        self.topology: Topology = self.network.topology
        # Per-edge latency resolution (Weighted topologies).  None on
        # unweighted topologies, so the send hot path keeps its straight
        # self.latency read — and its exact draw sequence.
        self._edge_latency = (
            self.topology.edge_latency if self.topology.is_weighted else None
        )

        # Per-directed-channel streams (loss, corruption, latency): created
        # lazily alongside the lazy channel map.  _chan_fast caches, per
        # channel, everything the send hot path needs — the channel object,
        # its stream, a precompiled latency draw (bound_randint: identical
        # values and stream consumption to randint(lo, hi)), the
        # delivery-key base (delivery_key(dst, src, 0)) and whether the
        # destination is hosted here — one dict hit per send instead of
        # channel lookup + stream lookup + method lookup + key packing.
        self._chan_rngs: dict[tuple[int, int], random.Random] = {}
        self._chan_fast: dict[
            tuple[int, int],
            tuple[ChannelBase, random.Random, Callable[..., int], int, bool],
        ] = {}

        #: Observation hooks (recording, instrumentation). ``delivery_hooks``
        #: fire just before a message is dispatched to the receiving process;
        #: ``activation_hooks`` fire just before a process activation runs.
        self.delivery_hooks: list[Callable[[int, int, TaggedMessage], None]] = []
        self.activation_hooks: list[Callable[[int], None]] = []

        #: Cross-shard sends awaiting exchange at the next window barrier
        #: (only ever populated when ``hosts_for`` excludes some pids).
        self.cross_outbox: list[CrossShardSend] = []
        #: Messages that left their channel slot but whose dispatch is
        #: parked at a busy receiver (counted so quiescence checks see them).
        self.parked_dispatches = 0

        if hosts_for is None:
            hosted: tuple[int, ...] = self.network.pids
        else:
            hosted = tuple(sorted(hosts_for))
            unknown = set(hosted) - set(self.network.pids)
            if unknown:
                raise SimulationError(f"hosts_for mentions unknown pids {sorted(unknown)}")

        self.hosts: dict[int, ProcessHost] = {}
        for pid in hosted:
            host = ProcessHost(self, pid)
            build(host)
            self.hosts[pid] = host

        if auto:
            # Stagger first activations deterministically so processes are
            # not lockstep-synchronized (asynchrony).  Offsets and jitters
            # come from each process's own stream, so they are identical
            # whether the process is simulated serially or inside a shard.
            for pid in hosted:
                act_rng = random.Random(derive_seed(seed, "act", pid))
                offset = act_rng.randrange(activation_period) if activation_period > 1 else 0
                self.scheduler.post_at(
                    offset, self._make_activation(pid, act_rng), activation_key(pid)
                )

    # -- engine extension points ---------------------------------------------

    def _make_scheduler(self) -> Scheduler:
        """The event queue; subclasses substitute driveable clocks
        (:mod:`repro.net.clock`) with the same ordering discipline."""
        return Scheduler()

    def _make_trace(self) -> Trace:
        """The event log; subclasses substitute observer-notifying traces
        (online spec monitors, :mod:`repro.net.monitors`)."""
        return Trace()

    # -- basic accessors -----------------------------------------------------

    @property
    def now(self) -> int:
        return self.scheduler._now

    @property
    def pids(self) -> tuple[int, ...]:
        return self.network.pids

    def host(self, pid: int) -> ProcessHost:
        try:
            return self.hosts[pid]
        except KeyError:
            raise SimulationError(f"unknown process id {pid}") from None

    def layer(self, pid: int, tag: str):
        return self.host(pid).layer(tag)

    def chan_rng(self, src: int, dst: int) -> random.Random:
        """The random stream owned by the directed channel ``src -> dst``."""
        rng = self._chan_rngs.get((src, dst))
        if rng is None:
            rng = random.Random(derive_seed(self.seed, "chan", src, dst))
            self._chan_rngs[(src, dst)] = rng
        return rng

    def _make_channel(self, src: int, dst: int) -> ChannelBase:
        """Bounded channel sized by the edge's own capacity when the
        topology carries one (Weighted), else the global capacity."""
        cap = self.topology.edge_capacity(src, dst)
        return BoundedChannel(
            src, dst, capacity=self.capacity if cap is None else cap
        )

    def latency_for(self, src: int, dst: int) -> tuple[int, int]:
        """The latency bounds governing the channel ``src -> dst``: the
        edge's own (Weighted topologies) or the engine's global bounds."""
        if self._edge_latency is not None:
            bounds = self._edge_latency(src, dst)
            if bounds is not None:
                return bounds
        return self.latency

    # -- message transmission --------------------------------------------------

    def _make_chan_fast(
        self, src: int, dst: int
    ) -> tuple[ChannelBase, random.Random, Callable[..., int], int, bool]:
        channel = self.network.channel(src, dst)
        rng = self.chan_rng(src, dst)
        lo, hi = self.latency_for(src, dst)
        fast = (
            channel,
            rng,
            bound_randint(rng, lo, hi),
            delivery_key(dst, src, 0),
            dst in self.hosts,
        )
        self._chan_fast[(src, dst)] = fast
        return fast

    def transmit(self, src: int, dst: int, msg: TaggedMessage) -> bool:
        """Send ``msg`` from ``src`` to ``dst``; returns True if admitted."""
        stats = self.stats
        stats.sent += 1
        stats.sent_by_tag[msg.tag] += 1
        fast = self._chan_fast.get((src, dst))
        if fast is None:
            fast = self._make_chan_fast(src, dst)
        channel, rng, _draw, _key_base, _hosted = fast
        if self.trace_network:
            self.trace.emit(self.now, EventKind.SEND, src, dst=dst, tag=msg.tag)
        if self.corruption is not None:
            original = msg
            msg = self.corruption.maybe_corrupt(rng, msg)
            if msg is not original:
                stats.corrupted += 1
        if not self._lossless and self.loss.should_drop(rng, msg):
            stats.dropped_loss += 1
            if self.trace_network:
                self.trace.emit(self.now, EventKind.DROP_LOSS, src, dst=dst, tag=msg.tag)
            return False
        entry = channel.try_admit(msg, self.scheduler._now)
        if entry is None:
            stats.dropped_full += 1
            if self.trace_network:
                self.trace.emit(self.now, EventKind.DROP_FULL, src, dst=dst, tag=msg.tag)
            return False
        if self.auto:
            self._schedule_delivery(channel, entry)
        return True

    def draw_delivery_time(self, channel: ChannelBase, entry, randint) -> int:
        """Latency draw from the channel's stream + per-tag FIFO clamp.

        The single source of the delivery-time rule: the serial scheduling
        path and every transport of the async engine (:mod:`repro.net`)
        must go through here, so a change to the rule cannot desynchronize
        the engines.  The bounds are the channel's own — per-edge on
        :class:`~repro.sim.topology.Weighted` topologies, the engine's
        global pair otherwise.  ``randint`` is the channel stream's draw
        for exactly those bounds — either the stream's bound ``randint``
        method or its precompiled equivalent
        (:func:`~repro.sim.determinism.bound_randint`, cached in
        ``_chan_fast``, whose guard rejects mismatched bounds); both
        consume the stream identically.
        """
        edge_latency = self._edge_latency
        if edge_latency is None:
            lo, hi = self.latency
        else:
            lo, hi = edge_latency(channel.src, channel.dst) or self.latency
        proposed = self.scheduler._now + randint(lo, hi)
        entry.delivery_time = channel.fifo_delivery_time(entry.msg.tag, proposed)
        return entry.delivery_time

    def _schedule_delivery(self, channel: ChannelBase, entry) -> None:
        fast = self._chan_fast.get((channel.src, channel.dst))
        if fast is None:
            fast = self._make_chan_fast(channel.src, channel.dst)
        _channel, _rng, draw, key_base, hosted = fast
        self.draw_delivery_time(channel, entry, draw)
        # Key bases are seq-0 keys; entry seqs stay within the key's low
        # bits (see repro.sim.determinism), so addition == packing.
        key = key_base + entry.seq
        if hosted:
            self.scheduler.post_at(
                entry.delivery_time, partial(self._deliver, channel, entry), key
            )
        else:
            # Cross-shard send: this engine owns the channel's slot
            # accounting (the slot frees at the scheduled delivery time,
            # exactly as it would under serial execution); the message
            # itself is handed to the destination shard at the barrier.
            self.scheduler.post_at(
                entry.delivery_time, partial(self._release_slot, channel, entry), key
            )
            self.cross_outbox.append(
                (channel.src, channel.dst, entry.msg, entry.delivery_time, entry.seq)
            )

    def _release_slot(self, channel: ChannelBase, entry) -> None:
        if entry in channel._entries:
            channel.remove(entry)

    def _deliver(self, channel: ChannelBase, entry) -> None:
        if entry not in channel._entries:
            return  # channel was cleared/restored under us
        channel.remove(entry)
        self._dispatch_arrival(channel.src, channel.dst, entry.msg, entry.seq)

    def _dispatch_arrival(
        self, src: int, dst: int, msg: TaggedMessage, entry_seq: int, parked: bool = False
    ) -> None:
        host = self.hosts[dst]
        if host.busy_until > self.scheduler._now:  # host.busy, inlined
            # The receiver is inside a long atomic action; the message has
            # already left its channel slot and waits at the host.  The
            # dispatch retries — under the same canonical key, so arrival
            # order among deferred messages is preserved — when the process
            # frees up.
            if not parked:
                self.parked_dispatches += 1
            self.scheduler.post_at(
                host.busy_until,
                lambda: self._dispatch_arrival(src, dst, msg, entry_seq, True),
                delivery_key(dst, src, entry_seq),
            )
            return
        if parked:
            self.parked_dispatches -= 1
        stats = self.stats
        stats.delivered += 1
        stats.delivered_by_tag[msg.tag] += 1
        if self.trace_network:
            self.trace.emit(self.now, EventKind.DELIVER, dst, src=src, tag=msg.tag)
        hooks = self.delivery_hooks
        if hooks:
            for hook in hooks:
                hook(src, dst, msg)
        host.dispatch(src, msg)

    def schedule_remote_arrival(
        self, src: int, dst: int, msg: TaggedMessage, time: int, entry_seq: int
    ) -> None:
        """Schedule dispatch of a message admitted on a remote shard.

        The source shard computed ``time`` (and the channel entry seq) at
        send time from the channel's own stream, so scheduling it here
        reproduces exactly the delivery the serial engine would perform.
        """
        if dst not in self.hosts:
            raise SimulationError(f"remote arrival for non-hosted pid {dst}")
        self.scheduler.post_at(
            time,
            lambda: self._dispatch_arrival(src, dst, msg, entry_seq),
            delivery_key(dst, src, entry_seq),
        )

    def drain_outbox(self) -> list[CrossShardSend]:
        """Take (and clear) the pending cross-shard sends."""
        outbox = self.cross_outbox
        self.cross_outbox = []
        return outbox

    def inject(self, src: int, dst: int, msg: TaggedMessage, *, schedule: bool | None = None) -> None:
        """Adversarially place ``msg`` into the channel ``src -> dst``.

        Raises :class:`~repro.errors.ChannelError` when the channel is full
        for the message's tag — the capacity bound binds the adversary too.
        In auto mode the delivery is scheduled like a normal send unless
        ``schedule=False``.
        """
        channel = self.network.channel(src, dst)
        entry = channel.inject(msg, self.now)
        self.trace.emit(self.now, EventKind.INJECT, None, src=src, dst=dst, tag=msg.tag)
        if schedule is None:
            schedule = self.auto
        if schedule:
            self._schedule_delivery(channel, entry)

    # -- activations -----------------------------------------------------------

    def _make_activation(self, pid: int, act_rng: random.Random) -> Callable[[], None]:
        # Everything the self-rescheduling loop touches is bound locally:
        # activations fire every few ticks at every process forever, so this
        # closure is one of the two hottest paths in the engine.
        host = self.hosts[pid]
        stats = self.stats
        hooks = self.activation_hooks
        scheduler = self.scheduler
        post_in = scheduler.post_in
        period = self.activation_period
        jitter_max = self.activation_jitter
        key = activation_key(pid)
        activate = host.activate
        # Precompiled jitter draw: same values, same stream consumption as
        # randint(0, jitter_max) — see repro.sim.determinism.bound_randint.
        draw = bound_randint(act_rng, 0, jitter_max) if jitter_max > 0 else None

        if draw is None:
            def fire() -> None:
                # host.busy, inlined (property + attribute chain per tick).
                if host.busy_until <= scheduler._now:
                    stats.activations += 1
                    if hooks:
                        for hook in hooks:
                            hook(pid)
                    activate()
                post_in(period, fire, key)
        else:
            def fire() -> None:
                if host.busy_until <= scheduler._now:
                    stats.activations += 1
                    if hooks:
                        for hook in hooks:
                            hook(pid)
                    activate()
                post_in(period + draw(), fire, key)

        return fire

    def activate(self, pid: int) -> int:
        """Manually activate one process (manual mode / tests)."""
        host = self.host(pid)
        if host.busy:
            return 0
        self.stats.activations += 1
        for hook in self.activation_hooks:
            hook(pid)
        return host.activate()

    def step_deliver(
        self, src: int, dst: int, tag: str | None = None
    ) -> TaggedMessage | None:
        """Manually deliver the oldest in-flight message on ``src -> dst``.

        Optionally restricted to messages of a given tag.  Returns the
        delivered message, or None when nothing matched.  Used by the
        Theorem 1 replay engine and by fine-grained unit tests.
        """
        channel = self.network.channel(src, dst)
        for entry in channel.entries():
            if tag is None or entry.msg.tag == tag:
                channel.remove(entry)
                self.stats.record_delivery(entry.msg.tag)
                for hook in self.delivery_hooks:
                    hook(src, dst, entry.msg)
                self.hosts[dst].dispatch(src, entry.msg)
                return entry.msg
        return None

    # -- running -----------------------------------------------------------------

    def run(
        self,
        max_time: int,
        until: Callable[["Simulator"], bool] | None = None,
    ) -> bool:
        """Advance simulated time.

        Runs until ``until(self)`` holds (checked after every event) or the
        time horizon is hit.  Returns True iff the predicate was satisfied
        (always False when no predicate is given).
        """
        if until is None:
            self.scheduler.run_until(max_time)
            return False
        if until(self):
            return True
        satisfied = False

        def stop() -> bool:
            nonlocal satisfied
            satisfied = until(self)
            return satisfied

        self.scheduler.run_until(max_time, stop=stop)
        return satisfied

    def in_transit(self) -> int:
        """Messages not yet dispatched: in a channel slot or parked at a
        busy receiver (arrived, slot released, dispatch deferred)."""
        return self.network.in_flight() + self.parked_dispatches

    def run_quiet(self, max_time: int, settle: int = 50) -> bool:
        """Run until no message is in transit for ``settle`` consecutive ticks.

        Used to check the "if requests stop, the system eventually contains
        no message" property of Protocol PIF.  Counts messages parked at
        busy receivers, so a dispatch deferred past the quiet window cannot
        fake quiescence.
        """
        deadline = self.now + max_time
        quiet_since: int | None = None
        while self.now < deadline:
            progressed = self.scheduler.run_until(min(self.now + settle, deadline))
            if self.in_transit() == 0:
                if quiet_since is None:
                    quiet_since = self.now
                elif self.now - quiet_since >= settle:
                    return True
            else:
                quiet_since = None
            if progressed == 0 and self.now >= deadline:
                break
        return self.in_transit() == 0

    # -- configuration interface ---------------------------------------------------

    def scramble(self, seed: int | None = None, fill_channels: bool = True) -> None:
        """Drive the system into an arbitrary initial configuration.

        Convenience wrapper over :mod:`repro.sim.adversary`.
        """
        from repro.sim.adversary import scramble_system

        base = self.rng.getrandbits(64) if seed is None else seed
        scramble_system(self, base, fill_channels=fill_channels)

    def snapshot_states(self) -> dict[int, dict[str, dict[str, Any]]]:
        """State of every process (an *abstract configuration*, Def. 2)."""
        return {pid: host.snapshot() for pid, host in self.hosts.items()}

    def channel_contents(self) -> dict[tuple[int, int], tuple[TaggedMessage, ...]]:
        return {
            (c.src, c.dst): c.contents() for c in self.network.channels()
        }

    # -- observability -------------------------------------------------------------

    def collect_obs(self, metrics) -> None:
        """Fold this engine's passive counters into a metrics registry
        (:mod:`repro.obs`).  Called at most once per trial, strictly after
        the run — nothing here can perturb the deterministic draw paths.
        ``metrics`` is duck-typed (``MetricsRegistry`` or ``NullMetrics``)
        so the sim layer takes no dependency on the obs package.
        """
        scheduler = self.scheduler
        metrics.inc("scheduler.pops", scheduler.pops)
        metrics.inc("scheduler.compactions", scheduler.compactions)
        stats = self.stats
        metrics.inc("channel.sent", stats.sent)
        metrics.inc("channel.delivered", stats.delivered)
        metrics.inc("channel.dropped_loss", stats.dropped_loss)
        metrics.inc("channel.dropped_full", stats.dropped_full)
        metrics.inc("channel.corrupted", stats.corrupted)
        metrics.inc("process.activations", stats.activations)
        for channel in self.network.channels():
            for tag, high in channel.occupancy_high_water().items():
                metrics.gauge_max(f"channel.occupancy_high[{tag}]", high)
