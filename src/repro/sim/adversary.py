"""Adversaries realizing "any initial configuration".

Snap-stabilization quantifies over *all* initial configurations: arbitrary
values in every process variable and arbitrary (well-typed) messages in every
channel, up to the capacity bound.  :func:`scramble_system` implements that
adversary; :func:`figure1_configuration` builds the paper's Figure 1 worst
case for the two-process PIF handshake.

The scramble is *per-entity seeded*: every process and every directed channel
is rewritten from its own stream derived from the scramble seed (see
:mod:`repro.sim.determinism`).  The configuration a given entity receives is
therefore independent of how many other entities were scrambled before it —
which is what lets a shard worker hosting a subset of the processes
reproduce exactly its slice of the global arbitrary configuration.  Passing
a ``random.Random`` instead of an int seed keeps the historical API: one
64-bit draw from it becomes the base seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.determinism import derive_seed
from repro.sim.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runtime import Simulator

__all__ = [
    "scramble_system",
    "scramble_processes",
    "scramble_channels",
    "figure1_configuration",
]


def _base_seed(rng_or_seed: "random.Random | int") -> int:
    if isinstance(rng_or_seed, random.Random):
        return rng_or_seed.getrandbits(64)
    return int(rng_or_seed)


def scramble_processes(
    sim: "Simulator",
    rng_or_seed: "random.Random | int",
    *,
    emit_trace: bool = True,
) -> None:
    """Overwrite every variable of every hosted layer with arbitrary values."""
    base = _base_seed(rng_or_seed)
    for pid, host in sim.hosts.items():
        host.scramble(random.Random(derive_seed(base, "proc", pid)))
    if emit_trace:
        sim.trace.emit(sim.now, EventKind.SCRAMBLE, None, what="processes")


def scramble_channels(
    sim: "Simulator",
    rng_or_seed: "random.Random | int",
    fill_prob: float = 0.7,
    max_per_tag: int | None = None,
    *,
    emit_trace: bool = True,
) -> int:
    """Pre-load channels with arbitrary well-typed in-flight messages.

    For every ordered pair with a hosted sender and every protocol-instance
    tag, injects up to the channel's capacity for that tag (or
    ``max_per_tag``) garbage messages, each with probability ``fill_prob``.
    Returns the number injected.

    On unbounded channels ``max_per_tag`` defaults to 3 — an *arbitrary but
    finite* initial content, as the Section 3 model prescribes.
    """
    base = _base_seed(rng_or_seed)
    injected = 0
    for src, src_host in sim.hosts.items():
        for dst in sim.network.peers_of(src):
            channel = sim.network.channel(src, dst)
            rng = random.Random(derive_seed(base, "chanfill", src, dst))
            for layer in src_host.layers:
                cap = channel.capacity_for(layer.tag)
                budget = cap if cap is not None else (max_per_tag or 3)
                if max_per_tag is not None:
                    budget = min(budget, max_per_tag)
                for _ in range(budget):
                    if rng.random() >= fill_prob:
                        continue
                    if channel.is_full_for(layer.tag):
                        break
                    garbage = layer.garbage_message(rng)
                    if garbage is None:
                        break
                    sim.inject(src, dst, garbage)
                    injected += 1
    if emit_trace:
        sim.trace.emit(sim.now, EventKind.SCRAMBLE, None, what="channels", injected=injected)
    return injected


def scramble_system(
    sim: "Simulator",
    rng_or_seed: "random.Random | int",
    fill_channels: bool = True,
    fill_prob: float = 0.7,
    *,
    emit_trace: bool = True,
) -> int:
    """Arbitrary initial configuration: scramble states and channels.

    Returns the number of garbage messages injected into channels.
    """
    base = _base_seed(rng_or_seed)
    scramble_processes(sim, base, emit_trace=emit_trace)
    if fill_channels:
        return scramble_channels(sim, base, fill_prob=fill_prob, emit_trace=emit_trace)
    return 0


def figure1_configuration(sim: "Simulator", tag: str = "pif") -> tuple[int, int]:
    """Set up the paper's Figure 1 worst case on a two-process system.

    Processes ``p`` (the observer whose ``State_p[q]`` we watch) and ``q``:

    * the channel ``q -> p`` initially holds a garbage message echoing
      ``pState = 0`` — one spurious increment waiting to happen;
    * ``q``'s ``NeigState_q[p]`` is the stale value 1, and ``q`` is in the
      middle of its own (never-started) broadcast, so ``q``'s periodic sends
      will echo the stale 1 and, after one update, 2;
    * ``p`` is about to start a broadcast.

    From here ``State_p[q]`` can climb to 3 on garbage alone, but — as
    Lemma 4 proves — the 3 -> 4 step requires a genuine causal round trip.
    Returns ``(p, q)``.
    """
    from repro.core.messages import PifMessage
    from repro.core.pif import PifLayer

    if sim.network.n != 2:
        raise SimulationError("figure1_configuration requires exactly 2 processes")
    p, q = sim.pids
    pif_p = sim.layer(p, tag)
    pif_q = sim.layer(q, tag)
    if not isinstance(pif_p, PifLayer) or not isinstance(pif_q, PifLayer):
        raise SimulationError(f"layer {tag!r} is not a PifLayer")

    # q believes p's state is 1 (stale) and is mid-wave itself.
    from repro.types import RequestState

    pif_q.request = RequestState.IN
    pif_q.neig_state[p] = 1
    pif_q.state[p] = 0
    # In-flight garbage: an echo of pState = 0 travelling q -> p.
    garbage = PifMessage(
        tag=tag,
        broadcast=pif_q.b_mes,
        feedback=pif_q.f_mes.get(p),
        state=0,
        echo=0,
    )
    sim.inject(q, p, garbage)
    sim.trace.emit(sim.now, EventKind.SCRAMBLE, None, what="figure1", p=p, q=q)
    return p, q
