"""Communication channels.

The paper's model (Section 2): channels are FIFO, may lose messages, but are
fair (infinitely many sends imply infinitely many receipts), and — in the
constructive part (Section 4) — have a *known bounded capacity*; a message
sent into a full channel is lost.

Two channel families are provided:

* :class:`BoundedChannel` — the Section 4 model.  Capacity is accounted **per
  protocol-instance tag**: each concurrently running protocol instance (e.g.
  ME's embedded IDL wave and ME's own ASK/EXIT/EXITCS wave) owns ``capacity``
  slots per direction.  This realizes the paper's "extension to an arbitrary
  but known bounded message capacity is straightforward" remark while keeping
  the single-slot-per-instance invariant that Lemma 4's safety argument
  relies on.
* :class:`UnboundedChannel` — the Section 3 model used by the Theorem 1
  impossibility construction: any finite number of messages may sit in the
  channel initially.

A channel's capacity need not be uniform across the system: the network's
channel factories size each :class:`BoundedChannel` from the topology's
per-edge capacity map (:meth:`repro.sim.topology.Topology.edge_capacity`)
when one exists, so a :class:`~repro.sim.topology.Weighted` topology can
give individual links their own slot budgets.  Each channel still enforces
one fixed capacity for its lifetime — the per-edge map only chooses which.

Messages are duck-typed: anything with a string ``tag`` attribute.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.errors import ChannelError

__all__ = [
    "TaggedMessage",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "DropFirstK",
    "ChannelBase",
    "BoundedChannel",
    "UnboundedChannel",
]


@runtime_checkable
class TaggedMessage(Protocol):
    """Anything that can travel through a channel."""

    tag: str


class LossModel(abc.ABC):
    """Decides, at send time, whether a message is lost in transit."""

    @abc.abstractmethod
    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        """Return True to lose the message."""

    def reset(self) -> None:
        """Forget any internal state (between experiment repetitions)."""


class NoLoss(LossModel):
    """Reliable transit (capacity overflow can still lose messages)."""

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Each message is independently lost with probability ``p``.

    ``p`` must be < 1 so the paper's fairness assumption (infinitely many
    sends imply infinitely many receipts) holds almost surely.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 <= p < 1.0:
            raise ChannelError(f"loss probability must be in [0, 1), got {p}")
        self.p = p

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        return rng.random() < self.p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliLoss({self.p})"


class DropFirstK(LossModel):
    """Adversarially lose the first ``k`` messages of each tag.

    Useful in tests: the protocols must survive any finite prefix of losses.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ChannelError(f"k must be >= 0, got {k}")
        self.k = k
        self._seen: dict[str, int] = {}

    def should_drop(self, rng: random.Random, msg: TaggedMessage) -> bool:
        count = self._seen.get(msg.tag, 0)
        self._seen[msg.tag] = count + 1
        return count < self.k

    def reset(self) -> None:
        self._seen.clear()


class _Entry:
    """A message sitting in a channel.

    Identity semantics (no ``__eq__``): two entries are the same only if
    they are the same in-flight occurrence — equal payloads admitted twice
    must stay distinguishable for removal and membership tests.  A plain
    ``__slots__`` class, not a dataclass: one entry is allocated per
    admitted message, and the dataclass-generated ``__init__`` showed up
    in trial profiles.
    """

    __slots__ = ("msg", "enqueued_at", "delivery_time", "seq")

    def __init__(
        self,
        msg: TaggedMessage,
        enqueued_at: int,
        delivery_time: int | None = None,
        seq: int = 0,
    ) -> None:
        self.msg = msg
        self.enqueued_at = enqueued_at
        #: None until the network schedules it.
        self.delivery_time = delivery_time
        #: Admission sequence number on this channel (canonical delivery
        #: rank — computable identically on both sides of a shard boundary).
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_Entry(msg={self.msg!r}, enqueued_at={self.enqueued_at}, "
            f"delivery_time={self.delivery_time}, seq={self.seq})"
        )


class ChannelBase(abc.ABC):
    """A unidirectional FIFO channel from ``src`` to ``dst``."""

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self._entries: list[_Entry] = []
        # Monotone per-tag delivery clock: enforces FIFO-per-tag even with
        # jittered latencies and capacity > 1.
        self._last_delivery: dict[str, int] = {}
        # Monotone admission counter (see _Entry.seq).
        self._admit_seq = 0
        # Per-tag in-flight counters, maintained on admit/remove/clear:
        # occupancy checks run on every send, and counting entries by scan
        # was the single hottest line of the trial profile.
        self._occupancy: dict[str, int] = {}
        # Per-tag occupancy high-water marks since construction (repro.obs).
        # Maintained passively on admit: one dict probe per admitted
        # message, harvested once per trial by Simulator.collect_obs.
        self._occ_high: dict[str, int] = {}

    # -- capacity ---------------------------------------------------------

    @abc.abstractmethod
    def capacity_for(self, tag: str) -> int | None:
        """Slot budget for ``tag`` (None means unbounded)."""

    def occupancy(self, tag: str) -> int:
        """Number of in-flight messages with the given tag."""
        return self._occupancy.get(tag, 0)

    def occupancy_high_water(self) -> dict[str, int]:
        """Per-tag peak occupancy observed over the channel's lifetime."""
        return dict(self._occ_high)

    def is_full_for(self, tag: str) -> bool:
        cap = self.capacity_for(tag)
        return cap is not None and self._occupancy.get(tag, 0) >= cap

    # -- admission / removal ---------------------------------------------

    def try_admit(self, msg: TaggedMessage, now: int) -> _Entry | None:
        """Admit ``msg`` unless the channel is full for its tag.

        Returns the channel entry on success, None if the message is lost
        because the channel is full (the Section 4 semantics).
        """
        tag = msg.tag
        occ = self._occupancy.get(tag, 0)
        cap = self.capacity_for(tag)
        if cap is not None and occ >= cap:
            return None
        occ += 1
        self._occupancy[tag] = occ
        if occ > self._occ_high.get(tag, 0):
            self._occ_high[tag] = occ
        self._admit_seq += 1
        entry = _Entry(msg, now, None, self._admit_seq)
        self._entries.append(entry)
        return entry

    def inject(self, msg: TaggedMessage, now: int = 0) -> _Entry:
        """Adversarially place a message into the channel.

        Unlike :meth:`try_admit`, refuses (raises) rather than silently
        dropping when the channel is full — the adversary must respect the
        capacity bound, which is exactly what makes Theorem 1's construction
        fail on bounded channels.
        """
        entry = self.try_admit(msg, now)
        if entry is None:
            raise ChannelError(
                f"channel {self.src}->{self.dst} full for tag {msg.tag!r}: "
                f"cannot inject {msg!r}"
            )
        return entry

    def fifo_delivery_time(self, tag: str, proposed: int) -> int:
        """Clamp a proposed delivery time to keep per-tag FIFO order."""
        floor = self._last_delivery.get(tag, -1) + 1
        time = max(proposed, floor)
        self._last_delivery[tag] = time
        return time

    def remove(self, entry: _Entry) -> None:
        """Take a message out of the channel (on delivery)."""
        try:
            self._entries.remove(entry)
        except ValueError:
            raise ChannelError(
                f"entry {entry!r} not present in channel {self.src}->{self.dst}"
            ) from None
        self._occupancy[entry.msg.tag] -= 1

    # -- inspection --------------------------------------------------------

    def contents(self) -> tuple[TaggedMessage, ...]:
        """The in-flight messages, in FIFO order."""
        return tuple(e.msg for e in self._entries)

    def entries(self) -> tuple[_Entry, ...]:
        return tuple(self._entries)

    def clear(self) -> list[TaggedMessage]:
        """Drop everything in the channel (adversary/reset helper)."""
        dropped = [e.msg for e in self._entries]
        self._entries.clear()
        self._occupancy.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.src}->{self.dst}, "
            f"{len(self._entries)} in flight)"
        )


class BoundedChannel(ChannelBase):
    """Known bounded capacity, accounted per protocol-instance tag."""

    def __init__(self, src: int, dst: int, capacity: int = 1) -> None:
        if capacity < 1:
            raise ChannelError(f"capacity must be >= 1, got {capacity}")
        super().__init__(src, dst)
        self.capacity = capacity

    def capacity_for(self, tag: str) -> int | None:
        return self.capacity


class UnboundedChannel(ChannelBase):
    """Finite but unbounded capacity (the Theorem 1 setting)."""

    def capacity_for(self, tag: str) -> int | None:
        return None


def total_in_flight(channels: Iterable[ChannelBase]) -> int:
    """Total number of messages in flight over the given channels."""
    return sum(len(c) for c in channels)
