"""Topology-driven network: channels plus local channel numbering.

Historically this module hardcoded the paper's fully-connected system
(Section 2: every process numbers its incident channels ``1 .. n-1``).  It
is now driven by a :class:`~repro.sim.topology.Topology`: :class:`Network`
owns one unidirectional channel per *adjacent* ordered pair and exposes the
local numbering maps the protocols consume (ME's ``Value`` variable ranges
over local channel numbers ``1 .. deg(p)``).

Channels are materialized lazily on first use — a wave touching only one
neighbourhood allocates only those channels, which keeps large-n simulator
construction O(n) instead of O(n^2).  Passing a plain pid sequence keeps the
historical behaviour (a :class:`~repro.sim.topology.Complete` topology).

The default (and :meth:`Network.bounded`) channel factories size each
channel from the topology's per-edge capacity map
(:meth:`~repro.sim.topology.Topology.edge_capacity`) when one exists,
falling back to the uniform capacity otherwise — so a
:class:`~repro.sim.topology.Weighted` topology can give individual links
their own slot budgets without touching the factory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.channel import BoundedChannel, ChannelBase, UnboundedChannel
from repro.sim.topology import Complete, Topology

__all__ = ["Network"]


def _bounded_factory(
    topology: Topology, capacity: int
) -> Callable[[int, int], ChannelBase]:
    """Bounded channels sized per edge (weighted maps win over the uniform
    capacity).  ``edge_capacity`` is None on unweighted edges, so plain
    topologies get exactly the uniform-capacity channels they always had."""
    def factory(src: int, dst: int) -> ChannelBase:
        return BoundedChannel(
            src, dst, capacity=topology.edge_capacity(src, dst) or capacity
        )

    return factory


class Network:
    """Channels and channel numbering over a pluggable topology."""

    def __init__(
        self,
        topology: Topology | Sequence[int],
        channel_factory: Callable[[int, int], ChannelBase] | None = None,
    ) -> None:
        if not isinstance(topology, Topology):
            topology = Complete(topology)
        self.topology: Topology = topology
        self.pids: tuple[int, ...] = topology.pids
        if channel_factory is None:
            channel_factory = _bounded_factory(topology, 1)
        self._channel_factory = channel_factory
        self._channels: dict[tuple[int, int], ChannelBase] = {}

    # -- factories ---------------------------------------------------------

    @classmethod
    def bounded(
        cls, topology: Topology | Sequence[int], capacity: int = 1
    ) -> "Network":
        if not isinstance(topology, Topology):
            topology = Complete(topology)
        return cls(topology, _bounded_factory(topology, capacity))

    @classmethod
    def unbounded(cls, topology: Topology | Sequence[int]) -> "Network":
        return cls(topology, UnboundedChannel)

    # -- topology ----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.pids)

    def peers_of(self, pid: int) -> tuple[int, ...]:
        """Neighbour ids, in local channel-number order."""
        return self.topology.neighbors(pid)

    def degree(self, pid: int) -> int:
        return self.topology.degree(pid)

    def chan_num(self, pid: int, peer: int) -> int:
        """The local channel number (``1..deg(pid)``) of ``peer`` at ``pid``."""
        return self.topology.chan_num(pid, peer)

    def peer_by_num(self, pid: int, num: int) -> int:
        """Inverse of :meth:`chan_num`."""
        return self.topology.peer_by_num(pid, num)

    # -- channels ----------------------------------------------------------

    def channel(self, src: int, dst: int) -> ChannelBase:
        """The unidirectional channel ``src -> dst`` (created on first use)."""
        channel = self._channels.get((src, dst))
        if channel is None:
            if not self.topology.adjacent(src, dst):
                raise SimulationError(f"no channel {src}->{dst}")
            channel = self._channel_factory(src, dst)
            self._channels[(src, dst)] = channel
        return channel

    def channels(self) -> Iterable[ChannelBase]:
        """Every channel materialized so far (others are empty by definition)."""
        return self._channels.values()

    def channels_of(self, pid: int) -> list[ChannelBase]:
        """Every channel from or to ``pid`` (Property 1 talks about these)."""
        result = []
        for q in self.topology.neighbors(pid):
            result.append(self.channel(pid, q))
        for q in self.topology.neighbors(pid):
            result.append(self.channel(q, pid))
        return result

    def in_flight(self) -> int:
        """Total messages currently in transit anywhere."""
        return sum(len(c) for c in self._channels.values())

    def clear_channels(self) -> int:
        """Empty every channel; returns the number of dropped messages."""
        return sum(len(c.clear()) for c in self._channels.values())
