"""Fully-connected network topology with local channel numbering.

The paper assumes a fully-connected topology where every process numbers its
incident channels ``1 .. n-1`` (Section 2).  :class:`Network` owns one
unidirectional channel per ordered process pair and provides the local
numbering maps used by the protocols (ME's ``Value`` variable ranges over
local channel numbers).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.channel import BoundedChannel, ChannelBase, UnboundedChannel

__all__ = ["Network"]


class Network:
    """Channels and channel numbering for a fully-connected system."""

    def __init__(
        self,
        pids: Sequence[int],
        channel_factory: Callable[[int, int], ChannelBase] | None = None,
    ) -> None:
        if len(pids) < 2:
            raise SimulationError(f"need at least 2 processes, got {len(pids)}")
        if len(set(pids)) != len(pids):
            raise SimulationError(f"duplicate process ids in {pids!r}")
        self.pids: tuple[int, ...] = tuple(sorted(pids))
        if channel_factory is None:
            channel_factory = lambda s, d: BoundedChannel(s, d, capacity=1)
        self._channels: dict[tuple[int, int], ChannelBase] = {}
        for src in self.pids:
            for dst in self.pids:
                if src != dst:
                    self._channels[(src, dst)] = channel_factory(src, dst)
        # Local channel numbering: process p numbers its peers 1..n-1 in
        # ascending id order.
        self._peers: dict[int, tuple[int, ...]] = {
            p: tuple(q for q in self.pids if q != p) for p in self.pids
        }
        self._chan_num: dict[int, dict[int, int]] = {
            p: {q: i + 1 for i, q in enumerate(self._peers[p])} for p in self.pids
        }

    # -- factories ---------------------------------------------------------

    @classmethod
    def bounded(cls, pids: Sequence[int], capacity: int = 1) -> "Network":
        return cls(pids, lambda s, d: BoundedChannel(s, d, capacity=capacity))

    @classmethod
    def unbounded(cls, pids: Sequence[int]) -> "Network":
        return cls(pids, UnboundedChannel)

    # -- topology ----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.pids)

    def peers_of(self, pid: int) -> tuple[int, ...]:
        """All other process ids, in local channel-number order."""
        self._require(pid)
        return self._peers[pid]

    def chan_num(self, pid: int, peer: int) -> int:
        """The local channel number (1..n-1) of ``peer`` at ``pid``."""
        self._require(pid)
        try:
            return self._chan_num[pid][peer]
        except KeyError:
            raise SimulationError(f"{peer} is not a peer of {pid}") from None

    def peer_by_num(self, pid: int, num: int) -> int:
        """Inverse of :meth:`chan_num`."""
        peers = self.peers_of(pid)
        if not 1 <= num <= len(peers):
            raise SimulationError(
                f"channel number {num} out of range 1..{len(peers)} at {pid}"
            )
        return peers[num - 1]

    # -- channels ----------------------------------------------------------

    def channel(self, src: int, dst: int) -> ChannelBase:
        """The unidirectional channel from ``src`` to ``dst``."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise SimulationError(f"no channel {src}->{dst}") from None

    def channels(self) -> Iterable[ChannelBase]:
        return self._channels.values()

    def channels_of(self, pid: int) -> list[ChannelBase]:
        """Every channel from or to ``pid`` (Property 1 talks about these)."""
        self._require(pid)
        return [
            c for (s, d), c in self._channels.items() if s == pid or d == pid
        ]

    def in_flight(self) -> int:
        """Total messages currently in transit anywhere."""
        return sum(len(c) for c in self._channels.values())

    def clear_channels(self) -> int:
        """Empty every channel; returns the number of dropped messages."""
        return sum(len(c.clear()) for c in self._channels.values())

    def _require(self, pid: int) -> None:
        if pid not in self._chan_num:
            raise SimulationError(f"unknown process id {pid}")
