"""Configurations and projections (Definitions 2–4 of the paper).

A *configuration* is the product of the process states and the channel
contents.  An *abstract configuration* (Definition 2) drops the channels.
*State-projections* (Definition 3) restrict a configuration to one process;
*sequence-projections* (Definition 4) map a configuration sequence to the
sequence of one process's states.  These are exactly the notions Theorem 1's
construction manipulates, so they are first-class objects here.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.channel import TaggedMessage
    from repro.sim.runtime import Simulator

__all__ = [
    "AbstractConfiguration",
    "Configuration",
    "capture",
    "capture_abstract",
    "restore",
    "state_projection",
    "sequence_projection",
]

#: One process's local state: layer tag -> variable name -> value.
ProcessState = dict[str, dict[str, Any]]


@dataclass(frozen=True)
class AbstractConfiguration:
    """Definition 2: a configuration restricted to the process states."""

    states: dict[int, ProcessState]

    def projection(self, pid: int) -> ProcessState:
        """Definition 3: the state-projection on ``pid``."""
        try:
            return self.states[pid]
        except KeyError:
            raise ConfigurationError(f"no state for process {pid}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractConfiguration):
            return NotImplemented
        return self.states == other.states

    def __hash__(self) -> int:  # frozen dataclass with dict field
        return hash(repr(sorted(self.states)))


@dataclass(frozen=True)
class Configuration:
    """A full configuration: process states plus channel contents."""

    states: dict[int, ProcessState]
    channels: dict[tuple[int, int], tuple["TaggedMessage", ...]] = field(
        default_factory=dict
    )

    def abstract(self) -> AbstractConfiguration:
        """Definition 2: drop the channel contents."""
        return AbstractConfiguration(states=copy.deepcopy(self.states))

    def projection(self, pid: int) -> ProcessState:
        """Definition 3 on the process part."""
        try:
            return self.states[pid]
        except KeyError:
            raise ConfigurationError(f"no state for process {pid}") from None

    def messages_in(self, src: int, dst: int) -> tuple["TaggedMessage", ...]:
        return self.channels.get((src, dst), ())

    def total_in_flight(self) -> int:
        return sum(len(msgs) for msgs in self.channels.values())


def capture(sim: "Simulator") -> Configuration:
    """Snapshot the simulator's global state as a :class:`Configuration`."""
    return Configuration(
        states=copy.deepcopy(sim.snapshot_states()),
        channels=sim.channel_contents(),
    )


def capture_abstract(sim: "Simulator") -> AbstractConfiguration:
    """Snapshot only the process states (Definition 2)."""
    return AbstractConfiguration(states=copy.deepcopy(sim.snapshot_states()))


def restore(sim: "Simulator", config: Configuration) -> None:
    """Force the simulator into ``config``.

    Process states are restored layer by layer; channels are cleared and
    re-populated with the configuration's messages (deliveries are scheduled
    in auto mode).  Capacity bounds are enforced: restoring a configuration
    whose channels overflow a bounded channel raises, mirroring the paper's
    observation that such configurations simply do not exist in the
    bounded-capacity model.
    """
    for pid, state in config.states.items():
        sim.host(pid).restore(copy.deepcopy(state))
    sim.network.clear_channels()
    for (src, dst), msgs in config.channels.items():
        for msg in msgs:
            sim.inject(src, dst, msg)


def state_projection(config: Configuration | AbstractConfiguration, pid: int) -> ProcessState:
    """Definition 3: φ_p(γ)."""
    return config.projection(pid)


def sequence_projection(
    configs: Sequence[Configuration | AbstractConfiguration], pid: int
) -> list[ProcessState]:
    """Definition 4: Φ_p(s) for a configuration sequence ``s``."""
    return [c.projection(pid) for c in configs]
