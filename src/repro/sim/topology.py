"""Pluggable communication topologies.

The paper (Section 2) assumes a *fully-connected* system where every process
numbers its incident channels ``1 .. n-1``.  This module generalizes that
assumption: a :class:`Topology` is an undirected connected graph over process
ids together with the *local channel numbering* every protocol in this repo
consumes (process ``p`` numbers its neighbours ``1 .. deg(p)`` in ascending
id order — on the complete graph this degenerates to the paper's numbering).

Provided families:

* :class:`Complete` — the paper's model (every pair adjacent);
* :class:`Ring` — a cycle in ascending id order;
* :class:`Star` — one hub adjacent to every leaf;
* :class:`Grid2D` — a rows × cols mesh (4-neighbourhood);
* :class:`RandomGnp` — an Erdős–Rényi G(n, p) draw, augmented with
  deterministic bridge edges when the draw is disconnected;
* :class:`Clustered` — complete clusters joined by bridge edges (the shape
  sharded deployments take);
* :class:`Weighted` — any of the above wrapped with per-edge ``(lo, hi)``
  latency bounds and per-edge channel capacities (directed or undirected
  maps), including the :meth:`Weighted.wan` preset: fast cluster-local
  links, slow cross-cluster bridges.

Protocol semantics on non-complete topologies: a PIF wave spans the
initiator's *neighbourhood*, IDL learns the ids of the *closed
neighbourhood*, and ME arbitrates mutual exclusion *per leader cluster*
(see :func:`arbitration_clusters`); on the complete graph all three collapse
to the paper's global guarantees.

Edge weights and the engines: the simulator resolves every channel's
latency bounds through :meth:`Topology.edge_latency` (falling back to its
global ``latency`` argument) and every channel's capacity through
:meth:`Topology.edge_capacity`.  Unweighted families return ``None`` for
every edge, so their runs — including every random draw — are byte-for-byte
what they were before edge weights existed.  The sharded engine reads the
weights through :meth:`repro.sim.partition.Partition.latency_floor` to
widen its synchronization window to the *cross-shard* latency floor.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SimulationError

__all__ = [
    "Topology",
    "Complete",
    "Ring",
    "Star",
    "Grid2D",
    "RandomGnp",
    "Clustered",
    "Weighted",
    "topology_from_spec",
    "arbitration_clusters",
    "TOPOLOGY_SPECS",
]


def _as_pids(pids_or_n: Sequence[int] | int) -> tuple[int, ...]:
    if isinstance(pids_or_n, int):
        pids: Sequence[int] = range(1, pids_or_n + 1)
    else:
        pids = pids_or_n
    result = tuple(sorted(pids))
    if len(result) < 2:
        raise SimulationError(f"need at least 2 processes, got {len(result)}")
    if len(set(result)) != len(result):
        raise SimulationError(f"duplicate process ids in {list(pids)!r}")
    return result


class Topology(abc.ABC):
    """An undirected connected graph plus local channel numbering."""

    #: Short family name, e.g. ``"ring"``; set by subclasses.
    kind: str = "topology"

    def __init__(self, pids_or_n: Sequence[int] | int) -> None:
        self.pids: tuple[int, ...] = _as_pids(pids_or_n)
        direct = self._direct_neighbors(self.pids)
        if direct is not None:
            #: Neighbours in ascending id order — the local channel numbering
            #: maps neighbour -> 1..deg(p) along this order.
            self._neighbors: dict[int, tuple[int, ...]] = direct
        else:
            adjacency: dict[int, set[int]] = {p: set() for p in self.pids}
            for u, v in self._edges(self.pids):
                if u == v:
                    raise SimulationError(f"self-loop at process {u}")
                if u not in adjacency or v not in adjacency:
                    raise SimulationError(f"edge ({u}, {v}) mentions unknown process")
                adjacency[u].add(v)
                adjacency[v].add(u)
            self._neighbors = {p: tuple(sorted(adjacency[p])) for p in self.pids}
        # Local numbering maps are built lazily per process: protocols that
        # never read channel numbers (PIF) skip the O(n^2) construction.
        self._chan_num: dict[int, dict[int, int]] = {}
        self._check_connected()
        self._diameter: int | None = None
        self._is_complete: bool | None = None

    @abc.abstractmethod
    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        """Undirected edges of the topology (each pair listed once)."""

    def _direct_neighbors(
        self, pids: tuple[int, ...]
    ) -> dict[int, tuple[int, ...]] | None:
        """Optional fast path: the full neighbour map, already sorted.

        Subclasses with closed-form adjacency (the complete graph) override
        this to skip the generic per-edge accumulation.
        """
        return None

    # -- structure ---------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.pids)

    def neighbors(self, pid: int) -> tuple[int, ...]:
        """Neighbours of ``pid`` in local channel-number order."""
        self._require(pid)
        return self._neighbors[pid]

    def degree(self, pid: int) -> int:
        self._require(pid)
        return len(self._neighbors[pid])

    def adjacent(self, src: int, dst: int) -> bool:
        self._require(src)
        return dst in self._neighbors[src]

    def edges(self) -> list[tuple[int, int]]:
        """Every undirected edge once, as ``(min, max)`` pairs."""
        return [
            (p, q)
            for p in self.pids
            for q in self._neighbors[p]
            if p < q
        ]

    def directed_edges(self) -> list[tuple[int, int]]:
        """Every ordered adjacent pair (one unidirectional channel each)."""
        return [(p, q) for p in self.pids for q in self._neighbors[p]]

    # -- local channel numbering ------------------------------------------

    def _numbering(self, pid: int) -> dict[int, int]:
        numbering = self._chan_num.get(pid)
        if numbering is None:
            numbering = {q: i + 1 for i, q in enumerate(self._neighbors[pid])}
            self._chan_num[pid] = numbering
        return numbering

    def chan_num(self, pid: int, peer: int) -> int:
        """The local channel number (``1..deg(pid)``) of ``peer`` at ``pid``."""
        self._require(pid)
        try:
            return self._numbering(pid)[peer]
        except KeyError:
            raise SimulationError(f"{peer} is not a neighbour of {pid}") from None

    def peer_by_num(self, pid: int, num: int) -> int:
        """Inverse of :meth:`chan_num`."""
        neighbors = self.neighbors(pid)
        if not 1 <= num <= len(neighbors):
            raise SimulationError(
                f"channel number {num} out of range 1..{len(neighbors)} at {pid}"
            )
        return neighbors[num - 1]

    # -- edge weights ------------------------------------------------------

    def edge_latency(self, src: int, dst: int) -> tuple[int, int] | None:
        """Latency bounds ``(lo, hi)`` owned by the directed edge
        ``src -> dst``, or None to use the engine's global bounds.

        Unweighted families return None for **every** edge, so the engines
        keep drawing from their global bounds — behaviour (and random
        stream consumption) byte-for-byte unchanged.
        """
        return None

    def edge_capacity(self, src: int, dst: int) -> int | None:
        """Channel capacity owned by the directed edge ``src -> dst``, or
        None to use the engine's global capacity."""
        return None

    @property
    def is_weighted(self) -> bool:
        """True when some edge may carry its own latency/capacity weights.

        The engines consult this once at construction: a False here lets
        the send hot path skip per-edge resolution entirely.
        """
        return False

    def weight_stats(
        self,
        default_latency: tuple[int, int] = (1, 3),
        default_capacity: int = 1,
    ) -> dict[str, Any]:
        """Edge-weight summary over every directed edge (CLI tables).

        Defaults fill in for edges without explicit weights — pass the
        engine's global latency/capacity to see the bounds a run would
        actually use.
        """
        los: list[int] = []
        his: list[int] = []
        caps: list[int] = []
        weighted_edges = 0
        for src, dst in self.directed_edges():
            bounds = self.edge_latency(src, dst)
            cap = self.edge_capacity(src, dst)
            if bounds is not None or cap is not None:
                weighted_edges += 1
            lo, hi = bounds if bounds is not None else default_latency
            los.append(lo)
            his.append(hi)
            caps.append(cap if cap is not None else default_capacity)
        return {
            "directed_edges": len(los),
            "weighted_edges": weighted_edges,
            "latency_lo_min": min(los),
            "latency_lo_max": max(los),
            "latency_hi_min": min(his),
            "latency_hi_max": max(his),
            "capacity_min": min(caps),
            "capacity_max": max(caps),
        }

    # -- metadata ----------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        if self._is_complete is None:
            n = self.n
            self._is_complete = all(
                len(self._neighbors[p]) == n - 1 for p in self.pids
            )
        return self._is_complete

    @property
    def max_degree(self) -> int:
        return max(len(self._neighbors[p]) for p in self.pids)

    @property
    def min_degree(self) -> int:
        return min(len(self._neighbors[p]) for p in self.pids)

    def diameter(self) -> int:
        """Longest shortest path (hops); computed once, then cached."""
        if self._diameter is None:
            self._diameter = max(
                max(self._bfs_depths(p).values()) for p in self.pids
            )
        return self._diameter

    def describe(self) -> dict[str, Any]:
        """Flat metadata row (for tables and benchmark reports)."""
        return {
            "topology": self.name,
            "n": self.n,
            "edges": len(self.edges()),
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "diameter": self.diameter(),
            "complete": self.is_complete,
        }

    @property
    def name(self) -> str:
        return f"{self.kind}({self.n})"

    # -- helpers -----------------------------------------------------------

    def _bfs_depths(self, start: int) -> dict[int, int]:
        depths = {start: 0}
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for v in self._neighbors[u]:
                if v not in depths:
                    depths[v] = depths[u] + 1
                    frontier.append(v)
        return depths

    def _check_connected(self) -> None:
        reached = self._bfs_depths(self.pids[0])
        if len(reached) != self.n:
            missing = sorted(set(self.pids) - set(reached))
            raise SimulationError(
                f"{self.name} is not connected: {missing} unreachable from "
                f"{self.pids[0]}"
            )

    def _require(self, pid: int) -> None:
        if pid not in self._neighbors:
            raise SimulationError(f"unknown process id {pid}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class Complete(Topology):
    """The paper's fully-connected system."""

    kind = "complete"

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        return (
            (pids[i], pids[j])
            for i in range(len(pids))
            for j in range(i + 1, len(pids))
        )

    def _direct_neighbors(
        self, pids: tuple[int, ...]
    ) -> dict[int, tuple[int, ...]]:
        return {p: tuple(q for q in pids if q != p) for p in pids}


class Ring(Topology):
    """A cycle in ascending id order (a single edge when n = 2)."""

    kind = "ring"

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        n = len(pids)
        edges = [(pids[i], pids[(i + 1) % n]) for i in range(n)]
        if n == 2:
            edges = edges[:1]
        return edges


class Star(Topology):
    """One hub adjacent to every other process (default hub: lowest id)."""

    kind = "star"

    def __init__(self, pids_or_n: Sequence[int] | int, hub: int | None = None) -> None:
        self._hub_arg = hub
        super().__init__(pids_or_n)
        self.hub = self._hub_arg if self._hub_arg is not None else self.pids[0]

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        hub = self._hub_arg if self._hub_arg is not None else pids[0]
        if hub not in pids:
            raise SimulationError(f"hub {hub} is not a process id")
        return ((hub, q) for q in pids if q != hub)


class Grid2D(Topology):
    """A rows × cols mesh with 4-neighbourhood; pids assigned row-major."""

    kind = "grid"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1 or rows * cols < 2:
            raise SimulationError(f"grid needs >= 2 cells, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        super().__init__(rows * cols)

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        rows, cols = self.rows, self.cols
        for r in range(rows):
            for c in range(cols):
                pid = r * cols + c + 1
                if c + 1 < cols:
                    yield (pid, pid + 1)
                if r + 1 < rows:
                    yield (pid, pid + cols)

    @property
    def name(self) -> str:
        return f"grid({self.rows}x{self.cols})"


class RandomGnp(Topology):
    """Erdős–Rényi G(n, p), made connected by deterministic bridge edges.

    The draw is seeded and therefore reproducible.  When the sampled graph
    is disconnected, consecutive components (ordered by smallest member) are
    joined through their smallest members; :attr:`augmented_edges` counts the
    bridges added this way.
    """

    kind = "gnp"

    def __init__(self, pids_or_n: Sequence[int] | int, p: float = 0.35, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"edge probability must be in [0, 1], got {p}")
        self.p = p
        self.seed = seed
        self.augmented_edges = 0
        super().__init__(pids_or_n)

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        import random

        rng = random.Random(self.seed)
        edges = [
            (pids[i], pids[j])
            for i in range(len(pids))
            for j in range(i + 1, len(pids))
            if rng.random() < self.p
        ]
        # Union-find over the sampled edges; bridge disconnected components.
        parent = {p: p for p in pids}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in edges:
            parent[find(u)] = find(v)
        components: dict[int, list[int]] = {}
        for p in pids:
            components.setdefault(find(p), []).append(p)
        roots = sorted(components.values(), key=lambda c: c[0])
        for prev, nxt in zip(roots, roots[1:]):
            edges.append((prev[0], nxt[0]))
            parent[find(prev[0])] = find(nxt[0])
            self.augmented_edges += 1
        return edges

    @property
    def name(self) -> str:
        return f"gnp({self.n},p={self.p})"


class Clustered(Topology):
    """Complete clusters of equal size joined by a ring of bridge edges.

    Cluster ``i`` holds pids ``i*size+1 .. (i+1)*size`` and is internally
    fully connected; consecutive clusters are bridged through their lowest
    members (with a wrap-around bridge when there are >= 3 clusters).  This
    is the shape a sharded deployment takes: dense intra-shard traffic over
    thin inter-shard links.
    """

    kind = "clustered"

    def __init__(self, clusters: int, cluster_size: int) -> None:
        if clusters < 2 or cluster_size < 1 or clusters * cluster_size < 2:
            raise SimulationError(
                f"need >= 2 clusters of >= 1 process, got {clusters}x{cluster_size}"
            )
        self.clusters = clusters
        self.cluster_size = cluster_size
        super().__init__(clusters * cluster_size)

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        size = self.cluster_size
        members = [
            [k * size + m + 1 for m in range(size)] for k in range(self.clusters)
        ]
        for group in members:
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    yield (group[i], group[j])
        for k in range(self.clusters - 1):
            yield (members[k][0], members[k + 1][0])
        if self.clusters >= 3:
            yield (members[-1][0], members[0][0])

    def cluster_of(self, pid: int) -> int:
        self._require(pid)
        return (pid - 1) // self.cluster_size

    @property
    def name(self) -> str:
        return f"clustered({self.clusters}x{self.cluster_size})"


class Weighted(Topology):
    """Per-edge latency/capacity weights layered over a base topology.

    ``latency`` maps edges to ``(lo, hi)`` latency bounds, ``capacity``
    maps edges to channel capacities; edges absent from a map fall back to
    the engine's global setting.  Keys are ``(u, v)`` pid pairs; with
    ``directed=False`` (the default) each key weighs both directions of the
    edge, with ``directed=True`` keys name one unidirectional channel each
    (an asymmetric link is two entries).

    The graph itself — adjacency, channel numbering, diameter — is exactly
    the base topology's; only the weight lookups differ.  Per-channel
    random streams are keyed by ``(src, dst)``, not by the bounds, so a
    weighted run stays bit-identical across the serial, sharded and async
    engines (each channel draws from its own stream within its own
    bounds).
    """

    kind = "weighted"

    def __init__(
        self,
        base: Topology,
        *,
        latency: Mapping[tuple[int, int], tuple[int, int]] | None = None,
        capacity: Mapping[tuple[int, int], int] | None = None,
        directed: bool = False,
    ) -> None:
        if isinstance(base, Weighted):
            raise SimulationError("cannot wrap a Weighted topology again")
        self.base = base
        self.directed = directed
        self._latency = self._normalize(base, latency, directed)
        for edge, bounds in self._latency.items():
            try:
                lo, hi = bounds
            except (TypeError, ValueError):
                raise SimulationError(
                    f"edge {edge} latency must be a (lo, hi) pair, got {bounds!r}"
                ) from None
            if not 1 <= lo <= hi:
                raise SimulationError(
                    f"edge {edge} latency bounds must satisfy 1 <= lo <= hi, "
                    f"got {bounds}"
                )
        self._capacity = self._normalize(base, capacity, directed)
        for edge, cap in self._capacity.items():
            if not isinstance(cap, int) or cap < 1:
                raise SimulationError(
                    f"edge {edge} capacity must be an int >= 1, got {cap!r}"
                )
        super().__init__(base.pids)

    @staticmethod
    def _normalize(
        base: Topology, mapping: Mapping[tuple[int, int], Any] | None, directed: bool
    ) -> dict[tuple[int, int], Any]:
        """Expand a weight map to directed-edge keys, validating adjacency."""
        normalized: dict[tuple[int, int], Any] = {}
        if mapping is None:
            return normalized
        for (u, v), value in mapping.items():
            if not base.adjacent(u, v):
                raise SimulationError(
                    f"weight map names ({u}, {v}), not an edge of {base.name}"
                )
            normalized[(u, v)] = value
            if not directed:
                normalized[(v, u)] = value
        return normalized

    @classmethod
    def wan(
        cls,
        base: Topology,
        *,
        local: tuple[int, int] = (1, 3),
        remote: tuple[int, int] = (16, 32),
    ) -> "Weighted":
        """The WAN preset: fast intra-cluster links, slow cross-cluster ones.

        Every edge inside a cluster gets the ``local`` bounds, every edge
        between clusters the ``remote`` bounds (defaults model ~1-3 tick
        LAN hops vs ~16-32 tick WAN hops).  Clusters are the base's own
        (:class:`Clustered`) or its arbitration clusters otherwise.  The
        remote floor is what the sharded engine's cross-shard lookahead
        picks up on cluster-aligned partitions.
        """
        if isinstance(base, Clustered):
            group = {p: base.cluster_of(p) for p in base.pids}
        else:
            clusters = arbitration_clusters(base)
            group = {}
            for index, leader in enumerate(sorted(clusters)):
                for member in clusters[leader]:
                    group[member] = index
        latency = {
            (u, v): (local if group[u] == group[v] else remote)
            for u, v in base.edges()
        }
        weighted = cls(base, latency=latency)
        weighted.kind = "wan"
        weighted.local_latency = tuple(local)
        weighted.remote_latency = tuple(remote)
        return weighted

    def _edges(self, pids: tuple[int, ...]) -> Iterable[tuple[int, int]]:
        return self.base.edges()

    def edge_latency(self, src: int, dst: int) -> tuple[int, int] | None:
        return self._latency.get((src, dst))

    def edge_capacity(self, src: int, dst: int) -> int | None:
        return self._capacity.get((src, dst))

    @property
    def is_weighted(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"{self.kind}[{self.base.name}]"


# -- spec strings (CLI / scenario matrix) ----------------------------------

#: Accepted ``--topology`` spec strings (``name`` or ``name:arg``).
TOPOLOGY_SPECS = (
    "complete",
    "ring",
    "star",
    "grid (or grid:RxC)",
    "gnp:P (edge probability, default 0.35)",
    "clustered:K (K clusters, n divisible by K)",
    "wan:K (clustered:K with fast intra-cluster and slow cross-cluster edges)",
)


def _grid_shape(n: int) -> tuple[int, int]:
    """Largest divisor of n that is <= sqrt(n) — the squarest grid."""
    rows = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            rows = d
        d += 1
    return rows, n // rows


def topology_from_spec(spec: str, n: int, seed: int = 0) -> Topology:
    """Build a topology from a CLI spec string like ``ring`` or ``gnp:0.3``."""
    name, _, arg = spec.strip().lower().partition(":")
    if name == "complete":
        return Complete(n)
    if name == "ring":
        return Ring(n)
    if name == "star":
        return Star(n)
    if name == "grid":
        if arg:
            try:
                rows_s, _, cols_s = arg.partition("x")
                rows, cols = int(rows_s), int(cols_s)
            except ValueError:
                raise SimulationError(f"bad grid spec {spec!r}; want grid:RxC") from None
            if rows * cols != n:
                raise SimulationError(f"grid {rows}x{cols} does not hold n={n} processes")
        else:
            rows, cols = _grid_shape(n)
        return Grid2D(rows, cols)
    if name == "gnp":
        p = float(arg) if arg else 0.35
        return RandomGnp(n, p=p, seed=seed)
    if name == "clustered":
        k = int(arg) if arg else 2
        if n % k != 0:
            raise SimulationError(f"n={n} is not divisible into {k} clusters")
        return Clustered(k, n // k)
    if name == "wan":
        k = int(arg) if arg else 2
        if n % k != 0:
            raise SimulationError(f"n={n} is not divisible into {k} clusters")
        return Weighted.wan(Clustered(k, n // k))
    raise SimulationError(
        f"unknown topology spec {spec!r}; one of: {', '.join(TOPOLOGY_SPECS)}"
    )


def arbitration_clusters(
    topology: Topology, idents: Mapping[int, int] | None = None
) -> dict[int, tuple[int, ...]]:
    """Partition processes by their local leader (ME's arbitration unit).

    Process ``p``'s leader is the process with the minimum identity in its
    *closed* neighbourhood — exactly the ``minID`` its IDL instance learns.
    Protocol ME guarantees mutual exclusion among processes that share a
    leader; on the complete graph there is a single leader (the global
    minimum), recovering the paper's global guarantee.  Returns
    ``leader pid -> processes arbitrated by it`` (a partition of the pids).
    """
    ids = dict(idents) if idents is not None else {p: p for p in topology.pids}
    clusters: dict[int, tuple[int, ...]] = {}
    by_leader: dict[int, list[int]] = {}
    for p in topology.pids:
        closed = (p,) + topology.neighbors(p)
        leader = min(closed, key=lambda q: ids[q])
        by_leader.setdefault(leader, []).append(p)
    for leader, members in by_leader.items():
        clusters[leader] = tuple(sorted(members))
    return clusters
