"""Topology partitioning for the sharded engine.

A :class:`Partition` splits a topology's processes into disjoint *shards*,
each simulated by one worker process of :class:`repro.sim.sharded.ShardedSimulator`.
Edges whose endpoints land in different shards become *cross-shard channels*,
synchronized by the conservative time-window protocol; everything else stays
worker-local.  Good partitions therefore minimize the cut.

Two strategies:

* **Cluster-aligned** (default): group processes by their arbitration
  cluster (:func:`repro.sim.topology.arbitration_clusters` — the unit ME
  arbitrates over, and the natural shard line of a
  :class:`~repro.sim.topology.Clustered` deployment).  With ``n_shards``
  given, the cluster groups are greedily packed into that many bins,
  balancing bin sizes.
* **Contiguous fallback**: when fewer cluster groups exist than requested
  shards (e.g. the complete graph is a single cluster), pids are cut into
  ``n_shards`` near-equal contiguous blocks in ascending order.

Both strategies are pure functions of the topology (no randomness), so every
worker — and the serial engine, for comparison harnesses — derives the same
partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.topology import Clustered, Topology, Weighted, arbitration_clusters

__all__ = ["Partition", "partition_topology"]


@dataclass(frozen=True)
class Partition:
    """A disjoint cover of a topology's pids by shards."""

    topology: Topology
    #: Shard member tuples, each sorted ascending; shards ordered by their
    #: smallest member.
    shards: tuple[tuple[int, ...], ...]
    shard_of: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        seen: dict[int, int] = {}
        for index, members in enumerate(self.shards):
            if not members:
                raise SimulationError(f"shard {index} is empty")
            for pid in members:
                if pid in seen:
                    raise SimulationError(f"pid {pid} appears in two shards")
                seen[pid] = index
        if set(seen) != set(self.topology.pids):
            missing = sorted(set(self.topology.pids) - set(seen))
            raise SimulationError(f"partition misses pids {missing}")
        object.__setattr__(self, "shard_of", seen)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def cross_edges(self) -> list[tuple[int, int]]:
        """Undirected edges whose endpoints live in different shards."""
        shard_of = self.shard_of
        return [
            (u, v) for u, v in self.topology.edges() if shard_of[u] != shard_of[v]
        ]

    def local_edges(self) -> list[tuple[int, int]]:
        """Undirected edges fully inside one shard."""
        shard_of = self.shard_of
        return [
            (u, v) for u, v in self.topology.edges() if shard_of[u] == shard_of[v]
        ]

    def peer_shards(self, shard: int) -> tuple[int, ...]:
        """Shards sharing at least one cross edge with ``shard``.

        These are exactly the shards a cluster worker must open directed
        channels to (and expect BARRIER frames from): messages between
        non-peer shards cannot exist, because every send travels a
        topology edge.
        """
        if not 0 <= shard < self.n_shards:
            raise SimulationError(
                f"shard must be in 0..{self.n_shards - 1}, got {shard}"
            )
        shard_of = self.shard_of
        peers = {
            shard_of[u] if shard_of[v] == shard else shard_of[v]
            for u, v in self.cross_edges()
            if shard in (shard_of[u], shard_of[v])
        }
        peers.discard(shard)
        return tuple(sorted(peers))

    def latency_floor(self, default_lo: int) -> int:
        """The sharded engine's effective lookahead under this partition.

        Only *cross-shard* edges constrain the synchronization window:
        intra-shard messages never traverse a barrier, so the window may
        grow to the minimum latency lower bound over the cut — per-edge
        bounds (:meth:`~repro.sim.topology.Topology.edge_latency`, both
        directions of each cut edge) where the topology carries them,
        ``default_lo`` (the engine's global floor) elsewhere.  A partition
        with no cut (single shard) returns ``default_lo`` unchanged.
        """
        floor: int | None = None
        edge_latency = self.topology.edge_latency
        for u, v in self.cross_edges():
            for src, dst in ((u, v), (v, u)):
                bounds = edge_latency(src, dst)
                lo = bounds[0] if bounds is not None else default_lo
                if floor is None or lo < floor:
                    floor = lo
        return default_lo if floor is None else floor

    def describe(self) -> dict[str, object]:
        cut = len(self.cross_edges())
        edges = len(self.topology.edges())
        return {
            "shards": self.n_shards,
            "sizes": [len(s) for s in self.shards],
            "cross_edges": cut,
            "edges": edges,
            "cut_fraction": round(cut / edges, 3) if edges else 0.0,
        }


def _greedy_pack(
    groups: list[tuple[int, ...]], n_bins: int
) -> list[list[int]]:
    """Pack groups into ``n_bins`` bins, balancing total sizes (deterministic:
    largest group first, ties by smallest member; lightest bin first, ties by
    bin index)."""
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for group in sorted(groups, key=lambda g: (-len(g), g[0])):
        target = min(range(n_bins), key=lambda i: (len(bins[i]), i))
        bins[target].extend(group)
    return [b for b in bins if b]


def _contiguous_blocks(pids: tuple[int, ...], n_blocks: int) -> list[list[int]]:
    """Cut pids (ascending) into near-equal contiguous blocks."""
    n = len(pids)
    base, extra = divmod(n, n_blocks)
    blocks: list[list[int]] = []
    start = 0
    for i in range(n_blocks):
        size = base + (1 if i < extra else 0)
        blocks.append(list(pids[start:start + size]))
        start += size
    return [b for b in blocks if b]


def partition_topology(
    topology: Topology, n_shards: int | None = None
) -> Partition:
    """Partition ``topology`` into shards.

    With ``n_shards=None``, one shard per arbitration-cluster group.  With an
    explicit count, cluster groups are greedily packed into that many bins —
    falling back to contiguous pid blocks when the topology has fewer cluster
    groups than requested shards (a complete graph is one big cluster).
    """
    if n_shards is not None and not 1 <= n_shards <= topology.n:
        raise SimulationError(
            f"n_shards must be in 1..{topology.n}, got {n_shards}"
        )
    # Weight maps don't change the graph; shard along the base's structure
    # (a WAN-weighted Clustered still cuts only its bridge edges).
    base = topology.base if isinstance(topology, Weighted) else topology
    if isinstance(base, Clustered):
        # The topology knows its own cluster boundaries; use them directly.
        # (arbitration_clusters would pull bridge endpoints into the
        # neighbouring leader's group, fattening the cut from ~3% to ~20%.)
        members: list[list[int]] = [[] for _ in range(base.clusters)]
        for pid in base.pids:
            members[base.cluster_of(pid)].append(pid)
        groups: list[tuple[int, ...]] = [tuple(m) for m in members]
    else:
        clusters = arbitration_clusters(topology)
        groups = [clusters[leader] for leader in sorted(clusters)]
    if n_shards is None:
        raw = [list(g) for g in groups]
    elif len(groups) >= n_shards:
        raw = _greedy_pack(groups, n_shards)
    else:
        raw = _contiguous_blocks(topology.pids, n_shards)
    shards = tuple(
        tuple(sorted(members))
        for members in sorted(raw, key=lambda m: min(m))
    )
    return Partition(topology=topology, shards=shards)
