"""Sharded multi-process simulation engine.

:class:`ShardedSimulator` partitions a topology into shards
(:mod:`repro.sim.partition`), runs each shard's scheduler/network inside its
own ``multiprocessing`` worker, and synchronizes the workers with a
**conservative time-window protocol**:

* Simulated time is cut into windows of ``window`` ticks, with ``window``
  bounded by the engine's *lookahead*: the minimum latency lower bound
  over **cross-shard** edges (:meth:`Partition.latency_floor`).  Intra-shard
  edges never traverse a barrier, so only the cut constrains the window —
  on a WAN-weighted clustered topology (intra lo=1, cross lo=16) the
  window widens from 1 to 16 ticks, an order of magnitude fewer barriers.
  Without per-edge weights the cut floor equals the global latency lower
  bound and the classic ``window <= lo`` rule is recovered unchanged.
* Each worker advances its shard to the window end.  A send whose
  destination lives in another shard admits into the source-side channel
  copy as usual (slot accounting, FIFO clocks and the latency draw are all
  owned by the sender's shard — see :meth:`Simulator._schedule_delivery`),
  and the message is buffered in the worker's outbox.
* At the barrier the driver routes every outbox entry to its destination
  shard, which schedules the dispatch at the *sender-computed* delivery
  time.  Because every cross-shard delivery time is at least ``send +``
  the edge's latency floor and the window never exceeds the minimum such
  floor over the cut, a message handed over at a barrier is always
  scheduled in the destination's future — no straggler can violate
  causality.

Combined with per-entity random streams and canonical event keys
(:mod:`repro.sim.determinism`), the result is **bit-identical to the serial
engine**: same trace events, same stats, same final states, for the same
seed — the ``shard-equivalence`` CI job and ``tests/test_sharded.py`` assert
exactly that.  Workers are forked, so build closures need not be picklable.

Scope: the sharded engine drives *trial-shaped* runs (scramble, request
driver, run-until-served, drain) — the shape every experiment in
:mod:`repro.analysis` uses.  Mid-run channel clears (fault injection) and
loss models with cross-channel mutable state are not supported across
shards; :class:`ShardedSimulator` validates and refuses those up front.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import SimulationError
from repro.obs.recorder import ObsRecorder
from repro.obs.spans import wall
from repro.sim.adversary import scramble_channels, scramble_processes
from repro.sim.channel import BernoulliLoss, LossModel, NoLoss
from repro.sim.partition import Partition, partition_topology
from repro.sim.runtime import BuildFn, CrossShardSend, Simulator
from repro.sim.scheduler import Scheduler
from repro.sim.stats import SimStats
from repro.sim.topology import Topology, topology_from_spec
from repro.sim.trace import EventKind, Trace, TraceEvent
from repro.types import RequestState

__all__ = [
    "ShardedSimulator",
    "ShardedRunResult",
    "scramble_shard",
    "shard_result_payload",
    "merge_worker_traces",
    "merge_completions",
]

#: Loss models whose draws depend only on the per-channel stream (no mutable
#: state shared across channels) — the ones shard composition preserves.
_SHARDABLE_LOSS: tuple[type, ...] = (NoLoss, BernoulliLoss)


class _KeyedTrace(Trace):
    """A trace that records, per event, a globally sortable position.

    The position is ``(time, key, emit_index)`` where ``key`` is the
    canonical scheduler key of the event being executed when the emission
    happened, *monotonized* within the tick: an event scheduled mid-tick
    with a lower key (e.g. a zero-delay timer) executes after its creator,
    so its emissions inherit the creator's rank.  Sorting all workers'
    events by position reproduces exactly the serial engine's append order.
    """

    __slots__ = ("_scheduler", "keys", "_last_time", "_last_key")

    def __init__(self, scheduler: Scheduler) -> None:
        super().__init__()
        self._scheduler = scheduler
        self.keys: list[tuple[int, int, int]] = []
        self._last_time = -1
        self._last_key = 0

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> None:
        super().emit(time, kind, process, **data)
        key = self._scheduler.current_key
        if time == self._last_time and key < self._last_key:
            key = self._last_key
        self._last_time = time
        self._last_key = key
        self.keys.append((time, key, len(self.keys)))


def _merge_rank(event: TraceEvent, key: int) -> int:
    # Class-0 (driver) emissions carry no entity in their key; the serial
    # driver walks its processes in ascending pid order, so the process id
    # is the cross-worker rank.  Entity-keyed classes are already total.
    if key == 0 and event.process is not None:
        return event.process
    return -1


@dataclass
class ShardedRunResult:
    """Everything a trial needs back from a sharded run."""

    trace: Trace
    stats: SimStats
    #: Driver-tag request state per pid at the final horizon.
    finals: dict[int, RequestState]
    completions: list[CompletedRequest]
    completed: bool
    #: Tick at which the last shard's driver went idle (None if it never did).
    done_at: int | None
    final_time: int
    partition: Partition
    #: Synchronization window (ticks) the run used.
    window: int = 0
    #: Barriers paid: one per advance round (window-sized steps to the end).
    barriers: int = 0
    #: Driver-side synchronization wall time: total barrier round-trip time
    #: minus each round's slowest worker compute — pipe traffic, outbox
    #: routing and straggler coordination, the cost wider windows amortize.
    sync_wall_s: float = 0.0


def scramble_shard(
    sim: Simulator,
    trace: _KeyedTrace,
    scramble_seed: int | None,
    fill_channels: bool,
) -> tuple[int, int, int]:
    """Scramble one shard's slice, recording setup segment boundaries.

    Same derivation as ``scramble_system``, but with the trace markers
    suppressed and the segment lengths recorded: per-host scramble
    emissions (e.g. a scrambled-in CS occupant's cs-enter) precede the
    channel INJECTs in serial order, and :func:`merge_worker_traces`
    reconstructs the markers once, globally.  Returns
    ``(injected, proc_len, chan_len)``.
    """
    injected = 0
    proc_len = chan_len = 0
    if scramble_seed is not None:
        scramble_processes(sim, scramble_seed, emit_trace=False)
        proc_len = len(trace)
        if fill_channels:
            injected = scramble_channels(sim, scramble_seed, emit_trace=False)
        chan_len = len(trace)
    return injected, proc_len, chan_len


def shard_result_payload(
    sim: Simulator,
    trace: _KeyedTrace,
    proc_len: int,
    chan_len: int,
    shard_pids: Sequence[int],
    driver: "RequestDriver | None",
    tag: str | None,
    obs: ObsRecorder | None = None,
) -> dict[str, Any]:
    """The per-shard result record every multi-process engine ships back.

    When the worker carries an :class:`~repro.obs.recorder.ObsRecorder`,
    the shard's metric snapshot and spans ride along in the same record —
    over the sharded pipe or the cluster's pickled CONTROL frame alike.
    """
    finals = {
        pid: sim.layer(pid, tag).request for pid in shard_pids
    } if tag else {}
    if obs is not None:
        obs.collect_sim(sim)
    return {
        "events": list(trace),
        "keys": list(trace.keys),
        "proc_len": proc_len,
        "chan_len": chan_len,
        "stats": sim.stats,
        "finals": finals,
        "completions": driver.completed() if driver else [],
        "obs": obs.worker_payload() if obs is not None else None,
    }


def _worker_main(
    conn,
    make_sim: Callable[[Sequence[int]], Simulator],
    shard_pids: tuple[int, ...],
    scramble_seed: int | None,
    fill_channels: bool,
    driver_cfg: dict[str, Any] | None,
    obs_shard: int | None = None,
) -> None:
    """One shard worker: build, scramble, then advance window by window."""
    try:
        _worker_loop(conn, make_sim, shard_pids, scramble_seed, fill_channels,
                     driver_cfg, obs_shard)
    except Exception:  # noqa: BLE001 - forwarded to the driving process
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass


def _worker_loop(
    conn,
    make_sim: Callable[[Sequence[int]], Simulator],
    shard_pids: tuple[int, ...],
    scramble_seed: int | None,
    fill_channels: bool,
    driver_cfg: dict[str, Any] | None,
    obs_shard: int | None = None,
) -> None:
    sim = make_sim(shard_pids)
    trace = _KeyedTrace(sim.scheduler)
    sim.trace = trace
    injected, proc_len, chan_len = scramble_shard(
        sim, trace, scramble_seed, fill_channels
    )
    driver: RequestDriver | None = None
    if driver_cfg is not None:
        driver = RequestDriver(sim, pids=shard_pids, **driver_cfg)
    obs: ObsRecorder | None = None
    if obs_shard is not None:
        obs = ObsRecorder(pid=obs_shard + 1, name=f"shard{obs_shard}")
    round_no = 0
    conn.send(("ready", sim.drain_outbox(), injected))
    while True:
        cmd = conn.recv()
        op = cmd[0]
        if op == "adv":
            _, target, inbox = cmd
            t0 = time.perf_counter()
            for src, dst, msg, when, entry_seq in inbox:
                sim.schedule_remote_arrival(src, dst, msg, when, entry_seq)
            if obs is not None:
                w0 = wall()
                sim.scheduler.run_until(target)
                obs.record_round("compute", w0, wall(),
                                 round=round_no, target=target)
            else:
                sim.scheduler.run_until(target)
            round_no += 1
            compute_s = time.perf_counter() - t0
            done_at = driver.done_at if driver is not None else 0
            conn.send(("adv-ok", sim.drain_outbox(), done_at, compute_s))
        elif op == "result":
            tag = driver_cfg["tag"] if driver_cfg else None
            conn.send((
                "result",
                shard_result_payload(
                    sim, trace, proc_len, chan_len, shard_pids, driver, tag,
                    obs=obs,
                ),
            ))
        elif op == "stop":
            conn.close()
            return


class ShardedSimulator:
    """Drive one simulation partitioned across worker processes.

    Constructor arguments mirror :class:`~repro.sim.runtime.Simulator` where
    they are meaningful across shards; ``shards`` fixes the worker count
    (default: one per arbitration-cluster group) and ``window`` the
    synchronization window (default and maximum: the partition's
    cross-shard latency floor, :attr:`lookahead` — the global latency
    lower bound on unweighted topologies).
    """

    def __init__(
        self,
        pids: Sequence[int] | int | None = None,
        build: BuildFn = lambda host: None,
        *,
        topology: Topology | str | None = None,
        seed: int = 0,
        shards: int | None = None,
        window: int | None = None,
        capacity: int = 1,
        latency: tuple[int, int] = (1, 3),
        loss: LossModel | None = None,
        activation_period: int = 2,
        activation_jitter: int = 1,
        trace_network: bool = False,
    ) -> None:
        if isinstance(pids, int):
            pids = list(range(1, pids + 1))
        if topology is None:
            if pids is None:
                raise SimulationError("need a process count, pid list, or topology")
            from repro.sim.topology import Complete

            topology = Complete(pids)
        elif isinstance(topology, str):
            if pids is None:
                raise SimulationError(
                    f"topology spec {topology!r} needs an explicit process count"
                )
            topology = topology_from_spec(topology, len(pids), seed=seed)
        if loss is not None and not isinstance(loss, _SHARDABLE_LOSS):
            raise SimulationError(
                f"loss model {type(loss).__name__} keeps cross-channel state; "
                "the sharded engine supports NoLoss/BernoulliLoss"
            )
        lo, hi = latency
        if not 1 <= lo <= hi:
            raise SimulationError(
                f"latency bounds must satisfy 1 <= lo <= hi, got {latency}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "the sharded engine needs the 'fork' start method (workers "
                "inherit build closures); this platform does not provide it"
            )
        self.topology = topology
        self.partition = partition_topology(topology, shards)
        #: The engine's conservative lookahead: the minimum latency lower
        #: bound over cross-shard edges (== the global ``lo`` when the
        #: topology is unweighted or the partition has no cut).
        self.lookahead = self.partition.latency_floor(lo)
        if window is None:
            window = self.lookahead
        if not 1 <= window <= self.lookahead:
            detail = (
                "the latency lower bound"
                if self.lookahead == lo
                else f"the cross-shard latency floor; global lower bound {lo}"
            )
            raise SimulationError(
                f"window must be in 1..{self.lookahead} ({detail} — the "
                f"engine's conservative lookahead), got {window}"
            )
        self.window = window
        self.seed = seed
        self._build = build
        self._sim_kwargs = dict(
            seed=seed,
            capacity=capacity,
            latency=latency,
            loss=loss,
            activation_period=activation_period,
            activation_jitter=activation_jitter,
            trace_network=trace_network,
        )

    @property
    def pids(self) -> tuple[int, ...]:
        return self.topology.pids

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def _make_sim(self, shard_pids: Sequence[int]) -> Simulator:
        return Simulator(
            build=self._build,
            topology=self.topology,
            hosts_for=shard_pids,
            **self._sim_kwargs,
        )

    # -- the driver loop ---------------------------------------------------

    def run_trial(
        self,
        *,
        horizon: int,
        scramble_seed: int | None = None,
        fill_channels: bool = True,
        driver: dict[str, Any] | None = None,
        drain: int = 200,
        obs: ObsRecorder | None = None,
    ) -> ShardedRunResult:
        """Scramble, serve the request driver, drain — across all shards.

        Matches the serial trial shape: run until every shard's driver is
        done (or ``horizon``), then run ``drain`` more ticks so both engines
        stop on the same full tick.  ``drain`` must be >= the window (the
        barrier at which completion is detected can overshoot the completion
        tick by up to one window).
        """
        if drain < self.window:
            raise SimulationError(
                f"drain ({drain}) must be >= window ({self.window})"
            )
        ctx = multiprocessing.get_context("fork")
        shard_of = self.partition.shard_of
        workers: list[multiprocessing.Process] = []
        conns = []
        try:
            for shard_index, shard_pids in enumerate(self.partition.shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._make_sim,
                        shard_pids,
                        scramble_seed,
                        fill_channels,
                        driver,
                        shard_index if obs is not None else None,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                workers.append(proc)
                conns.append(parent_conn)

            inboxes: list[list[CrossShardSend]] = [[] for _ in conns]

            def route(outbox: list[CrossShardSend]) -> None:
                for send in outbox:
                    inboxes[shard_of[send[1]]].append(send)

            def recv(conn, expected: str):
                message = conn.recv()
                if message[0] == "error":
                    raise SimulationError(f"shard worker failed:\n{message[1]}")
                if message[0] != expected:
                    raise SimulationError(
                        f"shard worker protocol error: expected {expected!r}, "
                        f"got {message[0]!r}"
                    )
                return message

            injected = 0
            for conn in conns:
                _, outbox, worker_injected = recv(conn, "ready")
                injected += worker_injected
                route(outbox)

            completed = False
            done_at: int | None = None
            final_target: int | None = None
            barriers = 0
            sync_wall = 0.0
            t = -1
            while final_target is None or t < final_target:
                cap = horizon if final_target is None else final_target
                target = min(t + self.window, cap)
                round_start = time.perf_counter()
                round_wall = wall() if obs is not None else 0.0
                for conn, inbox in zip(conns, inboxes):
                    conn.send(("adv", target, inbox))
                inboxes = [[] for _ in conns]
                done_ticks = []
                slowest = 0.0
                for conn in conns:
                    _, outbox, worker_done, compute_s = recv(conn, "adv-ok")
                    route(outbox)
                    done_ticks.append(worker_done)
                    if compute_s > slowest:
                        slowest = compute_s
                barriers += 1
                # Overhead of this barrier: the round trip minus the
                # critical-path (slowest) worker's simulation time.
                round_wait = max(
                    0.0, time.perf_counter() - round_start - slowest
                )
                sync_wall += round_wait
                if obs is not None:
                    obs.record_round("round", round_wall, wall(),
                                     round=barriers - 1, target=target)
                    obs.metrics.observe("sync.round_wait_s", round_wait)
                t = target
                if final_target is None:
                    if driver is not None and all(d is not None for d in done_ticks):
                        done_at = max(done_ticks, default=0)
                        completed = True
                        final_target = done_at + drain
                    elif t >= horizon:
                        final_target = horizon + drain

            payloads = []
            for conn in conns:
                conn.send(("result",))
                _, payload = recv(conn, "result")
                payloads.append(payload)
            for conn in conns:
                conn.send(("stop",))
            for proc in workers:
                proc.join(timeout=30)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()

        trace = merge_worker_traces(
            payloads, scramble_seed is not None, fill_channels, injected
        )
        stats = SimStats()
        finals: dict[int, RequestState] = {}
        for payload in payloads:
            stats.merge(payload["stats"])
            finals.update(payload["finals"])
        completions = merge_completions(payloads)
        if obs is not None:
            for payload in payloads:
                if payload.get("obs") is not None:
                    obs.merge_worker(payload["obs"])
            obs.metrics.inc("sync.barriers", barriers)
            obs.metrics.gauge_max("sync.window", self.window)
            obs.metrics.observe("sync.wall_s", sync_wall)
        assert final_target is not None
        return ShardedRunResult(
            trace=trace,
            stats=stats,
            finals=finals,
            completions=completions,
            completed=completed,
            done_at=done_at,
            final_time=final_target,
            partition=self.partition,
            window=self.window,
            barriers=barriers,
            sync_wall_s=sync_wall,
        )


def merge_worker_traces(
    payloads: list[dict[str, Any]],
    scrambled: bool,
    fill_channels: bool,
    injected: int,
) -> Trace:
    """Merge per-shard keyed traces back into the serial append order.

    Shared by every multi-process engine (sharded workers over pipes,
    cluster workers over sockets): each payload is a
    :func:`shard_result_payload` record carrying the shard's events and
    their ``(time, key, emit_index)`` positions.
    """
    trace = Trace()
    if scrambled:
        # The serial scramble emits: per-host scramble emissions in pid
        # order (e.g. a scrambled-in CS occupant's cs-enter), the
        # process-scramble marker, one INJECT per garbage message in
        # (src asc, dst asc) channel order, then the channel summary.
        # Workers suppressed their markers; reconstruct the sequence.
        proc_setup: list[tuple[int, int, TraceEvent]] = []
        chan_setup: list[tuple[int, int, int, TraceEvent]] = []
        for payload in payloads:
            events = payload["events"]
            for index, event in enumerate(events[: payload["proc_len"]]):
                pid = event.process if event.process is not None else -1
                proc_setup.append((pid, index, event))
            for index, event in enumerate(
                events[payload["proc_len"]: payload["chan_len"]]
            ):
                chan_setup.append(
                    (event.get("src", -1), event.get("dst", -1), index, event)
                )
        proc_setup.sort(key=lambda item: item[:2])
        chan_setup.sort(key=lambda item: item[:3])
        trace.extend(event for *_rank, event in proc_setup)
        trace.emit(0, EventKind.SCRAMBLE, None, what="processes")
        if fill_channels:
            trace.extend(event for *_rank, event in chan_setup)
            trace.emit(
                0, EventKind.SCRAMBLE, None, what="channels", injected=injected
            )
    merged: list[tuple[int, int, int, int, int, TraceEvent]] = []
    for worker_index, payload in enumerate(payloads):
        setup_len = payload["chan_len"]
        events = payload["events"][setup_len:]
        keys = payload["keys"][setup_len:]
        for event, (time, key, emit_index) in zip(events, keys):
            merged.append(
                (time, key, _merge_rank(event, key), emit_index, worker_index, event)
            )
    merged.sort(key=lambda item: item[:5])
    trace.extend(item[5] for item in merged)
    return trace


def merge_completions(payloads: list[dict[str, Any]]) -> list[CompletedRequest]:
    """Reassemble the serial completion order from per-shard records:
    collect per pid ascending, then stable-sort by completion time
    (``RequestDriver.completed`` does exactly this)."""
    per_pid: dict[int, list[CompletedRequest]] = {}
    for payload in payloads:
        for completion in payload["completions"]:
            per_pid.setdefault(completion.pid, []).append(completion)
    completions: list[CompletedRequest] = []
    for pid in sorted(per_pid):
        completions.extend(per_pid[pid])
    completions.sort(key=lambda c: c.completed_at)
    return completions
