"""The UDP datagram transport and the buffer-walk frame splitter.

UDP is the acceptance proof of the PR-10 registry refactor: a transport
registered *purely* through :func:`repro.net.transport.register_transport`
— no engine, runner or CLI dispatch edits — that runs a full E3 trial on
the async engine with the real network as the loss/reorder adversary
(best-effort: the online monitors carry the correctness verdict).
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import run_pif_trial
from repro.core.pif import PifLayer
from repro.engine import TransportOpts, TrialSpec, execute
from repro.errors import SpecError
from repro.net import wire
from repro.net.transport import resolve_transport, transport_names


# -- registry surface -----------------------------------------------------


def test_udp_is_registered_with_socket_flags():
    assert "udp" in transport_names()
    kind = resolve_transport("udp")
    assert kind.paced and kind.frame_boundary and not kind.deterministic
    assert kind.fabric_factory is not None


def test_udp_needs_the_async_engine():
    spec = TrialSpec(
        n=4,
        build=lambda h: h.register(PifLayer("pif")),
        driver=dict(tag="pif", requests_per_process=1,
                    payload_fmt="m-{pid}-{k}"),
        horizon=1_000,
        engine="serial",
        transport=TransportOpts(transport="udp"),
    )
    with pytest.raises(SpecError) as err:
        execute(spec)
    assert err.value.backend == "serial"
    assert err.value.field == "transport"


# -- E3 smoke over real datagram sockets ----------------------------------


def test_udp_runs_e3_end_to_end():
    trial = run_pif_trial(6, seed=2, loss=0.1, engine="async",
                          transport="udp", requests_per_process=1,
                          horizon=60_000)
    assert trial.ok
    assert trial.provenance["transport"] == "udp"
    assert trial.provenance["monitors_ok"] is True
    assert trial.measurements["waves"] >= 6


# -- split_frame: the datagram-side frame walk ----------------------------


def test_split_frame_walks_a_concatenated_datagram():
    datagram = wire.encode_hello(3) + wire.encode_message(7, {"x": 1})
    kind, payload, rest = wire.split_frame(datagram)
    assert kind == wire.HELLO
    assert wire.decode_hello(payload) == 3
    kind, payload, rest = wire.split_frame(rest)
    assert kind == wire.MESSAGE
    assert wire.decode_message(payload) == (7, {"x": 1})
    assert rest == b""


def test_split_frame_rejects_garbage():
    good = wire.encode_hello(3)
    with pytest.raises(wire.WireError, match="header"):
        wire.split_frame(good[:3])  # truncated header
    with pytest.raises(wire.WireError, match="overruns"):
        wire.split_frame(good[:-1])  # truncated payload
    bad_version = bytes([good[0], good[1] ^ 0xFF]) + good[2:]
    with pytest.raises(wire.WireError, match="version"):
        wire.split_frame(bad_version)
    bad_kind = bytes([0x7F]) + good[1:]
    with pytest.raises(wire.WireError, match="kind"):
        wire.split_frame(bad_kind)
    with pytest.raises(wire.WireError, match="exceeds"):
        wire.split_frame(good, max_frame=0)
