"""Tests for the baselines: naive PIF, self-stabilizing token mutex, ABP."""

from __future__ import annotations

import pytest

from repro.baselines.abp import AbpReceiverLayer, AbpSenderLayer
from repro.baselines.naive_pif import NaivePifLayer
from repro.baselines.self_stab_mutex import TokenMessage, TokenMutexLayer
from repro.core.requests import RequestDriver
from repro.sim.channel import BernoulliLoss, DropFirstK
from repro.sim.runtime import Simulator
from repro.spec.mutex_spec import check_mutex
from repro.spec.pif_spec import check_pif
from repro.types import RequestState


def build_naive(host) -> None:
    host.register(NaivePifLayer("np"))


def build_token(host) -> None:
    host.register(TokenMutexLayer("tok"))


class TestNaivePif:
    def test_works_on_reliable_clean_system(self):
        sim = Simulator(3, build_naive, seed=0)
        layer = sim.layer(1, "np")
        layer.request_broadcast("m")
        assert sim.run(50_000, until=lambda s: layer.request is RequestState.DONE)
        verdict = check_pif(sim.trace, "np", sim.pids, require_all_decided=False)
        assert verdict.ok, verdict.summary()

    def test_deadlocks_when_broadcast_lost(self):
        """Failure mode (1) from Section 4.1: a lost message deadlocks it."""
        sim = Simulator(2, build_naive, seed=1, loss=DropFirstK(1))
        layer = sim.layer(1, "np")
        layer.request_broadcast("m")
        assert not sim.run(50_000, until=lambda s: layer.request is RequestState.DONE)

    def test_believes_stale_feedback(self):
        """Failure mode (2): garbage feedback counts as an acknowledgment."""
        from repro.baselines.naive_pif import NaiveMessage

        sim = Simulator(2, build_naive, seed=2, auto=False)
        layer = sim.layer(1, "np")
        # Stale feedback sits in the channel; the broadcast channel is full
        # of garbage, so q never gets the real broadcast.
        sim.inject(2, 1, NaiveMessage("np", "fck", "stale"), schedule=False)
        sim.inject(1, 2, NaiveMessage("np", "brd", "old-garbage"), schedule=False)
        layer.request_broadcast("m")
        sim.activate(1)                 # start: broadcast lost (channel full)
        sim.step_deliver(2, 1)          # stale feedback arrives
        sim.activate(1)                 # decides on garbage
        assert layer.request is RequestState.DONE
        verdict = check_pif(sim.trace, "np", sim.pids, require_all_decided=False)
        assert not verdict.ok

    def test_scramble_and_garbage_interfaces(self):
        import random

        sim = Simulator(2, build_naive, auto=False)
        layer: NaivePifLayer = sim.layer(1, "np")
        layer.scramble(random.Random(1))
        msg = layer.garbage_message(random.Random(1))
        assert msg.tag == "np"
        snap = layer.snapshot()
        layer.restore(snap)


class TestTokenMutex:
    def test_serves_requests_on_clean_system(self):
        sim = Simulator(4, build_token, seed=0)
        driver = RequestDriver(sim, "tok", requests_per_process=2)
        assert sim.run(2_000_000, until=lambda s: driver.done)
        verdict = check_mutex(sim.trace, "tok", horizon=sim.now)
        assert verdict.ok, verdict.summary()

    def test_recovers_token_after_loss(self):
        sim = Simulator(3, build_token, seed=1, loss=DropFirstK(3))
        driver = RequestDriver(sim, "tok", requests_per_process=1)
        assert sim.run(2_000_000, until=lambda s: driver.done)

    def test_can_violate_safety_from_forged_tokens(self):
        """The self-stabilizing baseline is *not* snap-stabilizing: some
        arbitrary initial configuration with several forged tokens makes two
        requesting processes collide."""
        violating_seeds = 0
        for seed in range(12):
            sim = Simulator(4, build_token, seed=seed)
            for pid in sim.pids:  # forge a token at every process
                layer: TokenMutexLayer = sim.layer(pid, "tok")
                layer.have_token = True
                layer.token_epoch = 0
            driver = RequestDriver(sim, "tok", requests_per_process=1)
            sim.run(2_000_000, until=lambda s: driver.done)
            verdict = check_mutex(sim.trace, "tok", horizon=sim.now,
                                  require_all_served=False)
            if not verdict.ok:
                violating_seeds += 1
        assert violating_seeds > 0

    def test_leader_is_min_pid(self):
        sim = Simulator(3, build_token, auto=False)
        assert sim.layer(1, "tok").is_leader
        assert not sim.layer(2, "tok").is_leader

    def test_successor_wraps_around(self):
        sim = Simulator(3, build_token, auto=False)
        assert sim.layer(3, "tok").successor == 1
        assert sim.layer(1, "tok").successor == 2

    def test_stale_epoch_flushed_at_leader(self):
        sim = Simulator(2, build_token, auto=False)
        leader: TokenMutexLayer = sim.layer(1, "tok")
        leader.epoch = 5
        leader.on_message(2, TokenMessage("tok", epoch=3))
        assert not leader.have_token  # stale token discarded

    def test_valid_epoch_accepted_and_advanced(self):
        sim = Simulator(2, build_token, auto=False)
        leader: TokenMutexLayer = sim.layer(1, "tok")
        leader.epoch = 5
        leader.on_message(2, TokenMessage("tok", epoch=5))
        assert leader.have_token
        assert leader.epoch == 6


class TestAbp:
    def make(self, seed=0, loss=0.0, scramble=False):
        def build(host):
            if host.pid == 1:
                host.register(AbpSenderLayer("abp", peer=2))
            else:
                host.register(AbpReceiverLayer("abp", peer=1))

        sim = Simulator(
            2, build, seed=seed,
            loss=BernoulliLoss(loss) if loss else None,
        )
        if scramble:
            sim.scramble(seed=seed)
        return sim

    def test_reliable_in_order_delivery(self):
        sim = self.make(seed=3)
        sender: AbpSenderLayer = sim.layer(1, "abp")
        sender.send_payloads(["a", "b", "c"])
        ok = sim.run(200_000, until=lambda s: sender.acked_count == 3)
        assert ok
        assert sim.layer(2, "abp").delivered == ["a", "b", "c"]

    def test_survives_heavy_loss(self):
        sim = self.make(seed=4, loss=0.4)
        sim.layer(1, "abp").send_payloads(list(range(5)))
        ok = sim.run(
            500_000, until=lambda s: s.layer(2, "abp").delivered == list(range(5))
        )
        assert ok

    def test_self_stabilizes_from_scramble(self):
        """Random labels make stale channel garbage harmless (w.h.p.)."""
        sim = self.make(seed=5, scramble=True)
        sim.layer(1, "abp").send_payloads(["x", "y"])
        ok = sim.run(
            500_000,
            until=lambda s: s.layer(2, "abp").delivered[-2:] == ["x", "y"],
        )
        assert ok

    def test_request_state_reflects_queue(self):
        sim = self.make(seed=6)
        sender: AbpSenderLayer = sim.layer(1, "abp")
        assert sender.request is RequestState.DONE
        sender.send_payloads(["only"])
        assert sender.request is RequestState.IN
        sim.run(100_000, until=lambda s: sender.request is RequestState.DONE)
        assert sender.request is RequestState.DONE


class TestTokenMutexOnRing:
    """E6 ported off the complete graph: the virtual token ring embeds in
    a physical Ring, so the snap-vs-self comparison runs there unchanged."""

    def test_comparison_runs_on_ring_topology(self):
        from repro.analysis.compare import aggregate_comparison, compare_mutex_protocols

        results = compare_mutex_protocols(
            n=5, seeds=[0, 1, 2], requests_per_process=2,
            horizon=600_000, topology="ring",
        )
        agg = aggregate_comparison(results)
        # Snap-stabilizing ME: zero violations from any initial configuration.
        assert agg["snap_total_violations"] == 0
        assert agg["snap_total_served"] == 5 * 3 * 2
        # The self-stabilizing baseline still serves requests on the ring.
        assert agg["self_total_served"] > 0

    def test_baseline_violates_on_ring_from_forged_tokens(self):
        # Over a batch of scrambles at least one forged-token overlap shows
        # up on the ring, exactly as on the complete graph.
        from repro.analysis.compare import aggregate_comparison, compare_mutex_protocols

        results = compare_mutex_protocols(
            n=5, seeds=list(range(6)), requests_per_process=1,
            horizon=600_000, topology="ring",
        )
        agg = aggregate_comparison(results)
        assert agg["self_configs_with_violation"] >= 1

    def test_token_ring_rejects_non_embeddable_topology(self):
        import pytest
        from repro.baselines.self_stab_mutex import TokenMutexLayer
        from repro.errors import ProtocolError
        from repro.sim.runtime import Simulator

        with pytest.raises(ProtocolError):
            Simulator(
                4, lambda h: h.register(TokenMutexLayer("tok")),
                topology="star", auto=False,
            )
