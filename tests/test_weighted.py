"""Edge-weighted topologies: per-edge latency/capacity and the WAN preset.

Covers the :class:`~repro.sim.topology.Weighted` wrapper itself (map
normalization, validation, the ``wan`` preset and spec), the engine
plumbing (per-edge delivery draws, per-edge channel capacities), and the
defining equivalence obligation: on a weighted topology the serial,
sharded and async-loopback engines must still produce byte-identical
canonical traces, because every directed channel owns its random stream
and draws within its own edge's bounds.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import execute_trial
from repro.core.pif import PifLayer
from repro.errors import HorizonExceeded, SimulationError
from repro.sim.runtime import Simulator
from repro.sim.sharded import ShardedSimulator
from repro.sim.topology import (
    Clustered,
    Ring,
    Weighted,
    topology_from_spec,
)
from repro.sim.trace import canonical_trace_hash


def _pif_build(host) -> None:
    host.register(PifLayer("pif"))


_PIF_DRIVER = dict(
    tag="pif", requests_per_process=1, payload=lambda pid, k: f"m-{pid}-{k}"
)


class TestWeightedConstruction:
    def test_undirected_map_weighs_both_directions(self):
        top = Weighted(Ring(4), latency={(1, 2): (5, 9)})
        assert top.edge_latency(1, 2) == (5, 9)
        assert top.edge_latency(2, 1) == (5, 9)
        assert top.edge_latency(2, 3) is None

    def test_directed_map_weighs_one_channel(self):
        top = Weighted(Ring(4), latency={(1, 2): (5, 9)}, directed=True)
        assert top.edge_latency(1, 2) == (5, 9)
        assert top.edge_latency(2, 1) is None

    def test_capacity_map(self):
        top = Weighted(Ring(4), capacity={(1, 2): 3})
        assert top.edge_capacity(1, 2) == 3
        assert top.edge_capacity(2, 1) == 3
        assert top.edge_capacity(3, 4) is None

    def test_graph_is_the_base_graph(self):
        base = Clustered(2, 4)
        top = Weighted(base, latency={(1, 2): (2, 4)})
        assert top.pids == base.pids
        assert sorted(top.edges()) == sorted(base.edges())
        assert top.diameter() == base.diameter()
        assert top.is_weighted and not base.is_weighted
        assert top.name == "weighted[clustered(2x4)]"

    def test_non_edge_rejected(self):
        with pytest.raises(SimulationError):
            Weighted(Ring(6), latency={(1, 4): (1, 2)})

    def test_bad_latency_bounds_rejected(self):
        with pytest.raises(SimulationError):
            Weighted(Ring(4), latency={(1, 2): (0, 3)})
        with pytest.raises(SimulationError):
            Weighted(Ring(4), latency={(1, 2): (5, 3)})

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Weighted(Ring(4), capacity={(1, 2): 0})

    def test_double_wrap_rejected(self):
        with pytest.raises(SimulationError):
            Weighted(Weighted(Ring(4)), latency={(1, 2): (1, 2)})

    def test_weight_stats(self):
        top = Weighted(Ring(4), latency={(1, 2): (5, 9)}, capacity={(2, 3): 2})
        stats = top.weight_stats(default_latency=(1, 3), default_capacity=1)
        assert stats["directed_edges"] == 8
        assert stats["weighted_edges"] == 4  # 2 latency + 2 capacity keys
        assert stats["latency_lo_min"] == 1 and stats["latency_lo_max"] == 5
        assert stats["latency_hi_min"] == 3 and stats["latency_hi_max"] == 9
        assert stats["capacity_min"] == 1 and stats["capacity_max"] == 2


class TestWanPreset:
    def test_clustered_edges_split_local_remote(self):
        base = Clustered(2, 4)
        top = Weighted.wan(base, local=(1, 3), remote=(16, 32))
        for u, v in base.edges():
            expected = (1, 3) if base.cluster_of(u) == base.cluster_of(v) else (16, 32)
            assert top.edge_latency(u, v) == expected
            assert top.edge_latency(v, u) == expected
        assert top.kind == "wan"
        assert top.name == "wan[clustered(2x4)]"

    def test_spec_string(self):
        top = topology_from_spec("wan:4", 32)
        assert isinstance(top, Weighted)
        assert isinstance(top.base, Clustered)
        assert top.base.clusters == 4
        assert top.local_latency == (1, 3)
        assert top.remote_latency == (16, 32)

    def test_spec_divisibility_enforced(self):
        with pytest.raises(SimulationError):
            topology_from_spec("wan:3", 8)


class TestEnginePlumbing:
    def test_delivery_draws_use_edge_bounds(self):
        # Every delivery on the slow edge must arrive >= 50 ticks after the
        # send; the global (1, 3) bounds would arrive within 3.
        top = Weighted(Ring(4), latency={(1, 2): (50, 60)})
        sim = Simulator(4, _pif_build, topology=top, seed=0)
        assert sim.latency_for(1, 2) == (50, 60)
        assert sim.latency_for(2, 3) == (1, 3)

    def test_channel_capacity_sized_from_edge_map(self):
        top = Weighted(Ring(4), capacity={(1, 2): 3})
        sim = Simulator(4, _pif_build, topology=top, seed=0, capacity=1)
        assert sim.network.channel(1, 2).capacity == 3
        assert sim.network.channel(2, 1).capacity == 3
        assert sim.network.channel(2, 3).capacity == 1

    def test_horizon_exceeded_reports_window(self):
        err = HorizonExceeded("trial did not finish", horizon=100, window=16)
        assert "sync window=16" in str(err)
        assert err.window == 16


class TestCrossShardLookahead:
    def test_wan_widens_default_window(self):
        sharded = ShardedSimulator(32, _pif_build, topology="wan:4",
                                   latency=(1, 3), shards=4)
        assert sharded.lookahead == 16
        assert sharded.window == 16

    def test_unweighted_window_unchanged(self):
        sharded = ShardedSimulator(32, _pif_build, topology="clustered:4",
                                   latency=(1, 3))
        assert sharded.lookahead == 1
        assert sharded.window == 1

    def test_window_error_reports_effective_floor(self):
        with pytest.raises(SimulationError) as excinfo:
            ShardedSimulator(32, _pif_build, topology="wan:4",
                             latency=(1, 3), shards=4, window=20)
        message = str(excinfo.value)
        assert "1..16" in message
        assert "cross-shard latency floor" in message
        assert "global lower bound 1" in message

    def test_intra_shard_weights_do_not_widen(self):
        # Slow edges *inside* a shard leave the cut floor at the global lo.
        top = Weighted(Clustered(2, 4), latency={(1, 2): (16, 32)})
        sharded = ShardedSimulator(8, _pif_build, topology=top,
                                   latency=(1, 3), shards=2)
        assert sharded.window == 1


class TestEngineAgreement:
    """Weighted runs: serial is the oracle for sharded and loopback."""

    def _run(self, engine: str, topology, n: int, **kwargs):
        return execute_trial(
            n, _pif_build, topology=topology, seed=0, loss=0.1,
            driver=_PIF_DRIVER, horizon=2_000_000, engine=engine, **kwargs,
        )

    @pytest.mark.parametrize("topology,n", [
        (Weighted(Ring(8), latency={(1, 2): (10, 20), (5, 6): (4, 4)}), 8),
        ("wan:4", 32),
    ], ids=["weighted-ring", "wan-clustered"])
    def test_three_engines_one_canonical_hash(self, topology, n):
        runs = {
            engine: self._run(engine, topology, n)
            for engine in ("serial", "sharded", "async")
        }
        serial = runs["serial"]
        hashes = {e: canonical_trace_hash(r.trace) for e, r in runs.items()}
        assert hashes["sharded"] == hashes["serial"]
        assert hashes["async"] == hashes["serial"]
        for engine in ("sharded", "async"):
            run = runs[engine]
            events = [(e.time, e.kind, e.process, e.data) for e in run.trace]
            assert events == [
                (e.time, e.kind, e.process, e.data) for e in serial.trace
            ]
            assert run.stats.as_dict() == serial.stats.as_dict()
            assert run.final_time == serial.final_time

    def test_per_edge_capacity_bit_identical(self):
        # (1, 5) is the bridge edge; (1, 2) is intra-cluster.
        top = Weighted(Clustered(2, 4), capacity={(1, 5): 2, (1, 2): 3})
        runs = {
            engine: self._run(engine, top, 8)
            for engine in ("serial", "sharded", "async")
        }
        base = canonical_trace_hash(runs["serial"].trace)
        assert canonical_trace_hash(runs["sharded"].trace) == base
        assert canonical_trace_hash(runs["async"].trace) == base
