"""Unit tests for channels and loss models."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.errors import ChannelError
from repro.sim.channel import (
    BernoulliLoss,
    BoundedChannel,
    DropFirstK,
    NoLoss,
    UnboundedChannel,
)


@dataclass(frozen=True)
class Msg:
    tag: str
    body: str = ""


class TestBoundedCapacity:
    def test_admits_up_to_capacity(self):
        ch = BoundedChannel(1, 2, capacity=2)
        assert ch.try_admit(Msg("a"), 0) is not None
        assert ch.try_admit(Msg("a"), 0) is not None
        assert ch.try_admit(Msg("a"), 0) is None  # full -> lost

    def test_capacity_is_per_tag(self):
        ch = BoundedChannel(1, 2, capacity=1)
        assert ch.try_admit(Msg("a"), 0) is not None
        assert ch.try_admit(Msg("b"), 0) is not None  # different instance
        assert ch.try_admit(Msg("a"), 0) is None

    def test_occupancy_tracks_tags(self):
        ch = BoundedChannel(1, 2, capacity=3)
        ch.try_admit(Msg("a"), 0)
        ch.try_admit(Msg("a"), 0)
        ch.try_admit(Msg("b"), 0)
        assert ch.occupancy("a") == 2
        assert ch.occupancy("b") == 1

    def test_invalid_capacity_raises(self):
        with pytest.raises(ChannelError):
            BoundedChannel(1, 2, capacity=0)

    def test_remove_frees_slot(self):
        ch = BoundedChannel(1, 2, capacity=1)
        entry = ch.try_admit(Msg("a"), 0)
        assert ch.is_full_for("a")
        ch.remove(entry)
        assert not ch.is_full_for("a")

    def test_remove_foreign_entry_raises(self):
        ch1 = BoundedChannel(1, 2)
        ch2 = BoundedChannel(2, 1)
        entry = ch1.try_admit(Msg("a"), 0)
        with pytest.raises(ChannelError):
            ch2.remove(entry)


class TestUnbounded:
    def test_never_full(self):
        ch = UnboundedChannel(1, 2)
        for _ in range(500):
            assert ch.try_admit(Msg("a"), 0) is not None
        assert len(ch) == 500
        assert ch.capacity_for("a") is None


class TestInjection:
    def test_inject_respects_capacity(self):
        ch = BoundedChannel(1, 2, capacity=1)
        ch.inject(Msg("a"))
        with pytest.raises(ChannelError):
            ch.inject(Msg("a"))

    def test_inject_on_unbounded_always_succeeds(self):
        ch = UnboundedChannel(1, 2)
        for _ in range(50):
            ch.inject(Msg("a"))
        assert len(ch) == 50


class TestFifo:
    def test_contents_in_order(self):
        ch = UnboundedChannel(1, 2)
        for i in range(5):
            ch.try_admit(Msg("a", str(i)), 0)
        assert [m.body for m in ch.contents()] == ["0", "1", "2", "3", "4"]

    def test_fifo_delivery_time_is_monotone_per_tag(self):
        ch = UnboundedChannel(1, 2)
        t1 = ch.fifo_delivery_time("a", 10)
        t2 = ch.fifo_delivery_time("a", 5)  # proposed earlier than t1
        assert t2 > t1

    def test_fifo_delivery_time_independent_across_tags(self):
        ch = UnboundedChannel(1, 2)
        ch.fifo_delivery_time("a", 10)
        assert ch.fifo_delivery_time("b", 5) == 5

    def test_clear_returns_dropped(self):
        ch = UnboundedChannel(1, 2)
        ch.try_admit(Msg("a"), 0)
        ch.try_admit(Msg("b"), 0)
        dropped = ch.clear()
        assert len(dropped) == 2
        assert len(ch) == 0


class TestLossModels:
    def test_no_loss_never_drops(self):
        rng = random.Random(0)
        model = NoLoss()
        assert not any(model.should_drop(rng, Msg("a")) for _ in range(100))

    def test_bernoulli_rate_roughly_matches(self):
        rng = random.Random(42)
        model = BernoulliLoss(0.3)
        drops = sum(model.should_drop(rng, Msg("a")) for _ in range(10_000))
        assert 2700 < drops < 3300

    def test_bernoulli_rejects_certain_loss(self):
        with pytest.raises(ChannelError):
            BernoulliLoss(1.0)

    def test_bernoulli_rejects_negative(self):
        with pytest.raises(ChannelError):
            BernoulliLoss(-0.1)

    def test_drop_first_k_per_tag(self):
        rng = random.Random(0)
        model = DropFirstK(2)
        results_a = [model.should_drop(rng, Msg("a")) for _ in range(4)]
        results_b = [model.should_drop(rng, Msg("b")) for _ in range(4)]
        assert results_a == [True, True, False, False]
        assert results_b == [True, True, False, False]

    def test_drop_first_k_reset(self):
        rng = random.Random(0)
        model = DropFirstK(1)
        assert model.should_drop(rng, Msg("a"))
        assert not model.should_drop(rng, Msg("a"))
        model.reset()
        assert model.should_drop(rng, Msg("a"))

    def test_drop_first_k_rejects_negative(self):
        with pytest.raises(ChannelError):
            DropFirstK(-1)
