"""Trace-representation regression tests: columnar store vs legacy store.

The PR that introduced the columnar, index-maintaining trace store
(``repro.sim.trace``) must be a pure representation change: emission order,
event content, the canonical trace hash and every spec verdict have to be
identical to the historical list-of-frozen-dataclasses store.  This module
keeps a faithful copy of that legacy store (`LegacyTrace`, storage and cost
model of the pre-overhaul implementation, plus linear-scan shims for the
streaming API the checkers now use), injects it into a serial engine via
the ``_make_trace`` extension point, and asserts:

* query-by-query equivalence on a synthetic trace,
* canonical hash + spec verdict equality on full E3 trials over
  Complete/Ring/Clustered at n <= 16, for the serial engine running the
  legacy store vs the serial, sharded and async-loopback engines running
  the columnar store.
"""

from __future__ import annotations

from typing import Any, Iterator

import pytest

from repro.analysis.runner import execute_trial
from repro.core.pif import PifLayer
from repro.sim.runtime import Simulator
from repro.sim.trace import EventKind, Trace, TraceEvent, canonical_trace_hash
from repro.spec.pif_spec import check_pif

PIF_DRIVER = dict(
    tag="pif", requests_per_process=1, payload=lambda pid, k: f"m-{pid}-{k}"
)

TOPOLOGIES = [None, "ring", "clustered:4"]


class LegacyTrace:
    """The pre-overhaul trace store: a list of frozen TraceEvent objects.

    Kept verbatim in spirit (append a materialized event per emission; every
    query is a linear scan) so regression tests can run the engine against
    the old representation.  The streaming shims at the bottom adapt the old
    storage to the scan/row API today's spec checkers consume — still as
    linear scans, faithful to the legacy cost model.
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def emit(self, time: int, kind: str, process: int | None, **data: Any) -> None:
        self._events.append(TraceEvent(time=time, kind=kind, process=process, data=data))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_process(self, pid: int, *kinds: str) -> list[TraceEvent]:
        wanted = set(kinds) if kinds else None
        return [
            e
            for e in self._events
            if e.process == pid and (wanted is None or e.kind in wanted)
        ]

    def between(self, t0: int, t1: int) -> list[TraceEvent]:
        return [e for e in self._events if t0 <= e.time <= t1]

    def where(self, **fields: Any) -> list[TraceEvent]:
        return [
            e
            for e in self._events
            if all(e.data.get(k) == v for k, v in fields.items())
        ]

    def first(self, kind: str, **fields: Any) -> TraceEvent | None:
        for e in self._events:
            if e.kind == kind and all(e.data.get(k) == v for k, v in fields.items()):
                return e
        return None

    def last(self, kind: str, **fields: Any) -> TraceEvent | None:
        for e in reversed(self._events):
            if e.kind == kind and all(e.data.get(k) == v for k, v in fields.items()):
                return e
        return None

    def extend(self, events) -> None:
        self._events.extend(events)

    # -- streaming shims (legacy cost model: linear scans) ------------------

    def scan(self, *kinds: str):
        wanted = set(kinds) if kinds else None
        for e in self._events:
            if wanted is None or e.kind in wanted:
                yield e.time, e.kind, e.process, e.data

    def kind_rows(self, kind: str) -> list[int]:
        return [i for i, e in enumerate(self._events) if e.kind == kind]

    def data_at(self, row: int) -> dict[str, Any]:
        return self._events[row].data


class LegacySimulator(Simulator):
    """Serial engine wired to the legacy trace store."""

    def _make_trace(self):  # type: ignore[override]
        return LegacyTrace()


def _run_serial_trial(sim_cls, n, topology, seed):
    """The execute_trial serial shape, parameterized over the engine class."""
    from repro.analysis.runner import DRAIN_TICKS
    from repro.core.requests import RequestDriver
    from repro.sim.channel import BernoulliLoss

    sim = sim_cls(
        n,
        lambda h: h.register(PifLayer("pif")),
        topology=topology,
        seed=seed,
        loss=BernoulliLoss(0.1),
    )
    sim.scramble(seed=seed ^ 0x5EED)
    drv = RequestDriver(sim, **PIF_DRIVER)
    assert sim.run(2_000_000, until=lambda s: drv.done)
    sim.run(sim.now + DRAIN_TICKS)
    finals = {p: sim.layer(p, "pif").request for p in sim.pids}
    return sim, finals


def _verdict_key(verdict):
    return (
        verdict.ok,
        [(v.prop, v.detail, v.time, v.process) for v in verdict.violations],
        verdict.info,
    )


def make_synthetic(trace):
    trace.emit(0, EventKind.REQUEST, 1, tag="pif")
    trace.emit(2, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
    trace.emit(5, EventKind.RECEIVE_BRD, 2, tag="pif", sender=1, payload="m")
    trace.emit(5, EventKind.RECEIVE_BRD, 3, tag="pif", sender=1, payload="m")
    trace.emit(8, EventKind.RECEIVE_FCK, 1, tag="pif", sender=2)
    trace.emit(8, EventKind.CS_ENTER, 2, tag="me", requested=True)
    trace.emit(9, EventKind.DECIDE, 1, tag="pif", wave=(1, 1))
    trace.emit(12, EventKind.CS_EXIT, 2, tag="me")
    return trace


class TestQueryEquivalence:
    """Every classic query answers identically on both stores."""

    def setup_method(self):
        self.new = make_synthetic(Trace())
        self.old = make_synthetic(LegacyTrace())

    @staticmethod
    def _cmp(a, b):
        assert [(e.time, e.kind, e.process, e.data) for e in a] == [
            (e.time, e.kind, e.process, e.data) for e in b
        ]

    def test_iteration_and_events(self):
        self._cmp(self.new, self.old)
        self._cmp(self.new.events, self.old.events)
        assert len(self.new) == len(self.old)

    def test_of_kind(self):
        for kinds in [(EventKind.START,), (EventKind.START, EventKind.DECIDE),
                      (EventKind.RECEIVE_BRD, EventKind.CS_ENTER), ("nope",)]:
            self._cmp(self.new.of_kind(*kinds), self.old.of_kind(*kinds))

    def test_for_process(self):
        for pid in (1, 2, 99):
            self._cmp(self.new.for_process(pid), self.old.for_process(pid))
            self._cmp(
                self.new.for_process(pid, EventKind.RECEIVE_BRD),
                self.old.for_process(pid, EventKind.RECEIVE_BRD),
            )

    def test_between_and_where(self):
        self._cmp(self.new.between(2, 8), self.old.between(2, 8))
        self._cmp(self.new.between(99, 100), self.old.between(99, 100))
        self._cmp(self.new.where(sender=1), self.old.where(sender=1))
        self._cmp(self.new.where(tag="me"), self.old.where(tag="me"))

    def test_first_and_last(self):
        for kind, fields in [
            (EventKind.RECEIVE_BRD, {}),
            (EventKind.RECEIVE_BRD, {"sender": 1}),
            (EventKind.DECIDE, {"wave": (1, 1)}),
            (EventKind.NOTE, {}),
        ]:
            new_first = self.new.first(kind, **fields)
            old_first = self.old.first(kind, **fields)
            assert (new_first is None) == (old_first is None)
            if new_first is not None:
                assert (new_first.time, new_first.data) == (old_first.time, old_first.data)
            new_last = self.new.last(kind, **fields)
            old_last = self.old.last(kind, **fields)
            assert (new_last is None) == (old_last is None)
            if new_last is not None:
                assert (new_last.time, new_last.data) == (old_last.time, old_last.data)

    def test_canonical_hash_matches(self):
        assert canonical_trace_hash(self.new) == canonical_trace_hash(self.old)
        assert self.new.canonical_hash() == canonical_trace_hash(self.old)

    def test_non_monotone_between(self):
        new, old = Trace(), LegacyTrace()
        for t in (5, 2, 9, 2, 7):
            new.emit(t, EventKind.NOTE, 1)
            old.emit(t, EventKind.NOTE, 1)
        assert [e.time for e in new.between(2, 7)] == [
            e.time for e in old.between(2, 7)
        ]


class TestEngineRegression:
    """Full trials: legacy store and columnar store agree bit for bit."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_serial_hash_and_verdicts_match_legacy(self, topology):
        legacy_sim, legacy_finals = _run_serial_trial(
            LegacySimulator, 16, topology, seed=0
        )
        new_sim, new_finals = _run_serial_trial(Simulator, 16, topology, seed=0)
        assert isinstance(legacy_sim.trace, LegacyTrace)
        assert isinstance(new_sim.trace, Trace)
        assert canonical_trace_hash(legacy_sim.trace) == canonical_trace_hash(
            new_sim.trace
        )
        assert legacy_finals == new_finals
        neighbors = (
            None
            if new_sim.topology.is_complete
            else {p: new_sim.topology.neighbors(p) for p in new_sim.pids}
        )
        legacy_verdict = check_pif(
            legacy_sim.trace, "pif", legacy_sim.pids,
            final_requests=legacy_finals, neighbors=neighbors,
        )
        new_verdict = check_pif(
            new_sim.trace, "pif", new_sim.pids,
            final_requests=new_finals, neighbors=neighbors,
        )
        assert _verdict_key(legacy_verdict) == _verdict_key(new_verdict)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_loopback_hash_matches_legacy(self, topology):
        legacy_sim, _ = _run_serial_trial(LegacySimulator, 16, topology, seed=0)
        run = execute_trial(
            16, lambda h: h.register(PifLayer("pif")),
            topology=topology, seed=0, loss=0.1,
            driver=PIF_DRIVER, horizon=2_000_000, engine="async",
        )
        assert canonical_trace_hash(run.trace) == canonical_trace_hash(
            legacy_sim.trace
        )

    def test_sharded_hash_matches_legacy(self):
        legacy_sim, _ = _run_serial_trial(
            LegacySimulator, 16, "clustered:4", seed=0
        )
        run = execute_trial(
            16, lambda h: h.register(PifLayer("pif")),
            topology="clustered:4", seed=0, loss=0.1,
            driver=PIF_DRIVER, horizon=2_000_000, engine="sharded",
        )
        assert canonical_trace_hash(run.trace) == canonical_trace_hash(
            legacy_sim.trace
        )
