"""The checkers themselves must detect violations: synthetic-trace tests.

A checker that always says OK would vacuously 'verify' the protocols, so
every property gets a hand-built violating trace here.
"""

from __future__ import annotations

import pytest

from repro.errors import SpecificationViolation
from repro.sim.trace import EventKind, Trace
from repro.spec.idl_spec import check_idl
from repro.spec.mutex_spec import check_mutex, cs_intervals
from repro.spec.pif_spec import check_pif
from repro.spec.waves import extract_waves
from repro.types import RequestState

PIDS = (1, 2, 3)


def good_pif_trace() -> Trace:
    """A perfect single-wave trace: start, brds, fcks, decide."""
    t = Trace()
    t.emit(0, EventKind.REQUEST, 1, tag="pif", payload="m")
    t.emit(1, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
    t.emit(3, EventKind.RECEIVE_BRD, 2, tag="pif", sender=1, payload="m", wave=(1, 1))
    t.emit(4, EventKind.RECEIVE_BRD, 3, tag="pif", sender=1, payload="m", wave=(1, 1))
    t.emit(6, EventKind.RECEIVE_FCK, 1, tag="pif", sender=2, payload="f2", wave=(1, 1))
    t.emit(7, EventKind.RECEIVE_FCK, 1, tag="pif", sender=3, payload="f3", wave=(1, 1))
    t.emit(8, EventKind.DECIDE, 1, tag="pif", wave=(1, 1))
    return t


class TestPifChecker:
    def test_good_trace_passes(self):
        verdict = check_pif(good_pif_trace(), "pif", PIDS)
        assert verdict.ok

    def test_detects_missing_start(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 1, tag="pif")
        verdict = check_pif(t, "pif", PIDS)
        assert not verdict.property_ok("Start")

    def test_detects_unfinished_wave(self):
        t = Trace()
        t.emit(0, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
        verdict = check_pif(t, "pif", PIDS)
        assert not verdict.property_ok("Termination")

    def test_unfinished_wave_tolerated_when_requested(self):
        t = Trace()
        t.emit(0, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
        verdict = check_pif(t, "pif", PIDS, require_all_decided=False)
        assert verdict.property_ok("Termination")

    def test_detects_still_in_at_end(self):
        verdict = check_pif(
            good_pif_trace(), "pif", PIDS,
            final_requests={1: RequestState.DONE, 2: RequestState.IN,
                            3: RequestState.DONE},
        )
        assert not verdict.property_ok("Termination")

    def test_detects_missing_broadcast_receipt(self):
        t = good_pif_trace()
        # Remove p3's brd by rebuilding without it.
        t2 = Trace()
        for e in t:
            if e.kind == EventKind.RECEIVE_BRD and e.process == 3:
                continue
            t2.emit(e.time, e.kind, e.process, **e.data)
        verdict = check_pif(t2, "pif", PIDS)
        assert not verdict.property_ok("Correctness")

    def test_detects_corrupted_payload(self):
        t = Trace()
        t.emit(1, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
        t.emit(3, EventKind.RECEIVE_BRD, 2, tag="pif", sender=1,
               payload="WRONG", wave=(1, 1))
        t.emit(4, EventKind.RECEIVE_BRD, 3, tag="pif", sender=1, payload="m",
               wave=(1, 1))
        t.emit(6, EventKind.RECEIVE_FCK, 1, tag="pif", sender=2, wave=(1, 1))
        t.emit(7, EventKind.RECEIVE_FCK, 1, tag="pif", sender=3, wave=(1, 1))
        t.emit(8, EventKind.DECIDE, 1, tag="pif", wave=(1, 1))
        verdict = check_pif(t, "pif", PIDS)
        assert not verdict.property_ok("Correctness")

    def test_detects_missing_ack(self):
        t = Trace()
        t.emit(1, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
        t.emit(3, EventKind.RECEIVE_BRD, 2, tag="pif", sender=1, payload="m", wave=(1, 1))
        t.emit(4, EventKind.RECEIVE_BRD, 3, tag="pif", sender=1, payload="m", wave=(1, 1))
        t.emit(6, EventKind.RECEIVE_FCK, 1, tag="pif", sender=2, wave=(1, 1))
        t.emit(8, EventKind.DECIDE, 1, tag="pif", wave=(1, 1))
        verdict = check_pif(t, "pif", PIDS)
        assert not verdict.property_ok("Correctness")

    def test_detects_duplicate_ack(self):
        t = good_pif_trace()
        t.emit(7, EventKind.RECEIVE_FCK, 1, tag="pif", sender=3, wave=(1, 1))
        t2 = Trace()
        for e in sorted(t, key=lambda e: e.time):
            t2.emit(e.time, e.kind, e.process, **e.data)
        verdict = check_pif(t2, "pif", PIDS)
        assert not verdict.property_ok("Decision")

    def test_garbage_events_without_wave_ignored(self):
        t = good_pif_trace()
        t.emit(2, EventKind.RECEIVE_BRD, 2, tag="pif", sender=1,
               payload="garbage", wave=None)
        verdict = check_pif(t, "pif", PIDS)
        assert verdict.ok

    def test_other_tags_invisible(self):
        t = good_pif_trace()
        t.emit(2, EventKind.START, 2, tag="other", wave=(2, 1), payload="x")
        verdict = check_pif(t, "pif", PIDS)
        assert verdict.ok

    def test_require_raises(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 1, tag="pif")
        with pytest.raises(SpecificationViolation):
            check_pif(t, "pif", PIDS).require()


class TestWaveExtraction:
    def test_extracts_start_decide_pairs(self):
        waves = extract_waves(good_pif_trace(), "pif")
        assert len(waves) == 1
        wave = waves[0]
        assert wave.pid == 1
        assert wave.decided
        assert wave.duration == 7
        assert set(wave.brd_events) == {2, 3}
        assert set(wave.fck_events) == {2, 3}

    def test_undecided_wave(self):
        t = Trace()
        t.emit(0, EventKind.START, 1, tag="pif", wave=(1, 1), payload="m")
        wave = extract_waves(t, "pif")[0]
        assert not wave.decided
        assert wave.duration is None


class TestIdlChecker:
    def make_trace(self, min_id=1, id_tab=None):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 2, tag="idl")
        t.emit(1, EventKind.START, 2, tag="idl")
        t.emit(9, EventKind.DECIDE, 2, tag="idl", min_id=min_id,
               id_tab=id_tab if id_tab is not None else {1: 1, 3: 3})
        return t

    def test_good_trace_passes(self):
        verdict = check_idl(self.make_trace(), "idl", {1: 1, 2: 2, 3: 3})
        assert verdict.ok

    def test_detects_wrong_minimum(self):
        verdict = check_idl(self.make_trace(min_id=2), "idl", {1: 1, 2: 2, 3: 3})
        assert not verdict.property_ok("Correctness")

    def test_detects_wrong_table(self):
        verdict = check_idl(
            self.make_trace(id_tab={1: 1, 3: 99}), "idl", {1: 1, 2: 2, 3: 3}
        )
        assert not verdict.property_ok("Correctness")

    def test_never_started_decides_unchecked(self):
        t = Trace()
        t.emit(9, EventKind.DECIDE, 2, tag="idl", min_id=42, id_tab={})
        verdict = check_idl(t, "idl", {1: 1, 2: 2, 3: 3})
        assert verdict.ok  # no start -> no guarantee

    def test_detects_unserved_request(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 2, tag="idl")
        verdict = check_idl(t, "idl", {1: 1, 2: 2})
        assert not verdict.property_ok("Start")


class TestMutexChecker:
    def test_overlap_between_requesters_detected(self):
        t = Trace()
        t.emit(10, EventKind.CS_ENTER, 1, tag="me", requested=True)
        t.emit(12, EventKind.CS_ENTER, 2, tag="me", requested=True)
        t.emit(15, EventKind.CS_EXIT, 1, tag="me")
        t.emit(16, EventKind.CS_EXIT, 2, tag="me")
        verdict = check_mutex(t, "me", horizon=20, require_all_served=False)
        assert not verdict.property_ok("Correctness")

    def test_requester_vs_zombie_overlap_detected(self):
        t = Trace()
        t.emit(0, EventKind.CS_ENTER, 1, tag="me", requested=False)
        t.emit(2, EventKind.CS_ENTER, 2, tag="me", requested=True)
        t.emit(5, EventKind.CS_EXIT, 1, tag="me")
        t.emit(6, EventKind.CS_EXIT, 2, tag="me")
        verdict = check_mutex(t, "me", horizon=20, require_all_served=False)
        assert not verdict.property_ok("Correctness")

    def test_zombie_only_overlap_tolerated(self):
        """Footnote 1: non-requesting occupancies carry no guarantee."""
        t = Trace()
        t.emit(0, EventKind.CS_ENTER, 1, tag="me", requested=False)
        t.emit(0, EventKind.CS_ENTER, 2, tag="me", requested=False)
        t.emit(5, EventKind.CS_EXIT, 1, tag="me")
        t.emit(5, EventKind.CS_EXIT, 2, tag="me")
        verdict = check_mutex(t, "me", horizon=20, require_all_served=False)
        assert verdict.ok

    def test_sequential_sections_pass(self):
        t = Trace()
        t.emit(0, EventKind.CS_ENTER, 1, tag="me", requested=True)
        t.emit(5, EventKind.CS_EXIT, 1, tag="me")
        t.emit(5, EventKind.CS_ENTER, 2, tag="me", requested=True)
        t.emit(9, EventKind.CS_EXIT, 2, tag="me")
        verdict = check_mutex(t, "me", horizon=20, require_all_served=False)
        assert verdict.ok

    def test_open_interval_overlaps_via_horizon(self):
        t = Trace()
        t.emit(0, EventKind.CS_ENTER, 1, tag="me", requested=True)  # never exits
        t.emit(50, EventKind.CS_ENTER, 2, tag="me", requested=True)
        t.emit(55, EventKind.CS_EXIT, 2, tag="me")
        verdict = check_mutex(t, "me", horizon=100, require_all_served=False)
        assert not verdict.property_ok("Correctness")

    def test_unserved_request_detected(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 1, tag="me")
        verdict = check_mutex(t, "me", horizon=100)
        assert not verdict.property_ok("Start")

    def test_cs_intervals_reconstruction(self):
        t = Trace()
        t.emit(1, EventKind.CS_ENTER, 1, tag="me", requested=True)
        t.emit(4, EventKind.CS_EXIT, 1, tag="me")
        t.emit(6, EventKind.CS_ENTER, 1, tag="me", requested=False)
        intervals = cs_intervals(t, "me")
        assert len(intervals) == 2
        assert intervals[0].exit == 4
        assert intervals[1].exit is None
        assert not intervals[1].requested


class TestVerdictApi:
    def test_summary_lists_violations(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 1, tag="pif")
        verdict = check_pif(t, "pif", PIDS)
        assert "Start" in verdict.summary()

    def test_by_property_filtering(self):
        t = Trace()
        t.emit(0, EventKind.REQUEST, 1, tag="pif")
        verdict = check_pif(t, "pif", PIDS)
        assert len(verdict.by_property("Start")) == 1
        assert verdict.by_property("Correctness") == []
