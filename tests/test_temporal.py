"""Tests for the temporal combinators, including on real protocol runs."""

from __future__ import annotations

from repro.core.mutex import MutexLayer
from repro.core.requests import RequestDriver
from repro.sim.runtime import Simulator
from repro.sim.trace import EventKind, Trace
from repro.spec.temporal import (
    always,
    count,
    event,
    eventually,
    leads_to,
    never,
    precedes,
)


def make_trace() -> Trace:
    trace = Trace()
    trace.emit(0, EventKind.REQUEST, 1, tag="me")
    trace.emit(5, EventKind.START, 1, tag="me")
    trace.emit(9, EventKind.CS_ENTER, 1, tag="me", requested=True)
    trace.emit(12, EventKind.CS_EXIT, 1, tag="me")
    trace.emit(12, EventKind.DECIDE, 1, tag="me")
    return trace


class TestPredicates:
    def test_event_matches_kind_process_fields(self):
        pred = event(EventKind.CS_ENTER, process=1, requested=True)
        trace = make_trace()
        assert count(trace, pred) == 1
        assert count(trace, event(EventKind.CS_ENTER, process=2)) == 0


class TestEventually:
    def test_found(self):
        result = eventually(make_trace(), event(EventKind.DECIDE))
        assert result
        assert result.witness.time == 12

    def test_not_found(self):
        assert not eventually(make_trace(), event(EventKind.CS_ENTER, process=9))

    def test_after_bound(self):
        assert not eventually(make_trace(), event(EventKind.REQUEST), after=1)


class TestAlwaysNever:
    def test_always_holds(self):
        assert always(make_trace(), lambda e: e.time >= 0)

    def test_always_reports_counterexample(self):
        result = always(make_trace(), lambda e: e.kind != EventKind.START)
        assert not result
        assert result.witness.kind == EventKind.START

    def test_never(self):
        assert never(make_trace(), event(EventKind.DROP_LOSS))
        assert not never(make_trace(), event(EventKind.DECIDE))


class TestLeadsTo:
    def test_satisfied(self):
        assert leads_to(
            make_trace(), event(EventKind.REQUEST), event(EventKind.CS_ENTER)
        )

    def test_unanswered_trigger(self):
        trace = make_trace()
        trace.emit(20, EventKind.REQUEST, 2, tag="me")
        result = leads_to(trace, event(EventKind.REQUEST), event(EventKind.CS_ENTER))
        assert not result
        assert result.witness.time == 20

    def test_within_deadline(self):
        assert not leads_to(
            make_trace(), event(EventKind.REQUEST), event(EventKind.DECIDE),
            within=5,
        )
        assert leads_to(
            make_trace(), event(EventKind.REQUEST), event(EventKind.DECIDE),
            within=12,
        )


class TestPrecedes:
    def test_order_holds(self):
        assert precedes(make_trace(), event(EventKind.START),
                        event(EventKind.CS_ENTER))

    def test_order_violated(self):
        assert not precedes(make_trace(), event(EventKind.CS_ENTER),
                            event(EventKind.START))

    def test_vacuous_without_second(self):
        assert precedes(make_trace(), event(EventKind.START),
                        event(EventKind.DROP_LOSS))


class TestOnRealRun:
    def test_paper_properties_as_temporal_formulas(self):
        """Specification 3 phrased with the combinators, on a real run."""
        sim = Simulator(3, lambda h: h.register(MutexLayer("me")), seed=0)
        sim.scramble(seed=5)
        driver = RequestDriver(sim, "me", requests_per_process=1)
        assert sim.run(3_000_000, until=lambda s: driver.done)
        trace = sim.trace
        # Start: every request leads to a start, and every start to a decide.
        assert leads_to(trace, event(EventKind.REQUEST, tag="me"),
                        event(EventKind.START, tag="me"))
        # Each process's requested CS entry is eventually exited.
        for pid in sim.pids:
            assert leads_to(
                trace,
                event(EventKind.CS_ENTER, process=pid, tag="me", requested=True),
                event(EventKind.CS_EXIT, process=pid, tag="me"),
            )
        # There was at least one requested CS per process.
        for pid in sim.pids:
            assert count(
                trace,
                event(EventKind.CS_ENTER, process=pid, tag="me", requested=True),
            ) >= 1
