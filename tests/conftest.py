"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.idl import IdlLayer
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.sim.runtime import Simulator


def build_pif(host) -> None:
    host.register(PifLayer("pif"))


def build_idl(host) -> None:
    host.register(IdlLayer("idl"))


def build_me(host) -> None:
    host.register(MutexLayer("me"))


@pytest.fixture
def pif_sim() -> Simulator:
    """A three-process system running one PIF instance."""
    return Simulator(3, build_pif, seed=0)


@pytest.fixture
def pif_pair() -> Simulator:
    """A two-process system running one PIF instance, manual mode."""
    return Simulator(2, build_pif, seed=0, auto=False)


@pytest.fixture
def idl_sim() -> Simulator:
    return Simulator(4, build_idl, seed=0)


@pytest.fixture
def me_sim() -> Simulator:
    return Simulator(4, build_me, seed=0)
