"""Unit tests for the initial-configuration adversaries."""

from __future__ import annotations

import random

import pytest

from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.errors import SimulationError
from repro.sim.adversary import (
    figure1_configuration,
    scramble_channels,
    scramble_processes,
    scramble_system,
)
from repro.sim.runtime import Simulator
from repro.types import RequestState


def build_pif(host) -> None:
    host.register(PifLayer("pif"))


class TestScrambleProcesses:
    def test_values_stay_in_domain(self):
        sim = Simulator(3, build_pif, auto=False)
        scramble_processes(sim, random.Random(3))
        for pid in sim.pids:
            layer: PifLayer = sim.layer(pid, "pif")
            assert layer.request in set(RequestState)
            for q in sim.network.peers_of(pid):
                assert 0 <= layer.state[q] <= layer.max_state
                assert 0 <= layer.neig_state[q] <= layer.max_state

    def test_mutex_scramble_domains(self):
        sim = Simulator(4, lambda h: h.register(MutexLayer("me")), auto=False)
        scramble_processes(sim, random.Random(11))
        for pid in sim.pids:
            layer: MutexLayer = sim.layer(pid, "me")
            assert 0 <= layer.phase <= 4
            assert 0 <= layer.value <= sim.network.n - 1

    def test_scramble_emits_trace_event(self):
        sim = Simulator(2, build_pif, auto=False)
        scramble_processes(sim, random.Random(0))
        assert sim.trace.first("scramble", what="processes") is not None


class TestScrambleChannels:
    def test_respects_capacity(self):
        sim = Simulator(3, build_pif, auto=False)
        injected = scramble_channels(sim, random.Random(5), fill_prob=1.0)
        # capacity 1 per tag per direction; 6 ordered pairs, 1 tag.
        assert injected == 6
        for channel in sim.network.channels():
            assert len(channel) <= 1

    def test_unbounded_bounded_by_max_per_tag(self):
        sim = Simulator(2, build_pif, auto=False, unbounded=True)
        injected = scramble_channels(
            sim, random.Random(5), fill_prob=1.0, max_per_tag=2
        )
        assert injected == 4  # 2 per direction
        for channel in sim.network.channels():
            assert len(channel) == 2

    def test_fill_prob_zero_injects_nothing(self):
        sim = Simulator(3, build_pif, auto=False)
        assert scramble_channels(sim, random.Random(5), fill_prob=0.0) == 0

    def test_garbage_is_well_typed(self):
        sim = Simulator(2, build_pif, auto=False)
        scramble_channels(sim, random.Random(5), fill_prob=1.0)
        for channel in sim.network.channels():
            for msg in channel.contents():
                assert msg.tag == "pif"
                assert 0 <= msg.state <= 4


class TestScrambleSystem:
    def test_scramble_system_does_both(self):
        sim = Simulator(3, build_pif, auto=False)
        scramble_system(sim, random.Random(9), fill_prob=1.0)
        assert sim.network.in_flight() > 0

    def test_sim_scramble_wrapper_deterministic(self):
        def states(seed):
            sim = Simulator(3, build_pif, auto=False)
            sim.scramble(seed=seed)
            return sim.snapshot_states()

        assert states(4) == states(4)
        assert states(4) != states(5)


class TestFigure1:
    def test_sets_up_worst_case(self):
        sim = Simulator(2, build_pif, auto=False)
        p, q = figure1_configuration(sim, tag="pif")
        assert (p, q) == (1, 2)
        layer_q: PifLayer = sim.layer(q, "pif")
        assert layer_q.request is RequestState.IN
        assert layer_q.neig_state[p] == 1
        channel = sim.network.channel(q, p)
        assert len(channel) == 1
        assert channel.contents()[0].echo == 0

    def test_requires_two_processes(self):
        sim = Simulator(3, build_pif, auto=False)
        with pytest.raises(SimulationError):
            figure1_configuration(sim)

    def test_requires_pif_layer(self):
        from repro.core.mutex import MutexLayer

        sim = Simulator(2, lambda h: h.register(MutexLayer("me")), auto=False)
        with pytest.raises(SimulationError):
            figure1_configuration(sim, tag="me")
