"""The async runtime's contracts.

* ``engine=async --transport loopback`` is **bit-identical** to
  ``engine=serial`` for the same seed: same trace (event for event,
  including payload data), same stats, same finals, same completions, same
  final time — asserted for E3 (PIF) and E5 (ME) across the Complete, Ring
  and Clustered topologies at n <= 16, plus a seeded parameter fuzz with
  the serial engine as oracle (the hypothesis-powered variant lives in
  ``tests/test_net_properties.py``).
* ``--transport tcp`` runs the same protocol layers over real localhost
  sockets; a smoke trial must complete with every online spec monitor
  passing.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.analysis.runner import EngineRun, execute_trial
from repro.core.mutex import MutexLayer
from repro.core.pif import PifLayer
from repro.errors import HorizonExceeded, SimulationError
from repro.net.clock import PacedClock, VirtualClock
from repro.net.engine import AsyncSimulator
from repro.net.monitors import (
    LiveTrace,
    MutexExclusionMonitor,
    PifWaveMonitor,
    RequestLivenessMonitor,
)
from repro.net import wire
from repro.sim.trace import EventKind


def _pif_build(host) -> None:
    host.register(PifLayer("pif"))


def _me_build(host) -> None:
    host.register(MutexLayer("me", cs_duration=3))


_PIF_DRIVER = dict(
    tag="pif", requests_per_process=1, payload=lambda pid, k: f"m-{pid}-{k}"
)
_ME_DRIVER = dict(tag="me", requests_per_process=1)


def _both(n, build, driver, *, topology, seed, loss=0.0,
          horizon=4_000_000) -> tuple[EngineRun, EngineRun]:
    runs = []
    for engine in ("serial", "async"):
        runs.append(
            execute_trial(
                n, build, topology=topology, seed=seed, loss=loss,
                driver=driver, horizon=horizon, engine=engine,
            )
        )
    return runs[0], runs[1]


def _assert_bit_identical(serial: EngineRun, loopback: EngineRun) -> None:
    serial_events = [(e.time, e.kind, e.process, e.data) for e in serial.trace]
    loopback_events = [(e.time, e.kind, e.process, e.data) for e in loopback.trace]
    assert serial_events == loopback_events
    assert serial.stats.as_dict() == loopback.stats.as_dict()
    assert dict(serial.stats.sent_by_tag) == dict(loopback.stats.sent_by_tag)
    assert serial.finals == loopback.finals
    assert serial.completions == loopback.completions
    assert serial.completed == loopback.completed
    assert serial.final_time == loopback.final_time


class TestLoopbackBitIdentity:
    """Acceptance: Complete, Ring and Clustered at n <= 16, same seed."""

    @pytest.mark.parametrize(
        "n,topology",
        [(16, None), (16, "ring"), (16, "clustered:4")],
        ids=["complete", "ring", "clustered"],
    )
    def test_pif_trace_bit_identical(self, n, topology):
        serial, loopback = _both(
            n, _pif_build, _PIF_DRIVER, topology=topology, seed=0, loss=0.1,
        )
        _assert_bit_identical(serial, loopback)

    @pytest.mark.parametrize(
        "n,topology",
        [(8, None), (8, "ring"), (16, "clustered:4")],
        ids=["complete", "ring", "clustered"],
    )
    def test_mutex_trace_bit_identical(self, n, topology):
        # ME exercises busy windows, call_later timers and parked
        # dispatches — the paths where a coroutine runtime could diverge.
        # Ring/Complete run at n=8 (ME ring convergence cost grows steeply
        # with n — see docs/engine.md); Clustered covers n=16.
        serial, loopback = _both(
            n, _me_build, _ME_DRIVER, topology=topology, seed=1, loss=0.1,
        )
        _assert_bit_identical(serial, loopback)

    def test_loopback_monitors_pass_when_spec_passes(self):
        _, loopback = _both(
            8, _pif_build, _PIF_DRIVER, topology="clustered:2", seed=2, loss=0.2,
        )
        assert loopback.monitor_reports
        assert loopback.monitors_ok
        assert loopback.engine == "async"
        assert loopback.transport == "loopback"

    def test_different_seeds_differ(self):
        _, run_a = _both(8, _pif_build, _PIF_DRIVER, topology="ring", seed=0)
        _, run_b = _both(8, _pif_build, _PIF_DRIVER, topology="ring", seed=1)
        a = [(e.time, e.kind, e.process, e.data) for e in run_a.trace]
        b = [(e.time, e.kind, e.process, e.data) for e in run_b.trace]
        assert a != b


class TestSeededFuzzOracle:
    """Hypothesis-style seeded fuzz: serial output is the oracle.

    Parameters (topology family, loss rate, scramble on/off) are derived
    deterministically from the case seed, so the sweep covers the axis
    product without a hypothesis dependency (CI runs this everywhere; the
    shrinking variant is in test_net_properties.py).
    """

    TOPOLOGIES = [None, "ring", "star", "clustered:2", "gnp:0.5"]
    LOSSES = [0.0, 0.1, 0.3]

    @pytest.mark.parametrize("case", range(10))
    def test_fuzzed_config_matches_serial(self, case):
        topology = self.TOPOLOGIES[case % len(self.TOPOLOGIES)]
        loss = self.LOSSES[case % len(self.LOSSES)]
        scramble = case % 2 == 0
        n = 4 + (case * 3) % 5  # 4..8
        runs = []
        for engine in ("serial", "async"):
            runs.append(
                execute_trial(
                    n, _pif_build, topology=topology, seed=case,
                    loss=loss, scramble=scramble, driver=_PIF_DRIVER,
                    horizon=2_000_000, engine=engine,
                )
            )
        _assert_bit_identical(runs[0], runs[1])


class TestTcpTransport:
    """Real sockets: best-effort timing, online-monitor-checked."""

    def test_e3_over_tcp_completes_with_monitors_passing(self):
        try:
            run = execute_trial(
                4, _pif_build, seed=0, driver=_PIF_DRIVER,
                horizon=30_000, engine="async", transport="tcp",
            )
        except OSError as exc:  # pragma: no cover - sandboxed networking
            pytest.skip(f"cannot bind localhost sockets here: {exc}")
        assert run.completed
        assert run.monitor_reports
        assert run.monitors_ok, [r.violations for r in run.monitor_reports]
        assert run.stats.delivered > 0
        assert run.transport == "tcp"

    def test_tcp_trial_is_spec_correct_offline_too(self):
        from repro.spec.pif_spec import check_pif

        try:
            run = execute_trial(
                4, _pif_build, seed=3, loss=0.1, driver=_PIF_DRIVER,
                horizon=30_000, engine="async", transport="tcp",
            )
        except OSError as exc:  # pragma: no cover - sandboxed networking
            pytest.skip(f"cannot bind localhost sockets here: {exc}")
        verdict = check_pif(run.trace, "pif", run.pids, final_requests=run.finals)
        assert verdict.ok, verdict.violations


class TestWireFormat:
    def test_message_frame_roundtrip(self):
        from repro.core.messages import PifMessage

        msg = PifMessage(tag="pif", broadcast="b", feedback="f", state=2, echo=1)
        frame = wire.encode_message(41, msg)

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await wire.read_frame(reader)

        kind, payload = asyncio.run(decode())
        assert kind == wire.MESSAGE
        seq, decoded = wire.decode_message(payload)
        assert seq == 41
        assert decoded == msg

    def test_hello_roundtrip(self):
        frame = wire.encode_hello(7)

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await wire.read_frame(reader)

        kind, payload = asyncio.run(decode())
        assert kind == wire.HELLO
        assert wire.decode_hello(payload) == 7

    def test_version_mismatch_rejected(self):
        frame = bytearray(wire.encode_hello(1))
        frame[1] = 99  # version byte

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(frame))
            reader.feed_eof()
            return await wire.read_frame(reader)

        with pytest.raises(wire.WireError):
            asyncio.run(decode())

    def test_undecodable_payload_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_message(b"\x80\x04 this is not a pickle")
        assert pickle  # silence linters: imported for clarity of intent


class TestClocks:
    def test_paced_clock_clamps_past_schedules(self):
        clock = PacedClock(0.001)
        clock._now = 50
        clock.post_at(10, lambda: None)  # would raise on the base Scheduler
        assert clock._queue[0][0] == 50

    def test_virtual_clock_mirrors_run_until_time_advance(self):
        clock = VirtualClock()
        fired = []
        clock.post_at(5, lambda: fired.append(clock.now))

        async def drive():
            async def route(key, fn):
                fn()
            return await clock.drive(100, route)

        asyncio.run(drive())
        assert fired == [5]
        assert clock.now == 100  # trailing advance, like Scheduler.run_until


class TestValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(SimulationError):
            AsyncSimulator(4, _pif_build, transport="carrier-pigeon")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            execute_trial(3, _pif_build, driver=_PIF_DRIVER, horizon=10,
                          engine="quantum")

    def test_round_budget_requires_serial(self):
        with pytest.raises(SimulationError):
            execute_trial(3, _me_build, driver=_ME_DRIVER, horizon=10,
                          engine="async", round_budget=5)

    def test_transport_without_async_engine_rejected(self):
        # A tcp transport on the serial engine would silently run in
        # process; refuse instead (the classic forgotten --engine async).
        with pytest.raises(SimulationError):
            execute_trial(3, _pif_build, driver=_PIF_DRIVER, horizon=10,
                          engine="serial", transport="tcp")
        with pytest.raises(SimulationError):
            execute_trial(3, _pif_build, driver=_PIF_DRIVER, horizon=10,
                          engine="serial", tick=0.01)

    def test_shards_without_sharded_engine_rejected(self):
        with pytest.raises(SimulationError):
            execute_trial(3, _pif_build, driver=_PIF_DRIVER, horizon=10,
                          engine="async", shards=2)
        with pytest.raises(SimulationError):
            execute_trial(3, _pif_build, driver=_PIF_DRIVER, horizon=10,
                          engine="serial", window=1)

    def test_run_trial_is_single_use(self):
        asim = AsyncSimulator(3, _pif_build, seed=0)
        asim.run_trial(horizon=100_000, driver=_PIF_DRIVER, drain=200)
        with pytest.raises(SimulationError):
            asim.run_trial(horizon=100_000, driver=_PIF_DRIVER, drain=200)


class TestRoundBudget:
    def test_exhausted_budget_raises_horizon_exceeded(self):
        from repro.analysis.runner import run_mutex_trial

        with pytest.raises(HorizonExceeded) as excinfo:
            run_mutex_trial(8, seed=0, topology="ring",
                            requests_per_process=1, round_budget=2)
        err = excinfo.value
        assert err.rounds is not None and err.rounds > 2
        assert err.served is not None and err.requested == 8

    def test_generous_budget_completes(self):
        from repro.analysis.runner import run_mutex_trial

        # A completing ring trial uses ~2n grants; 4n is generous.
        trial = run_mutex_trial(8, seed=0, topology="ring",
                                requests_per_process=1, round_budget=32)
        assert trial.ok
        assert trial.measurements["completed"]


class TestOnlineMonitors:
    def test_mutex_monitor_flags_overlap(self):
        trace = LiveTrace()
        monitor = MutexExclusionMonitor("me")
        trace.attach(monitor)
        trace.emit(1, EventKind.CS_ENTER, 1, tag="me", requested=True)
        trace.emit(2, EventKind.CS_ENTER, 2, tag="me", requested=True)
        report = monitor.report()
        assert not report.ok
        assert "overlap" in report.violations[0]

    def test_mutex_monitor_ignores_cross_cluster_overlap(self):
        monitor = MutexExclusionMonitor("me", clusters=[{1, 2}, {3, 4}])
        trace = LiveTrace()
        trace.attach(monitor)
        trace.emit(1, EventKind.CS_ENTER, 1, tag="me", requested=True)
        trace.emit(2, EventKind.CS_ENTER, 3, tag="me", requested=True)
        assert monitor.report().ok

    def test_pif_monitor_flags_missing_ack(self):
        monitor = PifWaveMonitor("pif", pids=(1, 2, 3))
        trace = LiveTrace()
        trace.attach(monitor)
        trace.emit(1, EventKind.START, 1, tag="pif", wave=(1, 1), payload="x")
        trace.emit(2, EventKind.RECEIVE_BRD, 2, tag="pif", wave=(1, 1),
                   sender=1, payload="x")
        trace.emit(3, EventKind.RECEIVE_BRD, 3, tag="pif", wave=(1, 1),
                   sender=1, payload="x")
        trace.emit(4, EventKind.RECEIVE_FCK, 1, tag="pif", wave=(1, 1), sender=2)
        trace.emit(5, EventKind.DECIDE, 1, tag="pif", wave=(1, 1))
        report = monitor.report()
        assert not report.ok
        assert any("acknowledgment from 3" in v for v in report.violations)

    def test_liveness_monitor_flags_unanswered_request(self):
        monitor = RequestLivenessMonitor("pif")
        trace = LiveTrace()
        trace.attach(monitor)
        trace.emit(1, EventKind.REQUEST, 1, tag="pif")
        assert not monitor.report().ok
        trace.emit(2, EventKind.DECIDE, 1, tag="pif")
        assert monitor.report().ok
