"""Tests for the Definition 5 formalization (safety-distributed specs)."""

from __future__ import annotations

from repro.sim.configuration import AbstractConfiguration
from repro.spec.safety_distributed import (
    BadFactor,
    concurrent_cs_count,
    mutual_exclusion_spec,
)


def cfg(in_cs: dict[int, bool]) -> AbstractConfiguration:
    return AbstractConfiguration(
        states={pid: {"me": {"in_cs": v}} for pid, v in in_cs.items()}
    )


class TestBadFactor:
    def test_single_predicate_window(self):
        factor = BadFactor(
            "two-in-cs", (lambda c: concurrent_cs_count(c) >= 2,)
        )
        configs = [
            cfg({1: False, 2: False}),
            cfg({1: True, 2: True}),
            cfg({1: False, 2: False}),
        ]
        assert factor.find(configs) == 1
        assert factor.matches(configs)

    def test_no_match(self):
        factor = BadFactor("two-in-cs", (lambda c: concurrent_cs_count(c) >= 2,))
        configs = [cfg({1: True, 2: False}), cfg({1: False, 2: True})]
        assert factor.find(configs) is None

    def test_multi_predicate_window_must_be_contiguous(self):
        factor = BadFactor(
            "rise",
            (
                lambda c: concurrent_cs_count(c) == 1,
                lambda c: concurrent_cs_count(c) == 2,
            ),
        )
        ok = [cfg({1: True, 2: False}), cfg({1: True, 2: True})]
        assert factor.matches(ok)
        gap = [cfg({1: True, 2: False}), cfg({1: False, 2: False}),
               cfg({1: True, 2: True})]
        assert not factor.matches(gap)

    def test_window_longer_than_sequence(self):
        factor = BadFactor("x", (lambda c: True, lambda c: True))
        assert not factor.matches([cfg({1: True})])

    def test_len(self):
        assert len(BadFactor("x", (lambda c: True,))) == 1


class TestConcurrencyCount:
    def test_counts_in_cs_flags(self):
        assert concurrent_cs_count(cfg({1: True, 2: True, 3: False})) == 2

    def test_missing_layer_counts_zero(self):
        config = AbstractConfiguration(states={1: {"other": {}}})
        assert concurrent_cs_count(config) == 0

    def test_custom_tag(self):
        config = AbstractConfiguration(states={1: {"mx": {"in_cs": True}}})
        assert concurrent_cs_count(config, tag="mx") == 1


class TestMutualExclusionSpec:
    def test_violated_by_concurrent_cs(self):
        spec = mutual_exclusion_spec()
        assert spec.violated_by([cfg({1: True, 2: True})])

    def test_not_violated_by_solo_cs(self):
        spec = mutual_exclusion_spec()
        assert not spec.violated_by([cfg({1: True, 2: False})])

    def test_concurrency_threshold(self):
        spec = mutual_exclusion_spec(concurrency=3)
        assert not spec.violated_by([cfg({1: True, 2: True, 3: False})])
        assert spec.violated_by([cfg({1: True, 2: True, 3: True})])
