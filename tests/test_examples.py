"""The shipped examples must run clean (they assert their own claims)."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, timeout: int = 300) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.mark.parametrize(
    "name, needle",
    [
        ("quickstart.py", "All answers exact"),
        ("impossibility_demo.py", "mutual exclusion violated: True"),
        ("cluster_services.py", "behaved to spec"),
    ],
)
def test_example_runs_clean(name, needle):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout


def test_mutual_exclusion_example():
    result = run_example("mutual_exclusion.py")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Zero concurrent accesses" in result.stdout


def test_fault_injection_example():
    result = run_example("fault_injection.py", timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "no stabilization delay" in result.stdout
