"""Tests for the external request driver."""

from __future__ import annotations

import pytest

from repro.core.pif import PifLayer
from repro.core.requests import CompletedRequest, RequestDriver
from repro.errors import ProtocolError
from repro.sim.runtime import Simulator
from repro.types import RequestState


def build(host) -> None:
    host.register(PifLayer("pif"))


class TestDriver:
    def test_issues_requested_count(self):
        sim = Simulator(3, build, seed=0)
        driver = RequestDriver(
            sim, "pif", requests_per_process=2, payload=lambda pid, k: "m"
        )
        assert sim.run(500_000, until=lambda s: driver.done)
        assert driver.total_completed() == 6

    def test_respects_hypothesis_1(self):
        """Never re-request while the layer is not Done."""
        sim = Simulator(2, build, seed=1)
        seen_states = []

        original = PifLayer.request_broadcast

        def spy(self, payload):
            seen_states.append(self.request)
            original(self, payload)

        PifLayer.request_broadcast = spy
        try:
            driver = RequestDriver(
                sim, "pif", requests_per_process=3, payload=lambda pid, k: "m"
            )
            assert sim.run(500_000, until=lambda s: driver.done)
        finally:
            PifLayer.request_broadcast = original
        assert all(s is RequestState.DONE for s in seen_states)

    def test_waits_out_scrambled_in_state(self):
        sim = Simulator(2, build, seed=2)
        # Both processes start mid-computation (never-started garbage).
        for p in sim.pids:
            layer = sim.layer(p, "pif")
            layer.request = RequestState.IN
            for q in sim.network.peers_of(p):
                layer.state[q] = 0
        driver = RequestDriver(
            sim, "pif", requests_per_process=1, payload=lambda pid, k: "m"
        )
        assert sim.run(500_000, until=lambda s: driver.done)
        assert driver.total_completed() == 2

    def test_latencies_positive(self):
        sim = Simulator(2, build, seed=3)
        driver = RequestDriver(
            sim, "pif", requests_per_process=1, payload=lambda pid, k: "m"
        )
        assert sim.run(500_000, until=lambda s: driver.done)
        assert all(lat > 0 for lat in driver.latencies())
        assert len(driver.latencies()) == 2

    def test_subset_of_processes(self):
        sim = Simulator(3, build, seed=4)
        driver = RequestDriver(
            sim, "pif", pids=[2], requests_per_process=2,
            payload=lambda pid, k: "m",
        )
        assert sim.run(500_000, until=lambda s: driver.done)
        assert driver.total_completed() == 2
        assert all(r.pid == 2 for r in driver.completed())

    def test_completed_per_pid(self):
        sim = Simulator(2, build, seed=5)
        driver = RequestDriver(
            sim, "pif", requests_per_process=2, payload=lambda pid, k: "m"
        )
        assert sim.run(500_000, until=lambda s: driver.done)
        assert len(driver.completed(1)) == 2
        assert len(driver.completed(2)) == 2

    def test_payload_function_receives_sequence(self):
        sim = Simulator(2, build, seed=6)
        payloads = []

        def payload(pid, k):
            payloads.append((pid, k))
            return f"{pid}-{k}"

        driver = RequestDriver(sim, "pif", requests_per_process=2, payload=payload)
        assert sim.run(500_000, until=lambda s: driver.done)
        assert sorted(payloads) == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_rejects_negative_count(self):
        sim = Simulator(2, build, seed=7)
        with pytest.raises(ProtocolError):
            RequestDriver(sim, "pif", requests_per_process=-1)

    def test_zero_requests_done_immediately(self):
        sim = Simulator(2, build, seed=8)
        driver = RequestDriver(sim, "pif", requests_per_process=0)
        sim.run(100)
        assert driver.done
        assert driver.total_completed() == 0

    def test_latency_property(self):
        r = CompletedRequest(pid=1, issued_at=10, completed_at=35)
        assert r.latency == 25
