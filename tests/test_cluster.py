"""Tests for the multi-host cluster runtime (repro.net.cluster).

The expensive property — windowed cluster trials reproduce serial trace
metrics and the canonical trace hash bit-for-bit — is checked here on one
small case per protocol (the full matrix lives in
``benchmarks/check_cluster_equivalence.py``).  The rest exercises the
coordinator's validation surface, the picklable protocol/driver specs,
and :meth:`Partition.peer_shards`.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import execute_trial, run_mutex_trial, run_pif_trial
from repro.core.pif import PifLayer
from repro.errors import SimulationError
from repro.net.cluster import (
    ClusterSimulator,
    build_protocol,
    parse_hostport,
    payload_from_fmt,
)
from repro.sim.partition import partition_topology
from repro.sim.topology import Ring, topology_from_spec
from repro.sim.trace import canonical_trace_hash


# -- serial equivalence (the tentpole property) ---------------------------


def test_windowed_cluster_is_bit_identical_to_serial():
    driver = dict(tag="pif", requests_per_process=1,
                  payload_fmt="m-{pid}-{k}")
    runs = {}
    for engine, extra in (("serial", {}), ("cluster", {"hosts": 2})):
        runs[engine] = execute_trial(
            6, lambda h: h.register(PifLayer("pif")),
            topology="complete", seed=0, loss=0.1,
            driver=dict(driver), horizon=2_000_000, engine=engine,
            protocol={"kind": "pif"}, **extra,
        )
    serial, cluster = runs["serial"], runs["cluster"]
    assert [(e.time, e.kind, e.process, e.data) for e in serial.trace] == \
           [(e.time, e.kind, e.process, e.data) for e in cluster.trace]
    assert canonical_trace_hash(serial.trace) == \
           canonical_trace_hash(cluster.trace)
    assert serial.stats.as_dict() == cluster.stats.as_dict()
    assert serial.final_time == cluster.final_time
    assert serial.completions == cluster.completions


def test_cluster_mutex_trial_matches_serial_metrics():
    serial = run_mutex_trial(5, loss=0.0, requests_per_process=1)
    cluster = run_mutex_trial(5, loss=0.0, requests_per_process=1,
                              engine="cluster", hosts=2)
    assert cluster.ok
    assert cluster.measurements == serial.measurements
    assert cluster.provenance["hosts"] == 2
    assert cluster.provenance["sync"] == "windowed"
    assert cluster.provenance["barriers"] > 0
    assert cluster.provenance["registry_round_trips"] == 4
    assert cluster.provenance["monitors_ok"]


def test_freerun_cluster_passes_online_monitors():
    trial = run_pif_trial(6, loss=0.1, requests_per_process=1,
                          engine="cluster", hosts=2, sync="freerun")
    assert trial.ok
    assert trial.provenance["sync"] == "freerun"
    assert trial.provenance["monitors_ok"]


# -- coordinator validation ----------------------------------------------


def test_cluster_requires_picklable_protocol_spec():
    with pytest.raises(SimulationError, match="picklable protocol spec"):
        ClusterSimulator(6, None)


def test_cluster_rejects_unknown_protocol_kind():
    with pytest.raises(SimulationError, match="unknown protocol kind"):
        ClusterSimulator(6, {"kind": "nope"})


def test_cluster_rejects_unknown_sync_mode():
    with pytest.raises(SimulationError, match="sync mode"):
        ClusterSimulator(6, {"kind": "pif"}, sync="lockstep")


def test_cluster_window_bounded_by_lookahead():
    with pytest.raises(SimulationError, match="window must be in 1..1"):
        ClusterSimulator(6, {"kind": "pif"}, hosts=2, window=5)


def test_wan_topology_widens_cluster_window():
    top = topology_from_spec("wan:2", 6, seed=0)
    sim = ClusterSimulator(None, {"kind": "pif"}, topology=top, hosts=2)
    assert sim.window == sim.lookahead > 1


def test_cluster_rejects_callable_driver_payload():
    sim = ClusterSimulator(6, {"kind": "pif"}, hosts=2)
    driver = dict(tag="pif", requests_per_process=1,
                  payload=lambda pid, k: f"m-{pid}-{k}")
    with pytest.raises(SimulationError, match="payload_fmt"):
        sim.run_trial(horizon=100, driver=driver)


def test_cluster_drain_must_cover_window():
    sim = ClusterSimulator(6, {"kind": "pif"}, hosts=2)
    with pytest.raises(SimulationError, match="drain"):
        sim.run_trial(horizon=100, drain=0)


def test_execute_trial_rejects_hosts_without_cluster_engine():
    driver = dict(tag="pif", requests_per_process=1,
                  payload_fmt="m-{pid}-{k}")
    with pytest.raises(SimulationError, match="engine='cluster'"):
        execute_trial(4, lambda h: h.register(PifLayer("pif")),
                      driver=driver, horizon=100, hosts=2)


def test_execute_trial_rejects_shards_with_cluster_engine():
    driver = dict(tag="pif", requests_per_process=1,
                  payload_fmt="m-{pid}-{k}")
    with pytest.raises(SimulationError, match="shards requires engine='sharded'"):
        execute_trial(4, lambda h: h.register(PifLayer("pif")),
                      driver=driver, horizon=100,
                      engine="cluster", shards=2, protocol={"kind": "pif"})


# -- picklable specs ------------------------------------------------------


def test_build_protocol_resolves_builders():
    build = build_protocol({"kind": "me", "cs_duration": 5})
    assert callable(build)


def test_payload_from_fmt_matches_lambda_convention():
    payload = payload_from_fmt("msg-{pid}-{k}")
    assert payload(3, 1) == "msg-3-1"


def test_parse_hostport():
    assert parse_hostport("127.0.0.1:4000") == ("127.0.0.1", 4000)
    with pytest.raises(SimulationError, match="HOST:PORT"):
        parse_hostport("localhost")
    with pytest.raises(SimulationError, match="bad port"):
        parse_hostport("localhost:http")


# -- Partition.peer_shards ------------------------------------------------


def test_ring_peer_shards_are_neighbours_only():
    # Explicit contiguous blocks on a 12-ring: each shard touches exactly
    # its two neighbouring arcs.
    from repro.sim.partition import Partition

    shards = ((1, 2, 3), (4, 5, 6), (7, 8, 9), (10, 11, 12))
    partition = Partition(topology=Ring(range(1, 13)), shards=shards)
    for shard in range(4):
        assert partition.peer_shards(shard) == tuple(sorted(
            {(shard - 1) % 4, (shard + 1) % 4}
        ))


def test_complete_peer_shards_are_everyone_else():
    partition = partition_topology(topology_from_spec("complete", 8, seed=0), 3)
    for shard in range(3):
        assert partition.peer_shards(shard) == tuple(
            s for s in range(3) if s != shard
        )


def test_peer_shards_rejects_out_of_range():
    partition = partition_topology(topology_from_spec("complete", 6, seed=0), 2)
    with pytest.raises(SimulationError, match="shard must be in"):
        partition.peer_shards(2)
