"""Fault injection + crash recovery (repro.chaos) against real workers.

Three layers of coverage:

* **Unit** — the :class:`~repro.chaos.Backoff` schedule pinned with a
  seeded jitter stream and a fake clock (no sleeping), and the FaultPlan
  DSL parser with its validation surface.
* **Integration** — a real two-worker cluster trial killed at every
  supported phase (rendezvous / peering / barrier / mid-round): the run
  must either surface a :class:`~repro.errors.WorkerCrashed` diagnostic
  carrying the shard id and stderr tail within seconds (never by timing
  out), or recover via barrier-checkpoint replay and stay bit-identical
  to the serial oracle.  Ship faults (drop/duplicate/corrupt), link cuts
  and stalls must likewise leave the canonical trace untouched.
* **Property** — a hypothesis fuzz over fault schedules (crash round x
  shard x link cuts) asserting post-recovery bit-identity against the
  serial oracle.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.analysis.runner import execute_trial, run_pif_trial
from repro.chaos import Backoff, FaultPlan, parse_fault_plan, retry_async
from repro.core.pif import PifLayer
from repro.errors import ConfigurationError, SimulationError, WorkerCrashed
from repro.sim.trace import canonical_trace_hash

# -- Backoff: schedule + retry loop under a fake clock --------------------


def test_backoff_delays_grow_to_cap_deterministically():
    policy = Backoff(initial=0.1, factor=2.0, cap=0.8, jitter=0.0)
    gen = policy.delays()
    assert [round(next(gen), 6) for _ in range(6)] == [
        0.1, 0.2, 0.4, 0.8, 0.8, 0.8
    ]


def test_backoff_seeded_jitter_is_reproducible_and_bounded():
    policy = Backoff(initial=0.1, factor=2.0, cap=1.0, jitter=0.5, seed=7)
    first = [next(policy.delays()) for _ in range(1)]
    a = policy.delays()
    b = policy.delays()
    seq_a = [next(a) for _ in range(8)]
    seq_b = [next(b) for _ in range(8)]
    assert seq_a == seq_b  # same seed, same stream
    assert first[0] == seq_a[0]
    nominal = 0.1
    for delay in seq_a:
        assert 0.5 * nominal <= delay <= 1.5 * nominal
        nominal = min(nominal * 2.0, 1.0)


def test_backoff_rejects_bad_parameters():
    with pytest.raises(SimulationError, match="initial"):
        Backoff(initial=0.0)
    with pytest.raises(SimulationError, match="factor"):
        Backoff(factor=0.5)
    with pytest.raises(SimulationError, match="cap"):
        Backoff(initial=1.0, cap=0.5)
    with pytest.raises(SimulationError, match="jitter"):
        Backoff(jitter=1.0)


def test_retry_async_retries_then_succeeds_without_sleeping():
    fake_now = [0.0]
    slept: list[float] = []

    async def fake_sleep(delay: float) -> None:
        slept.append(delay)
        fake_now[0] += delay

    attempts = [0]

    async def op() -> str:
        attempts[0] += 1
        if attempts[0] < 4:
            raise OSError("connection refused")
        return "connected"

    retries: list[float] = []

    async def main():
        return await retry_async(
            op,
            backoff=Backoff(initial=0.05, factor=2.0, cap=2.0, jitter=0.0),
            timeout=30.0,
            describe="test dial",
            clock=lambda: fake_now[0],
            sleep=fake_sleep,
            on_retry=retries.append,
        )

    assert asyncio.run(main()) == "connected"
    assert attempts[0] == 4
    assert slept == [0.05, 0.1, 0.2]
    assert retries == slept


def test_retry_async_deadline_raises_simulation_error():
    fake_now = [0.0]

    async def fake_sleep(delay: float) -> None:
        fake_now[0] += delay

    async def op() -> None:
        raise OSError("still down")

    async def main():
        await retry_async(
            op,
            backoff=Backoff(initial=1.0, factor=2.0, cap=8.0, jitter=0.0),
            timeout=5.0,
            describe="doomed dial",
            clock=lambda: fake_now[0],
            sleep=fake_sleep,
        )

    with pytest.raises(SimulationError, match="doomed dial failed after 5s"):
        asyncio.run(main())


def test_retry_async_passes_through_non_retryable():
    async def op() -> None:
        raise ValueError("logic bug")

    async def main():
        await retry_async(
            op, backoff=Backoff(jitter=0.0), timeout=5.0, describe="dial"
        )

    with pytest.raises(ValueError, match="logic bug"):
        asyncio.run(main())


# -- FaultPlan DSL: parsing + validation ----------------------------------


def test_parse_every_statement_form():
    plan = parse_fault_plan(
        """
        # a comment line
        crash worker 2 at barrier 5
        crash worker 0 at rendezvous; crash worker 1 at round 3
        cut link 1->3 for rounds 4..8
        cut link 0->2 at round 2 for 1.5s
        drop ship from 1 to 3 round 2..4 count 2
        duplicate ship from 2
        corrupt ship to 4 count 3
        stall worker 1 at round 2 for 0.5s
        stall registry 2s
        """
    )
    assert len(plan.faults) == 10
    assert plan.crash_token(2) == "barrier:5"
    assert plan.crash_token(0) == "rendezvous"
    assert plan.crash_token(1) == "round:3"
    assert plan.crash_token(9) is None
    assert plan.requires_cluster()
    assert bool(plan)
    assert not bool(FaultPlan.parse(""))


def test_parse_cut_round_range_converts_to_seconds():
    plan = parse_fault_plan("cut link 1->3 for rounds 4..8")
    cut = plan.faults[0]
    assert (cut.src_shard, cut.dst_shard) == (1, 3)
    assert cut.start_round == 4
    assert cut.seconds == pytest.approx(5 * 0.25)


@pytest.mark.parametrize("bad, match", [
    ("crash worker 1 at nowhere", "unknown crash phase"),
    ("crash worker 1 at barrier 0", "rounds are 1-based"),
    ("explode worker 1", "unknown fault"),
    ("drop ship count 0", "count"),
    ("cut link 3 for rounds 1..2", "A->B"),
    ("cut link 1->2 for rounds 5..4", "range"),
])
def test_parse_rejects_malformed_statements(bad, match):
    with pytest.raises(ConfigurationError, match=match):
        parse_fault_plan(bad)


def test_worker_slice_routes_faults_to_owning_shard():
    plan = parse_fault_plan(
        "cut link 0->1 at round 2 for 1s\n"
        "drop ship from 3 count 2\n"
        "duplicate ship\n"
        "stall worker 1 at round 4 for 0.5s\n"
        "crash worker 0 at barrier 2"
    )
    shard_of = {1: 0, 2: 0, 3: 1, 4: 1}
    slice0 = plan.worker_slice(0, shard_of)
    slice1 = plan.worker_slice(1, shard_of)
    assert slice0["cuts"] == [(1, 2, 1.0)]
    # pid 3 lives on shard 1; the from-less duplicate applies everywhere.
    assert [s[0] for s in slice0["ships"]] == ["duplicate"]
    assert [s[0] for s in slice1["ships"]] == ["drop", "duplicate"]
    assert slice0["stalls"] == []
    assert slice1["stalls"] == [(4, 0.5)]


def test_validate_for_cluster_rejects_bad_targets():
    plan = parse_fault_plan("crash worker 5 at barrier 1")
    with pytest.raises(ConfigurationError, match="shard 5"):
        plan.validate_for_cluster(2, (1, 2, 3, 4), sync="windowed",
                                  spawned=True)
    plan = parse_fault_plan("crash worker 0 at barrier 1")
    with pytest.raises(ConfigurationError, match="windowed"):
        plan.validate_for_cluster(2, (1, 2, 3, 4), sync="freerun",
                                  spawned=True)
    with pytest.raises(ConfigurationError, match="hand-launched"):
        plan.validate_for_cluster(2, (1, 2, 3, 4), sync="windowed",
                                  spawned=False)
    plan = parse_fault_plan("drop ship from 9")
    with pytest.raises(ConfigurationError, match="pid 9"):
        plan.validate_for_cluster(2, (1, 2, 3, 4), sync="windowed",
                                  spawned=True)


def test_validate_for_async_rejects_cluster_only_faults():
    with pytest.raises(ConfigurationError, match="cluster"):
        parse_fault_plan("crash worker 0 at barrier 1").validate_for_async("tcp")
    with pytest.raises(ConfigurationError, match="loopback"):
        parse_fault_plan("drop ship from 1").validate_for_async("loopback")
    parse_fault_plan("drop ship from 1").validate_for_async("tcp")


def test_execute_trial_guards_fault_plan_engine_axis():
    with pytest.raises(SimulationError, match="fault_plan requires"):
        execute_trial(
            4, lambda h: h.register(PifLayer("pif")),
            driver=dict(tag="pif", requests_per_process=1),
            horizon=100_000, engine="serial",
            fault_plan="drop ship from 1",
        )


# -- cluster integration: kill a real worker at every phase ---------------

SERIAL_ORACLE: dict = {}


def _serial(seed: int):
    if seed not in SERIAL_ORACLE:
        SERIAL_ORACLE[seed] = run_pif_trial(6, seed=seed, engine="serial")
    return SERIAL_ORACLE[seed]


@pytest.mark.parametrize("phase, plan", [
    ("peering", "crash worker 1 at peering"),
    ("barrier", "crash worker 1 at barrier 3"),
    ("round", "crash worker 0 at round 2"),
])
def test_worker_crash_recovers_bit_identically(phase, plan):
    serial = _serial(3)
    trial = run_pif_trial(6, seed=3, engine="cluster", hosts=2,
                          fault_plan=plan)
    assert trial.ok
    assert trial.measurements == serial.measurements
    assert trial.provenance["recoveries"] == 1
    assert trial.provenance["fault_counts"]["worker.crashed"] == 1
    assert trial.provenance["fault_counts"]["fault.injected.crash"] == 1


def test_rendezvous_crash_surfaces_diagnostic_fast_not_timeout():
    started = time.monotonic()
    with pytest.raises(WorkerCrashed) as excinfo:
        run_pif_trial(6, seed=3, engine="cluster", hosts=2,
                      fault_plan="crash worker 0 at rendezvous")
    elapsed = time.monotonic() - started
    assert elapsed < 5.0, f"diagnosis took {elapsed:.1f}s (timeout path?)"
    crash = excinfo.value
    assert crash.shard == 0
    assert crash.exit_code == 70
    assert "chaos: injected crash at rendezvous" in (crash.stderr_tail or "")
    assert "shard 0" in str(crash)


def test_crash_with_recovery_disabled_is_a_fast_diagnostic():
    from repro.net.cluster import ClusterSimulator

    driver = dict(tag="pif", requests_per_process=2,
                  payload_fmt="m-{pid}-{k}")
    sim = ClusterSimulator(
        6, {"kind": "pif"}, seed=3, hosts=2,
        fault_plan="crash worker 1 at barrier 2", recover=False,
    )
    started = time.monotonic()
    with pytest.raises(WorkerCrashed) as excinfo:
        sim.run_trial(horizon=2_000_000, scramble_seed=3 ^ 0x5EED,
                      driver=driver)
    assert time.monotonic() - started < 30.0
    crash = excinfo.value
    assert crash.shard == 1
    assert crash.round == 2
    assert "chaos: injected crash at barrier 2" in (crash.stderr_tail or "")


def test_ship_faults_and_cuts_recover_bit_identically():
    serial = _serial(3)
    trial = run_pif_trial(
        6, seed=3, engine="cluster", hosts=2,
        fault_plan=(
            "drop ship from 1 round 2..9 count 2\n"
            "corrupt ship from 4 count 1\n"
            "cut link 0->1 for rounds 2..3"
        ),
    )
    assert trial.ok
    assert trial.measurements == serial.measurements
    counts = trial.provenance["fault_counts"]
    assert counts["fault.injected.drop"] == 2
    assert counts["fault.injected.cut"] == 1
    assert counts["ship.resent"] >= 2  # NAK/resend healed the drops


def test_crash_plus_link_cut_compose():
    serial = _serial(5)
    trial = run_pif_trial(
        6, seed=5, engine="cluster", hosts=2,
        fault_plan=(
            "crash worker 1 at barrier 2\n"
            "cut link 0->1 for rounds 4..5"
        ),
    )
    assert trial.ok
    assert trial.measurements == serial.measurements
    assert trial.provenance["recoveries"] == 1


def test_fault_free_plan_machinery_keeps_canonical_hash():
    """An *empty* fault plan arms the chaos machinery (dedup sets,
    tolerant pumps) without injecting anything: the trace hash must not
    move."""
    driver = dict(tag="pif", requests_per_process=1,
                  payload_fmt="m-{pid}-{k}")
    base = execute_trial(
        6, lambda h: h.register(PifLayer("pif")), seed=0, driver=dict(driver),
        horizon=2_000_000, engine="cluster", hosts=2, protocol={"kind": "pif"},
    )
    armed = execute_trial(
        6, lambda h: h.register(PifLayer("pif")), seed=0, driver=dict(driver),
        horizon=2_000_000, engine="cluster", hosts=2, protocol={"kind": "pif"},
        fault_plan=FaultPlan.parse(""),
    )
    assert canonical_trace_hash(base.trace) == canonical_trace_hash(armed.trace)
    assert armed.fault_counts == {}


# -- async tcp: frame faults at the MESSAGE boundary ----------------------


def test_async_tcp_ship_faults_count_and_monitors_hold():
    trial = run_pif_trial(
        6, seed=3, engine="async", transport="tcp", horizon=60_000,
        fault_plan="duplicate ship from 1 count 2; corrupt ship from 2 count 1",
    )
    assert trial.ok
    assert trial.provenance["monitors_ok"]
    counts = trial.provenance["fault_counts"]
    assert counts["fault.injected.duplicate"] == 2
    assert counts["fault.injected.corrupt"] == 1
    assert counts["ship.duplicate_dropped"] == 2
    assert counts["ship.corrupt_received"] == 1


# -- property: fault schedules keep the serial bit-identity ---------------

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def fault_schedules(draw) -> str:
    statements = []
    if draw(st.booleans()):
        shard = draw(st.integers(min_value=0, max_value=1))
        phase = draw(st.sampled_from(["barrier", "round"]))
        round_no = draw(st.integers(min_value=1, max_value=4))
        statements.append(f"crash worker {shard} at {phase} {round_no}")
    if draw(st.booleans()):
        src = draw(st.integers(min_value=0, max_value=1))
        start = draw(st.integers(min_value=1, max_value=3))
        statements.append(
            f"cut link {src}->{1 - src} for rounds {start}..{start + 1}"
        )
    if draw(st.booleans()):
        pid = draw(st.integers(min_value=1, max_value=6))
        count = draw(st.integers(min_value=1, max_value=2))
        statements.append(f"drop ship from {pid} count {count}")
    return "\n".join(statements)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan_text=fault_schedules(), seed=st.integers(min_value=0, max_value=3))
def test_fault_schedule_fuzz_preserves_serial_identity(plan_text, seed):
    serial = _serial(seed)
    trial = run_pif_trial(6, seed=seed, engine="cluster", hosts=2,
                          fault_plan=plan_text or None)
    assert trial.ok
    assert trial.measurements == serial.measurements
