"""Adversarial tests for the length-prefixed wire format.

The socket transports trust their peers (same trial, same launcher), but
not the network: every frame that arrives truncated, oversized, from a
different protocol version, or of an unknown kind must surface as a
:class:`~repro.net.wire.WireError` (or ``IncompleteReadError`` for clean
truncation) rather than corrupt a trial.  The registry's duplicate-HELLO
analogue — a shard registering twice — must fail the rendezvous loudly.
"""

from __future__ import annotations

import asyncio
import pickle
import struct

import pytest

from repro.errors import SimulationError
from repro.net import wire
from repro.net.registry import RegistryClient, RegistryServer


def feed(*chunks: bytes) -> tuple[bytes, ...]:
    return chunks


def read(chunks: tuple[bytes, ...], *, count: int = 1, **kwargs):
    """Feed the chunks to a StreamReader and read ``count`` frames."""

    async def main():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        frames = [await wire.read_frame(reader, **kwargs) for _ in range(count)]
        return frames[0] if count == 1 else frames

    return asyncio.run(main())


# -- frame round trips ----------------------------------------------------


def test_hello_round_trip():
    kind, payload = read(feed(wire.encode_hello(7)))
    assert kind == wire.HELLO
    assert wire.decode_hello(payload) == 7


def test_message_round_trip():
    kind, payload = read(feed(wire.encode_message(42, {"flag": 3})))
    assert kind == wire.MESSAGE
    assert wire.decode_message(payload) == (42, {"flag": 3})


def test_barrier_round_trip():
    kind, payload = read(feed(wire.encode_barrier(3, 1_000_000, 7)))
    assert kind == wire.BARRIER
    assert wire.decode_barrier(payload) == (3, 1_000_000, 7)


def test_barrier_skip_count_round_trip():
    kind, payload = read(
        feed(wire.encode_barrier(2, 5, wire.BARRIER_SKIP_COUNT))
    )
    assert kind == wire.BARRIER
    assert wire.decode_barrier(payload) == (2, 5, wire.BARRIER_SKIP_COUNT)


def test_ship_round_trip():
    frame = wire.encode_ship(
        1, 6, ("pif", "m-1-0"), when=17, entry_seq=4, round_no=2
    )
    kind, payload = read(feed(frame))
    assert kind == wire.SHIP
    assert wire.decode_ship(payload) == (1, 6, ("pif", "m-1-0"), 17, 4, 2)


def test_register_round_trip():
    kind, payload = read(feed(wire.encode_register(2, "10.0.0.5", 50123)))
    assert kind == wire.REGISTER
    assert wire.decode_register(payload) == (2, "10.0.0.5", 50123)


def test_peers_round_trip():
    peers = {0: ("127.0.0.1", 4000), 1: ("10.0.0.5", 4001)}
    kind, payload = read(feed(wire.encode_peers(peers)))
    assert kind == wire.PEERS
    assert wire.decode_peers(payload) == peers


def test_control_round_trip():
    message = ("spec", {"seed": 0, "shards": ((0, 1), (2, 3))})
    kind, payload = read(
        feed(wire.encode_control(message)), max_frame=wire.CONTROL_MAX_FRAME
    )
    assert kind == wire.CONTROL
    assert wire.decode_control(payload) == message


def test_multiple_frames_on_one_connection():
    frames = read(feed(wire.encode_hello(1), wire.encode_barrier(1, 0, 0)),
                  count=2)
    assert [kind for kind, _ in frames] == [wire.HELLO, wire.BARRIER]


def test_truncate_frame_stays_well_framed_but_undecodable():
    # The `corrupt ship` fault: framing must survive (the stream never
    # desynchronizes), the pickle must not.
    good = wire.encode_ship(0, 1, "payload", 5, 0, 1)
    bad = wire.truncate_frame(good)
    assert len(bad) == len(good) - 1
    tail = wire.encode_hello(9)
    frames = read(feed(bad, tail), count=2)
    (kind, payload), (kind2, payload2) = frames
    assert kind == wire.SHIP
    with pytest.raises(wire.WireError, match="undecodable ship"):
        wire.decode_ship(payload)
    assert kind2 == wire.HELLO and wire.decode_hello(payload2) == 9


# -- truncation -----------------------------------------------------------


def test_truncated_header_raises_incomplete_read():
    with pytest.raises(asyncio.IncompleteReadError):
        read(feed(wire.encode_hello(1)[:3]))


def test_truncated_payload_raises_incomplete_read():
    frame = wire.encode_ship(0, 1, "payload", 5, 0, 1)
    with pytest.raises(asyncio.IncompleteReadError):
        read(feed(frame[:-2]))


def test_eof_on_frame_boundary_is_clean_shutdown():
    with pytest.raises(asyncio.IncompleteReadError) as excinfo:
        read(feed())
    assert excinfo.value.partial == b""


# -- hostile headers ------------------------------------------------------


def test_oversized_length_prefix_rejected_before_reading_payload():
    header = struct.pack(">BBI", wire.HELLO, wire.PROTOCOL_VERSION,
                         wire.MAX_FRAME + 1)
    with pytest.raises(wire.WireError, match="exceeds"):
        read(feed(header))


def test_control_frames_allow_larger_bound():
    big = b"x" * (wire.MAX_FRAME + 1)
    frame = wire.pack_frame(wire.CONTROL, big, max_frame=wire.CONTROL_MAX_FRAME)
    with pytest.raises(wire.WireError):
        read(feed(frame))  # channel bound rejects it...
    kind, payload = read(feed(frame), max_frame=wire.CONTROL_MAX_FRAME)
    assert kind == wire.CONTROL and len(payload) == len(big)


def test_pack_frame_enforces_payload_bound():
    with pytest.raises(wire.WireError, match="exceeds"):
        wire.pack_frame(wire.MESSAGE, b"x" * (wire.MAX_FRAME + 1))


def test_version_mismatch_rejected():
    header = struct.pack(">BBI", wire.HELLO, wire.PROTOCOL_VERSION + 1, 0)
    with pytest.raises(wire.WireError, match="wire version"):
        read(feed(header))


def test_unknown_frame_kind_rejected():
    header = struct.pack(">BBI", 0x7F, wire.PROTOCOL_VERSION, 0)
    with pytest.raises(wire.WireError, match="unknown frame kind"):
        read(feed(header))


# -- malformed payloads ---------------------------------------------------


def test_hello_payload_wrong_size():
    with pytest.raises(wire.WireError, match="expected 8"):
        wire.decode_hello(b"\x00" * 4)


def test_barrier_payload_wrong_size():
    with pytest.raises(wire.WireError, match="expected 24"):
        wire.decode_barrier(b"\x00" * 8)


def test_ship_payload_not_pickle():
    with pytest.raises(wire.WireError, match="undecodable ship"):
        wire.decode_ship(b"not a pickle")


def test_register_payload_too_short():
    with pytest.raises(wire.WireError, match="expected >="):
        wire.decode_register(b"\x00" * 4)


def test_register_payload_bad_utf8_host():
    payload = struct.pack(">qI", 0, 4000) + b"\xff\xfe"
    with pytest.raises(wire.WireError, match="not utf-8"):
        wire.decode_register(payload)


def test_register_payload_empty_host():
    payload = struct.pack(">qI", 0, 4000)
    with pytest.raises(wire.WireError, match="names no host"):
        wire.decode_register(payload)


def test_peers_payload_wrong_shape():
    payload = pickle.dumps({"zero": ("127.0.0.1", 4000)})
    with pytest.raises(wire.WireError, match="peers frame"):
        wire.decode_peers(payload)


def test_control_payload_not_pickle():
    with pytest.raises(wire.WireError, match="undecodable control"):
        wire.decode_control(b"\x80garbage")


# -- registry rendezvous faults -------------------------------------------


def run_registry(scenario) -> None:
    async def main():
        registry = RegistryServer(expected=2)
        await registry.start()
        try:
            await scenario(registry)
        finally:
            await registry.close()

    asyncio.run(main())


def test_duplicate_registration_fails_rendezvous():
    async def scenario(registry):
        first = RegistryClient(registry.host, registry.port)
        dup = RegistryClient(registry.host, registry.port)
        task = asyncio.ensure_future(
            first.register(0, "127.0.0.1", 4000, timeout=5.0)
        )
        await asyncio.sleep(0.05)  # first registration lands...
        dup_task = asyncio.ensure_future(
            dup.register(0, "127.0.0.1", 4001, timeout=5.0)
        )
        with pytest.raises(SimulationError, match="registered twice"):
            await registry.rendezvous(timeout=5.0)
        for pending in (task, dup_task):
            pending.cancel()
            try:
                await pending
            except (asyncio.CancelledError, Exception):
                pass
        first.close()
        dup.close()

    run_registry(scenario)


def test_out_of_range_shard_fails_rendezvous():
    async def scenario(registry):
        client = RegistryClient(registry.host, registry.port)
        task = asyncio.ensure_future(
            client.register(9, "127.0.0.1", 4000, timeout=5.0)
        )
        with pytest.raises(SimulationError, match="out of range"):
            await registry.rendezvous(timeout=5.0)
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):
            pass
        client.close()

    run_registry(scenario)


def test_rendezvous_timeout_names_missing_shards():
    async def scenario(registry):
        client = RegistryClient(registry.host, registry.port)
        task = asyncio.ensure_future(
            client.register(0, "127.0.0.1", 4000, timeout=5.0)
        )
        await asyncio.sleep(0.05)
        with pytest.raises(SimulationError, match=r"missing shards \[1\]"):
            await registry.rendezvous(timeout=0.2)
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):
            pass
        client.close()

    run_registry(scenario)


def test_rendezvous_delivers_full_peer_map():
    async def scenario(registry):
        clients = [RegistryClient(registry.host, registry.port) for _ in range(2)]
        tasks = [
            asyncio.ensure_future(
                clients[shard].register(shard, "127.0.0.1", 4000 + shard,
                                        timeout=5.0)
            )
            for shard in range(2)
        ]
        handles = await registry.rendezvous(timeout=5.0)
        maps = await asyncio.gather(*tasks)
        expected = {0: ("127.0.0.1", 4000), 1: ("127.0.0.1", 4001)}
        assert maps == [expected, expected]
        assert [h.shard for h in handles] == [0, 1]
        # One REGISTER in + one PEERS out per worker.
        assert registry.round_trips == 4
        for client in clients:
            client.close()

    run_registry(scenario)
